#include "telemetry/flight_recorder.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/event_log.hpp"

namespace dwatch::telemetry {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%.9g", v);
  out.append(buf, static_cast<std::size_t>(n));
}

void append_kv(std::string& out, const char* key, std::uint64_t value,
               bool first = false) {
  if (!first) out += ',';
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void append_confidence(std::string& out, const core::ConfidenceReport& c) {
  out += "{\"arrays_total\":";
  out += std::to_string(c.arrays_total);
  append_kv(out, "arrays_with_evidence", c.arrays_with_evidence);
  append_kv(out, "arrays_excluded", c.arrays_excluded);
  append_kv(out, "observations", c.observations);
  append_kv(out, "observations_skipped", c.observations_skipped);
  append_kv(out, "stale_observations", c.stale_observations);
  append_kv(out, "low_snapshot_observations", c.low_snapshot_observations);
  append_kv(out, "malformed_observations", c.malformed_observations);
  append_kv(out, "drops_detected", c.drops_detected);
  append_kv(out, "reports_dropped", c.reports_dropped);
  append_kv(out, "transport_retries", c.transport_retries);
  append_kv(out, "transport_timeouts", c.transport_timeouts);
  out += ",\"rss_mode\":";
  out += c.rss_mode ? "true" : "false";
  out += ",\"phase_health\":";
  append_double(out, c.phase_health);
  out += '}';
}

void append_stats(std::string& out, const serve::ZoneServingStats& s) {
  out += "{\"epochs_submitted\":";
  out += std::to_string(s.epochs_submitted);
  append_kv(out, "epochs_processed", s.epochs_processed);
  append_kv(out, "epochs_shed", s.epochs_shed);
  append_kv(out, "epochs_widened", s.epochs_widened);
  append_kv(out, "epochs_rejected", s.epochs_rejected);
  append_kv(out, "reports_routed", s.reports_routed);
  append_kv(out, "fixes_valid", s.fixes_valid);
  append_kv(out, "fixes_degraded", s.fixes_degraded);
  out += '}';
}

void append_recovery(std::string& out, const recovery::RecoveryStats& r) {
  out += "{\"checkpoints_written\":";
  out += std::to_string(r.checkpoints_written);
  append_kv(out, "checkpoint_crashes", r.checkpoint_crashes);
  append_kv(out, "restores", r.restores);
  append_kv(out, "recalibrations_triggered", r.recalibrations_triggered);
  append_kv(out, "recalibrations_accepted", r.recalibrations_accepted);
  append_kv(out, "recalibrations_rolled_back", r.recalibrations_rolled_back);
  append_kv(out, "baselines_invalidated", r.baselines_invalidated);
  append_kv(out, "drift_epochs", r.drift_epochs);
  append_kv(out, "epochs_aborted", r.epochs_aborted);
  out += '}';
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t ring_epochs)
    : ring_epochs_(ring_epochs) {
  if (ring_epochs_ == 0) {
    throw std::invalid_argument("FlightRecorder: ring_epochs must be >= 1");
  }
}

void FlightRecorder::push_locked(std::size_t zone, EpochSnapshot snapshot) {
  auto& ring = zones_[zone];
  if (ring.epochs.size() == ring_epochs_) ring.epochs.pop_front();
  ring.epochs.push_back(std::move(snapshot));
  ++ring.total_recorded;
}

void FlightRecorder::record(const serve::EpochObservation& observation) {
  EpochSnapshot snapshot;
  snapshot.seq = observation.seq;
  snapshot.watermark_us = observation.watermark_us;
  snapshot.shed = false;
  snapshot.reports = observation.reports;
  snapshot.fix_valid = observation.fix_valid;
  snapshot.fix_degraded = observation.fix_degraded;
  snapshot.confidence = observation.confidence;
  snapshot.stats = observation.stats;
  snapshot.drift_states = observation.drift_states;
  snapshot.recovery = observation.recovery;
  std::lock_guard lock(mutex_);
  push_locked(observation.zone, std::move(snapshot));
}

void FlightRecorder::record_shed(std::size_t zone, std::uint64_t seq) {
  EpochSnapshot snapshot;
  snapshot.seq = seq;
  snapshot.shed = true;
  std::lock_guard lock(mutex_);
  push_locked(zone, std::move(snapshot));
}

void FlightRecorder::record_drift_transition(std::size_t zone,
                                             std::size_t array_idx,
                                             std::uint8_t from,
                                             std::uint8_t to) {
  std::lock_guard lock(mutex_);
  auto& ring = zones_[zone];
  if (ring.drift_log.size() == ring_epochs_) ring.drift_log.pop_front();
  ring.drift_log.push_back(
      DriftTransition{ring.total_recorded, array_idx, from, to});
}

void FlightRecorder::record_tier_transition(std::uint8_t from,
                                            std::uint8_t to) {
  std::lock_guard lock(mutex_);
  if (tier_log_.size() == ring_epochs_) tier_log_.pop_front();
  tier_log_.push_back(TierTransition{tier_transitions_recorded_, from, to});
  ++tier_transitions_recorded_;
}

std::size_t FlightRecorder::buffered(std::size_t zone) const {
  std::lock_guard lock(mutex_);
  const auto it = zones_.find(zone);
  return it == zones_.end() ? 0 : it->second.epochs.size();
}

std::uint64_t FlightRecorder::dumps() const {
  std::lock_guard lock(mutex_);
  return dump_seq_;
}

void FlightRecorder::write_dump(std::ostream& os, std::string_view trigger) {
  std::string out;
  out.reserve(16 * 1024);
  std::lock_guard lock(mutex_);
  ++dump_seq_;
  out += "{\"trigger\":\"";
  obs::append_json_escaped(out, trigger);
  out += "\",\"dump_seq\":";
  out += std::to_string(dump_seq_);
  out += ",\"ring_epochs\":";
  out += std::to_string(ring_epochs_);
  out += ",\"zones\":[";
  bool first_zone = true;
  for (const auto& [zone, ring] : zones_) {
    if (!first_zone) out += ',';
    first_zone = false;
    out += "{\"zone\":";
    out += std::to_string(zone);
    out += ",\"total_recorded\":";
    out += std::to_string(ring.total_recorded);
    out += ",\"epochs\":[";
    bool first_epoch = true;
    for (const auto& e : ring.epochs) {
      if (!first_epoch) out += ',';
      first_epoch = false;
      out += "{\"seq\":";
      out += std::to_string(e.seq);
      out += ",\"shed\":";
      out += e.shed ? "true" : "false";
      if (e.shed) {
        out += '}';
        continue;
      }
      append_kv(out, "watermark_us", e.watermark_us);
      append_kv(out, "reports", e.reports);
      out += ",\"fix_valid\":";
      out += e.fix_valid ? "true" : "false";
      out += ",\"fix_degraded\":";
      out += e.fix_degraded ? "true" : "false";
      out += ",\"confidence\":";
      append_confidence(out, e.confidence);
      out += ",\"stats\":";
      append_stats(out, e.stats);
      out += ",\"drift_states\":[";
      for (std::size_t i = 0; i < e.drift_states.size(); ++i) {
        if (i != 0) out += ',';
        out += std::to_string(static_cast<unsigned>(e.drift_states[i]));
      }
      out += "],\"recovery\":";
      append_recovery(out, e.recovery);
      out += '}';
    }
    out += "],\"drift_transitions\":[";
    bool first_transition = true;
    for (const auto& t : ring.drift_log) {
      if (!first_transition) out += ',';
      first_transition = false;
      out += "{\"at_epoch\":";
      out += std::to_string(t.at_epoch);
      append_kv(out, "array", t.array_idx);
      append_kv(out, "from", t.from);
      append_kv(out, "to", t.to);
      out += '}';
    }
    out += "]}";
  }
  out += "],\"tier_transitions\":[";
  bool first_tier = true;
  for (const auto& t : tier_log_) {
    if (!first_tier) out += ',';
    first_tier = false;
    out += "{\"ordinal\":";
    out += std::to_string(t.ordinal);
    append_kv(out, "from", t.from);
    append_kv(out, "to", t.to);
    out += '}';
  }
  out += "]}";
  os << out;
}

std::string FlightRecorder::dump(std::string_view trigger) {
  std::ostringstream os;
  write_dump(os, trigger);
  return os.str();
}

}  // namespace dwatch::telemetry
