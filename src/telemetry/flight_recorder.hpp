// Dump-on-trigger flight recorder: bounded per-zone rings of epoch
// snapshots that cost almost nothing while everything is healthy, and
// become a post-mortem bundle the moment something is not.
//
// Determinism contract: a snapshot holds ONLY deterministic facts about
// an epoch (seq, watermark, confidence, cumulative counters, drift
// states) — never wall-clock latency. Two identical runs therefore
// produce byte-for-byte identical dump() bodies, which is what makes a
// bundle diffable against a known-good run; the test suite enforces
// this. The only run-varying field is the trigger string and dump_seq
// the CALLER passes into context at dump time.
//
// Triggers (wired by TelemetryPlane): SLO fast-burn alerts, scheduler
// sheds, drift-watchdog state changes, and manual POST /dump.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "serve/service.hpp"

namespace dwatch::telemetry {

class FlightRecorder {
 public:
  /// `ring_epochs`: snapshots retained per zone (oldest overwritten).
  explicit FlightRecorder(std::size_t ring_epochs = 64);

  /// Record one processed epoch (called from the zone's task thread —
  /// concurrent across zones, serial within one).
  void record(const serve::EpochObservation& observation);
  /// Record a shed epoch (no observation exists for it).
  void record_shed(std::size_t zone, std::uint64_t seq);
  /// Record a drift-watchdog transition for `zone`'s array `array_idx`.
  void record_drift_transition(std::size_t zone, std::size_t array_idx,
                               std::uint8_t from, std::uint8_t to);
  /// Record a fleet-wide admission brownout tier move (values are
  /// serve::BrownoutTier). Fleet-level, not per-zone: the controller
  /// runs one tier for the whole service. Bounded like the zone rings.
  void record_tier_transition(std::uint8_t from, std::uint8_t to);

  [[nodiscard]] std::size_t ring_epochs() const noexcept {
    return ring_epochs_;
  }
  /// Epochs currently buffered for `zone` (<= ring_epochs).
  [[nodiscard]] std::size_t buffered(std::size_t zone) const;
  /// Dumps taken so far.
  [[nodiscard]] std::uint64_t dumps() const;

  /// Serialize the full bundle as one deterministic JSON object:
  /// {"trigger":...,"dump_seq":N,"zones":[...]} with zones sorted by id
  /// and epochs oldest-to-newest. Does not clear the rings — a dump is
  /// a read, not a drain.
  void write_dump(std::ostream& os, std::string_view trigger);
  [[nodiscard]] std::string dump(std::string_view trigger);

 private:
  struct DriftTransition {
    std::uint64_t at_epoch = 0;  ///< zone epochs recorded when it fired
    std::size_t array_idx = 0;
    std::uint8_t from = 0;
    std::uint8_t to = 0;
  };
  struct TierTransition {
    std::uint64_t ordinal = 0;  ///< tier moves recorded before this one
    std::uint8_t from = 0;
    std::uint8_t to = 0;
  };
  struct EpochSnapshot {
    std::uint64_t seq = 0;
    std::uint64_t watermark_us = 0;
    bool shed = false;
    std::size_t reports = 0;
    bool fix_valid = false;
    bool fix_degraded = false;
    core::ConfidenceReport confidence;
    serve::ZoneServingStats stats;
    std::vector<std::uint8_t> drift_states;
    recovery::RecoveryStats recovery;
  };
  struct ZoneRing {
    std::deque<EpochSnapshot> epochs;       ///< bounded by ring_epochs_
    std::deque<DriftTransition> drift_log;  ///< bounded by ring_epochs_
    std::uint64_t total_recorded = 0;
  };

  void push_locked(std::size_t zone, EpochSnapshot snapshot);

  const std::size_t ring_epochs_;
  mutable std::mutex mutex_;
  std::map<std::size_t, ZoneRing> zones_;
  /// Fleet-level brownout tier moves (bounded by ring_epochs_).
  std::deque<TierTransition> tier_log_;
  std::uint64_t tier_transitions_recorded_ = 0;
  std::uint64_t dump_seq_ = 0;
};

}  // namespace dwatch::telemetry
