// Embedded scrape endpoint: a deliberately tiny TCP/HTTP 1.0 server.
//
// The telemetry plane needs exactly one network capability: let an
// external scraper GET a handful of read-only documents (and POST one
// trigger) from the serving process. That justifies nothing fancier
// than POSIX sockets and a single blocking accept loop on a dedicated
// thread:
//
//  * HTTP/1.0, Connection: close — one request per connection, no
//    keep-alive state machine, response framed by Content-Length;
//  * loopback only (binds 127.0.0.1) — an ops sidecar or SSH tunnel
//    re-exports it; the fix path never trusts this socket for input;
//  * handlers are registered BEFORE start() and never mutated after,
//    so the accept thread reads the route table without locking
//    (TSan-verified by the telemetry concurrency test);
//  * slow or hostile clients cannot wedge the loop forever: reads are
//    capped (64 KiB head, 1 MiB body) and carry a socket timeout.
//
// This is the first network surface of ROADMAP item 2's wire split;
// the LLRP ingest frontier will be a separate, async door — telemetry
// stays on its own port and thread so a scrape can never contend with
// ingest.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

namespace dwatch::telemetry {

/// One parsed request, just enough for routing: `GET /events?n=10`
/// yields method="GET", path="/events", query="n=10".
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Returns the value of `key` in an urlencoded query string, or
/// `fallback` when absent/empty (no %-decoding: telemetry queries are
/// plain integers).
[[nodiscard]] std::string query_param(std::string_view query,
                                      std::string_view key,
                                      std::string_view fallback = {});

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register `handler` for exact (method, path). Must be called before
  /// start(); throws std::logic_error afterwards (the accept thread
  /// reads the table unlocked).
  void handle(std::string method, std::string path, Handler handler);

  /// Bind 127.0.0.1:`port` (0 = kernel-assigned, see port()) and start
  /// the accept thread. Throws std::system_error on socket failures and
  /// std::logic_error when already running.
  void start(std::uint16_t port = 0);

  /// Stop the accept loop and join the thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (the kernel's pick when start(0)); 0 when never
  /// started.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Requests served since start (including 404s).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  std::map<std::pair<std::string, std::string>, Handler> routes_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace dwatch::telemetry
