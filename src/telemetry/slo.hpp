// Per-zone SLO error budgets with multi-window burn rates.
//
// The clock is EPOCHS, not wall time: every observe_fix/observe_shed
// call advances the calling zone's objective clocks by one. That keeps
// the tracker deterministic under test (inject epochs, assert budgets)
// and matches how the serving plane actually experiences load — a zone
// that processes no epochs burns no budget.
//
// Three objectives per zone:
//   latency  — fix latency exceeded `fix_latency_budget_us`
//   shed     — the epoch was shed by the scheduler instead of fixed
//   quality  — RMSE proxy breached (invalid fix / RSS-only fallback /
//              collapsed phase health), decided by the caller
//
// Burn rate over a window = bad-fraction / error-budget, so 1.0 means
// "spending exactly the allowed rate"; the fast (5-epoch) and slow
// (60-epoch) windows implement the classic multi-window policy: the
// fast window catches a sudden regression, the slow window stops a
// single bad epoch from paging. A fast-burn alert latches per
// (zone, objective) until the fast window recovers below 1.0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dwatch::obs {
class Gauge;
}  // namespace dwatch::obs

namespace dwatch::telemetry {

enum class SloObjective : std::uint8_t {
  kLatency = 0,
  kShed = 1,
  kQuality = 2,
};
inline constexpr std::size_t kNumSloObjectives = 3;

[[nodiscard]] const char* to_string(SloObjective objective) noexcept;

struct SloConfig {
  std::uint64_t fix_latency_budget_us = 50'000;
  /// Allowed bad-epoch fraction per objective.
  double latency_error_budget = 0.01;
  double shed_error_budget = 0.05;
  double quality_error_budget = 0.05;
  std::size_t fast_window_epochs = 5;
  std::size_t slow_window_epochs = 60;
  /// Budget period: the error budget refills after this many epochs.
  std::size_t budget_period_epochs = 720;
  /// Fast-window burn rate at which the alert hook fires (latched).
  double fast_burn_alert = 2.0;

  [[nodiscard]] double error_budget(SloObjective objective) const noexcept;
};

class SloTracker {
 public:
  /// Fired (outside the tracker lock, on the observing zone's thread)
  /// when a zone/objective fast-window burn first crosses
  /// `fast_burn_alert`; latched until the fast burn recovers below 1.0.
  using BurnAlertHook =
      std::function<void(std::size_t zone, SloObjective objective,
                         double fast_burn)>;

  explicit SloTracker(SloConfig config = {});

  void set_burn_alert_hook(BurnAlertHook hook);

  /// One fixed epoch for `zone`: advances latency/quality/shed clocks
  /// (the fix counts as a good shed-objective epoch).
  void observe_fix(std::size_t zone, std::uint64_t fix_latency_us,
                   bool quality_breach);
  /// One shed epoch for `zone`: advances only the shed clock.
  void observe_shed(std::size_t zone);

  [[nodiscard]] const SloConfig& config() const noexcept { return config_; }

  /// Bad-fraction / error-budget over the fast or slow window; 0 until
  /// the zone has observed at least one epoch for the objective.
  [[nodiscard]] double fast_burn(std::size_t zone,
                                 SloObjective objective) const;
  [[nodiscard]] double slow_burn(std::size_t zone,
                                 SloObjective objective) const;
  /// Fraction of the period's error budget still unspent, in [0, 1].
  /// Monotonically non-increasing within a budget period; refills to
  /// 1.0 when the period rolls over.
  [[nodiscard]] double budget_remaining(std::size_t zone,
                                        SloObjective objective) const;
  /// Objective epochs observed for `zone` in the current budget period.
  [[nodiscard]] std::uint64_t period_epochs(std::size_t zone,
                                            SloObjective objective) const;
  [[nodiscard]] bool alert_latched(std::size_t zone,
                                   SloObjective objective) const;
  /// Zones that have observed at least one epoch, ascending.
  [[nodiscard]] std::vector<std::size_t> zones() const;

  /// Deterministic JSON: {"config":{...},"zones":[...]} sorted by zone
  /// id, objectives in enum order. Feeds GET /slo.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json_text() const;

 private:
  struct ObjectiveState {
    std::vector<std::uint8_t> ring;  ///< bad flags, slow-window capacity
    std::size_t head = 0;            ///< next write position
    std::size_t filled = 0;
    std::uint64_t period_epochs = 0;
    std::uint64_t period_bad = 0;
    bool latched = false;
    obs::Gauge* budget_gauge = nullptr;
    obs::Gauge* fast_gauge = nullptr;
    obs::Gauge* slow_gauge = nullptr;
  };
  struct ZoneState {
    ObjectiveState objectives[kNumSloObjectives];
  };

  void record_locked(std::size_t zone, SloObjective objective, bool bad,
                     std::vector<std::pair<SloObjective, double>>* alerts);
  [[nodiscard]] ZoneState& zone_state_locked(std::size_t zone);
  [[nodiscard]] double window_burn_locked(const ObjectiveState& state,
                                          SloObjective objective,
                                          std::size_t window) const;
  [[nodiscard]] double budget_remaining_locked(const ObjectiveState& state,
                                               SloObjective objective) const;

  const SloConfig config_;
  mutable std::mutex mutex_;
  std::map<std::size_t, ZoneState> zones_;
  BurnAlertHook alert_hook_;
};

}  // namespace dwatch::telemetry
