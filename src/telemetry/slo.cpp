#include "telemetry/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace dwatch::telemetry {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%.9g", v);
  out.append(buf, static_cast<std::size_t>(n));
}

[[nodiscard]] obs::Gauge& slo_gauge(const char* name, std::size_t zone,
                                    SloObjective objective,
                                    const char* window) {
  std::string labels = "zone=\"" + std::to_string(zone) + "\",objective=\"";
  labels += to_string(objective);
  labels += '"';
  if (window != nullptr) {
    labels += ",window=\"";
    labels += window;
    labels += '"';
  }
  return obs::MetricsRegistry::global().gauge(name, labels);
}

}  // namespace

const char* to_string(SloObjective objective) noexcept {
  switch (objective) {
    case SloObjective::kLatency:
      return "latency";
    case SloObjective::kShed:
      return "shed";
    case SloObjective::kQuality:
      return "quality";
  }
  return "unknown";
}

double SloConfig::error_budget(SloObjective objective) const noexcept {
  switch (objective) {
    case SloObjective::kLatency:
      return latency_error_budget;
    case SloObjective::kShed:
      return shed_error_budget;
    case SloObjective::kQuality:
      return quality_error_budget;
  }
  return 1.0;
}

SloTracker::SloTracker(SloConfig config) : config_(config) {
  if (config_.fast_window_epochs == 0 ||
      config_.slow_window_epochs < config_.fast_window_epochs ||
      config_.budget_period_epochs == 0) {
    throw std::invalid_argument("SloTracker: bad window configuration");
  }
  for (const auto objective :
       {SloObjective::kLatency, SloObjective::kShed, SloObjective::kQuality}) {
    if (!(config_.error_budget(objective) > 0.0)) {
      throw std::invalid_argument("SloTracker: error budgets must be > 0");
    }
  }
}

void SloTracker::set_burn_alert_hook(BurnAlertHook hook) {
  std::lock_guard lock(mutex_);
  alert_hook_ = std::move(hook);
}

SloTracker::ZoneState& SloTracker::zone_state_locked(std::size_t zone) {
  auto [it, inserted] = zones_.try_emplace(zone);
  if (inserted) {
    for (std::size_t o = 0; o < kNumSloObjectives; ++o) {
      auto& state = it->second.objectives[o];
      state.ring.assign(config_.slow_window_epochs, 0);
      const auto objective = static_cast<SloObjective>(o);
      state.budget_gauge =
          &slo_gauge("dwatch_slo_budget_remaining", zone, objective, nullptr);
      state.fast_gauge =
          &slo_gauge("dwatch_slo_burn_rate", zone, objective, "fast");
      state.slow_gauge =
          &slo_gauge("dwatch_slo_burn_rate", zone, objective, "slow");
      state.budget_gauge->set(1.0);
    }
  }
  return it->second;
}

double SloTracker::window_burn_locked(const ObjectiveState& state,
                                      SloObjective objective,
                                      std::size_t window) const {
  const std::size_t n = std::min(window, state.filled);
  if (n == 0) return 0.0;
  // The ring's `head` is one past the newest entry; walk back n slots.
  std::size_t bad = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t idx =
        (state.head + state.ring.size() - i) % state.ring.size();
    bad += state.ring[idx];
  }
  const double fraction = static_cast<double>(bad) / static_cast<double>(n);
  return fraction / config_.error_budget(objective);
}

double SloTracker::budget_remaining_locked(const ObjectiveState& state,
                                           SloObjective objective) const {
  const double allowed = config_.error_budget(objective) *
                         static_cast<double>(config_.budget_period_epochs);
  const double remaining =
      1.0 - static_cast<double>(state.period_bad) / allowed;
  return std::clamp(remaining, 0.0, 1.0);
}

void SloTracker::record_locked(
    std::size_t zone, SloObjective objective, bool bad,
    std::vector<std::pair<SloObjective, double>>* alerts) {
  auto& state =
      zone_state_locked(zone).objectives[static_cast<std::size_t>(objective)];
  if (state.period_epochs >= config_.budget_period_epochs) {
    state.period_epochs = 0;
    state.period_bad = 0;
  }
  state.ring[state.head] = bad ? 1 : 0;
  state.head = (state.head + 1) % state.ring.size();
  state.filled = std::min(state.filled + 1, state.ring.size());
  ++state.period_epochs;
  if (bad) ++state.period_bad;

  const double fast =
      window_burn_locked(state, objective, config_.fast_window_epochs);
  const double slow =
      window_burn_locked(state, objective, config_.slow_window_epochs);
  state.fast_gauge->set(fast);
  state.slow_gauge->set(slow);
  state.budget_gauge->set(budget_remaining_locked(state, objective));

  if (state.latched) {
    if (fast < 1.0) state.latched = false;
  } else if (fast >= config_.fast_burn_alert) {
    state.latched = true;
    alerts->emplace_back(objective, fast);
  }
}

void SloTracker::observe_fix(std::size_t zone, std::uint64_t fix_latency_us,
                             bool quality_breach) {
  std::vector<std::pair<SloObjective, double>> alerts;
  BurnAlertHook hook;
  {
    std::lock_guard lock(mutex_);
    record_locked(zone, SloObjective::kLatency,
                  fix_latency_us > config_.fix_latency_budget_us, &alerts);
    record_locked(zone, SloObjective::kShed, false, &alerts);
    record_locked(zone, SloObjective::kQuality, quality_breach, &alerts);
    if (!alerts.empty()) hook = alert_hook_;
  }
  for (const auto& [objective, burn] : alerts) {
    if (obs::enabled()) {
      obs::EventLog::global().emit(obs::Event("slo.burn")
                                       .field("zone", zone)
                                       .field("objective", to_string(objective))
                                       .field("fast_burn", burn));
    }
    if (hook) hook(zone, objective, burn);
  }
}

void SloTracker::observe_shed(std::size_t zone) {
  std::vector<std::pair<SloObjective, double>> alerts;
  BurnAlertHook hook;
  {
    std::lock_guard lock(mutex_);
    record_locked(zone, SloObjective::kShed, true, &alerts);
    if (!alerts.empty()) hook = alert_hook_;
  }
  for (const auto& [objective, burn] : alerts) {
    if (obs::enabled()) {
      obs::EventLog::global().emit(obs::Event("slo.burn")
                                       .field("zone", zone)
                                       .field("objective", to_string(objective))
                                       .field("fast_burn", burn));
    }
    if (hook) hook(zone, objective, burn);
  }
}

double SloTracker::fast_burn(std::size_t zone, SloObjective objective) const {
  std::lock_guard lock(mutex_);
  const auto it = zones_.find(zone);
  if (it == zones_.end()) return 0.0;
  return window_burn_locked(
      it->second.objectives[static_cast<std::size_t>(objective)], objective,
      config_.fast_window_epochs);
}

double SloTracker::slow_burn(std::size_t zone, SloObjective objective) const {
  std::lock_guard lock(mutex_);
  const auto it = zones_.find(zone);
  if (it == zones_.end()) return 0.0;
  return window_burn_locked(
      it->second.objectives[static_cast<std::size_t>(objective)], objective,
      config_.slow_window_epochs);
}

double SloTracker::budget_remaining(std::size_t zone,
                                    SloObjective objective) const {
  std::lock_guard lock(mutex_);
  const auto it = zones_.find(zone);
  if (it == zones_.end()) return 1.0;
  return budget_remaining_locked(
      it->second.objectives[static_cast<std::size_t>(objective)], objective);
}

std::uint64_t SloTracker::period_epochs(std::size_t zone,
                                        SloObjective objective) const {
  std::lock_guard lock(mutex_);
  const auto it = zones_.find(zone);
  if (it == zones_.end()) return 0;
  return it->second.objectives[static_cast<std::size_t>(objective)]
      .period_epochs;
}

bool SloTracker::alert_latched(std::size_t zone,
                               SloObjective objective) const {
  std::lock_guard lock(mutex_);
  const auto it = zones_.find(zone);
  if (it == zones_.end()) return false;
  return it->second.objectives[static_cast<std::size_t>(objective)].latched;
}

std::vector<std::size_t> SloTracker::zones() const {
  std::lock_guard lock(mutex_);
  std::vector<std::size_t> out;
  out.reserve(zones_.size());
  for (const auto& [zone, state] : zones_) out.push_back(zone);
  return out;
}

void SloTracker::write_json(std::ostream& os) const {
  std::string out;
  out += "{\"config\":{\"fix_latency_budget_us\":";
  out += std::to_string(config_.fix_latency_budget_us);
  out += ",\"fast_window_epochs\":";
  out += std::to_string(config_.fast_window_epochs);
  out += ",\"slow_window_epochs\":";
  out += std::to_string(config_.slow_window_epochs);
  out += ",\"budget_period_epochs\":";
  out += std::to_string(config_.budget_period_epochs);
  out += ",\"fast_burn_alert\":";
  append_double(out, config_.fast_burn_alert);
  out += "},\"zones\":[";
  {
    std::lock_guard lock(mutex_);
    bool first_zone = true;
    for (const auto& [zone, state] : zones_) {
      if (!first_zone) out += ',';
      first_zone = false;
      out += "{\"zone\":";
      out += std::to_string(zone);
      out += ",\"objectives\":[";
      for (std::size_t o = 0; o < kNumSloObjectives; ++o) {
        const auto objective = static_cast<SloObjective>(o);
        const auto& obj = state.objectives[o];
        if (o != 0) out += ',';
        out += "{\"objective\":\"";
        out += to_string(objective);
        out += "\",\"error_budget\":";
        append_double(out, config_.error_budget(objective));
        out += ",\"fast_burn\":";
        append_double(out,
                      window_burn_locked(obj, objective,
                                         config_.fast_window_epochs));
        out += ",\"slow_burn\":";
        append_double(out,
                      window_burn_locked(obj, objective,
                                         config_.slow_window_epochs));
        out += ",\"budget_remaining\":";
        append_double(out, budget_remaining_locked(obj, objective));
        out += ",\"period_epochs\":";
        out += std::to_string(obj.period_epochs);
        out += ",\"period_bad\":";
        out += std::to_string(obj.period_bad);
        out += ",\"alert_latched\":";
        out += obj.latched ? "true" : "false";
        out += '}';
      }
      out += "]}";
    }
  }
  out += "]}";
  os << out;
}

std::string SloTracker::json_text() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace dwatch::telemetry
