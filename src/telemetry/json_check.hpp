// Strict RFC 8259 JSON validator (recursive descent, no DOM). The
// telemetry endpoints hand-render their JSON for determinism; this is
// the independent checker that keeps them honest — the endpoint tests
// and scripts/check.sh's scrape stage reject any body it refuses.
// Strictness over permissiveness: no trailing commas, no comments, no
// bare NaN/Infinity, exactly one top-level value, nothing after it.
#pragma once

#include <string>
#include <string_view>

namespace dwatch::telemetry {

/// True when `text` is one complete, valid JSON value (with optional
/// surrounding ASCII whitespace). On failure `error`, when non-null,
/// receives a short reason with a byte offset.
[[nodiscard]] bool json_valid(std::string_view text,
                              std::string* error = nullptr);

/// Every non-empty line must be one valid JSON value (the /events
/// JSON-Lines contract).
[[nodiscard]] bool json_lines_valid(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace dwatch::telemetry
