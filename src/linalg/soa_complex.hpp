// Structure-of-arrays complex matrix: split re/im planes with aligned,
// padded rows — the vector-friendly twin of CMatrix.
//
// CMatrix stores std::complex<double> interleaved (re,im,re,im,...),
// which forces a shuffle-heavy deinterleave before any SIMD math. The
// spectral hot path (MUSIC Eq. 8 projection, P-MUSIC Eq. 13
// delay-and-sum, covariance accumulation) iterates one *lane* per grid
// column / array element, so storing the real and imaginary parts as two
// separate row-major planes lets a 4-wide AVX2 (or 2-wide NEON) vector
// process 4 (2) independent lanes with plain mul/add — no shuffles, no
// horizontal reductions, and per-lane operation order identical to the
// scalar code (the bit-identical-parity contract in simd_kernels.hpp).
//
// Layout guarantees:
//  * each plane row starts 64-byte aligned (rows are padded to a
//    multiple of 8 doubles), so unconditional vector loads at a row
//    start are aligned and loads up to the padded stride never touch
//    unowned memory;
//  * padding doubles are zero-initialized and kept zero by from_matrix,
//    so a kernel may compute garbage-free full vectors across the tail
//    as long as it never *stores through* past cols() into a
//    caller-visible result.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "linalg/complex_matrix.hpp"

namespace dwatch::linalg {

/// Minimal aligned allocator so the planes can live in a std::vector.
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  using value_type = T;
  /// Explicit rebind: the automatic allocator_traits rebind cannot see
  /// through the non-type Alignment parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// Split-plane (SoA) complex matrix. Immutable-by-convention once
/// filled: the SIMD kernels only read; construction is the only writer.
class SplitComplexMatrix {
 public:
  /// Row padding in doubles: 8 doubles = 64 bytes = one cache line and
  /// two AVX2 vectors, also a multiple of every smaller vector width.
  static constexpr std::size_t kPadDoubles = 8;
  static constexpr std::size_t kAlignment = 64;

  SplitComplexMatrix() = default;

  /// rows x cols, planes zero-initialized (including padding).
  SplitComplexMatrix(std::size_t rows, std::size_t cols);

  /// Split an interleaved CMatrix into planes (same orientation).
  [[nodiscard]] static SplitComplexMatrix from_matrix(const CMatrix& m);

  /// Split the TRANSPOSE of `m` into planes: result(r, c) == m(c, r).
  /// This is the snapshot adapter: an M x N snapshot matrix becomes an
  /// N x M plane pair whose row k holds x(0..M-1, k) contiguously, so
  /// covariance accumulation can vector-load across array elements.
  [[nodiscard]] static SplitComplexMatrix from_matrix_transposed(
      const CMatrix& m);

  /// Reassemble an interleaved CMatrix (padding dropped).
  [[nodiscard]] CMatrix to_matrix() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  /// Doubles between consecutive rows of a plane; >= cols(), multiple
  /// of kPadDoubles.
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] const double* re_row(std::size_t r) const noexcept {
    return re_.data() + r * stride_;
  }
  [[nodiscard]] const double* im_row(std::size_t r) const noexcept {
    return im_.data() + r * stride_;
  }
  [[nodiscard]] double* re_row(std::size_t r) noexcept {
    return re_.data() + r * stride_;
  }
  [[nodiscard]] double* im_row(std::size_t r) noexcept {
    return im_.data() + r * stride_;
  }

  /// Convenience element access for tests/adapters (not a hot path).
  [[nodiscard]] Complex at(std::size_t r, std::size_t c) const {
    return Complex{re_row(r)[c], im_row(r)[c]};
  }
  void set(std::size_t r, std::size_t c, Complex v) {
    re_row(r)[c] = v.real();
    im_row(r)[c] = v.imag();
  }

 private:
  using Plane = std::vector<double, AlignedAllocator<double, kAlignment>>;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  Plane re_;
  Plane im_;
};

}  // namespace dwatch::linalg
