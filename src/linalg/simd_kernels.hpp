// Runtime-dispatched SIMD kernels for the spectral hot path.
//
// The scalar kernels in complex_matrix.cpp / covariance.cpp stay exactly
// as they are — they are the ORACLE. This layer provides vectorized
// twins that operate on the SoA layout (soa_complex.hpp) and promise:
//
//   bit-identical parity: for finite inputs, every kernel here returns
//   the same bits as its scalar oracle, on every backend. The trick is
//   lane parallelism across INDEPENDENT outputs (grid columns of the
//   manifold, entries of a covariance row): each SIMD lane replays the
//   oracle's accumulation order exactly, so no reassociation happens —
//   only replication. No FMA contraction is used (the linalg target is
//   built with -ffp-contract=off as insurance), and the complex
//   multiply is decomposed into the same mul/add/sub rounding sequence
//   libstdc++'s operator* produces. The one scalar behaviour NOT
//   replicated is the C99 NaN-recovery fixup (__muldc3) — it only fires
//   when a product is NaN, and no finite input reaches it.
//
// Backend selection happens ONCE per process (memoized), in priority
// order: test override > DWATCH_SIMD environment variable > cpuid-style
// detection. `DWATCH_SIMD=off` (or `scalar`) forces the scalar path;
// `DWATCH_SIMD=avx2` / `neon` requests a specific backend and falls
// back to scalar when the CPU or build cannot honour it. Compiling with
// -DDWATCH_SIMD=OFF (CMake) removes the vector code paths entirely and
// pins the backend to scalar.
//
// Call sites in core/ branch on active_backend(): the scalar backend
// routes through the UNTOUCHED legacy CMatrix code (so a SIMD-off build
// or DWATCH_SIMD=off run executes byte-for-byte the pre-SIMD hot path),
// while vector backends take the SoA kernels below.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/complex_matrix.hpp"
#include "linalg/soa_complex.hpp"

namespace dwatch::linalg::simd {

enum class Backend : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Stable lower-case name for logs/metrics ("scalar", "avx2", "neon").
[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// True when this binary was built with vector kernels compiled in
/// (CMake option DWATCH_SIMD=ON and a recognized architecture).
[[nodiscard]] bool compiled_with_simd() noexcept;

/// Best backend this CPU + build supports, ignoring env/override.
[[nodiscard]] Backend detected_backend() noexcept;

/// The backend every kernel call uses: override > DWATCH_SIMD env >
/// detected_backend(). Resolved once, then memoized (relaxed atomic);
/// safe to call from any thread.
[[nodiscard]] Backend active_backend() noexcept;

/// Test/bench hook: force a backend (bypasses env and detection).
/// Requesting an unsupported backend clamps to scalar.
void set_backend_override(Backend backend) noexcept;
void clear_backend_override() noexcept;

/// Record the selected backend in the obs layer: gauge
/// `dwatch_simd_backend` (numeric Backend value, labelled with the
/// name) and one `simd.dispatch` event line. No-op while
/// obs::enabled() is false. Idempotent; the pipeline calls it at
/// construction so fleet logs record which kernel path serves fixes.
void publish_backend();

/// q_i = Re(a_i^H R a_i) for every manifold column a_i (P-MUSIC Eq. 13
/// delay-and-sum power). R is m x m interleaved, `a` is the m x G SoA
/// manifold. Bit-identical to linalg::batched_quadratic_form.
[[nodiscard]] std::vector<double> batched_quadratic_form(
    const CMatrix& r, const SplitComplexMatrix& a);

/// B = U^H C without forming U^H (MUSIC Eq. 8 subspace projection).
/// U is m x p interleaved (noise subspace), C is the m x G SoA
/// manifold; result is p x G SoA. Bit-identical (including the
/// zero-skip) to linalg::matmul_hermitian_left.
[[nodiscard]] SplitComplexMatrix matmul_hermitian_left(
    const CMatrix& u, const SplitComplexMatrix& c);

/// n_j = sum_i |a_ij|^2 per SoA column. Bit-identical to
/// linalg::column_squared_norms.
[[nodiscard]] std::vector<double> column_squared_norms(
    const SplitComplexMatrix& a);

/// R = X X^H / N from a TRANSPOSED SoA snapshot matrix (rows =
/// snapshots, cols = array elements; see from_matrix_transposed).
/// Bit-identical to core::sample_correlation on the untransposed
/// matrix.
[[nodiscard]] CMatrix sample_correlation(const SplitComplexMatrix& xt);

/// acc += X X^H from a TRANSPOSED SoA snapshot chunk (rows = snapshots,
/// cols = elements) — the streaming rank-N covariance update behind
/// core::IncrementalCovariance. No divide happens here: the reader
/// divides the accumulated sum by the total snapshot count once, so
/// feeding chunks one at a time extends the exact addition chain
/// sample_correlation() would produce over the concatenated snapshots
/// and the final correlation is bit-identical to the batch kernel's.
/// Throws std::invalid_argument on an empty chunk or when `acc` is not
/// square with side == xt.cols().
void accumulate_outer_products(const SplitComplexMatrix& xt,
                               SplitComplexMatrix& acc);

namespace detail {
/// Pure parser for the DWATCH_SIMD environment value (exposed for unit
/// tests; the memoized active_backend() consults it once). nullptr /
/// "" / "auto" mean "use detection"; unrecognized values also fall
/// through to detection rather than failing startup.
struct EnvRequest {
  bool forced_scalar = false;  ///< "off" | "scalar" | "0"
  bool has_request = false;    ///< a specific backend was named
  Backend requested = Backend::kScalar;
};
[[nodiscard]] EnvRequest parse_env(const char* value) noexcept;
}  // namespace detail

}  // namespace dwatch::linalg::simd
