// INTERNAL header for the SIMD kernel layer — not part of the linalg
// API. Shared between simd_dispatch.cpp and the per-architecture
// translation units (simd_avx2.cpp, simd_neon.cpp).
//
// The lane-range functions below are the rounding-sequence ground
// truth: they spell out, lane by lane, the exact mul/add/sub order the
// legacy std::complex kernels produce (see the equivalence notes at
// each kernel). The scalar backend runs them over the full lane range;
// the vector backends run their main loop on whole vectors and call
// these for the odd tail — so a tail lane and a vector lane compute
// identical bits by construction.
#pragma once

#include <cstddef>

#include "linalg/complex_matrix.hpp"
#include "linalg/soa_complex.hpp"

#ifndef DWATCH_SIMD_ENABLED
#define DWATCH_SIMD_ENABLED 1
#endif

#if DWATCH_SIMD_ENABLED && (defined(__x86_64__) || defined(__i386__))
#define DWATCH_SIMD_X86 1
#else
#define DWATCH_SIMD_X86 0
#endif

#if DWATCH_SIMD_ENABLED && \
    (defined(__aarch64__) || (defined(__ARM_NEON) && defined(__arm__)))
#define DWATCH_SIMD_NEON 1
#else
#define DWATCH_SIMD_NEON 0
#endif

namespace dwatch::linalg::simd::detail {

// ---- lane-exact scalar kernels (half-open lane range [g0, g1)) ----
//
// Rounding equivalences used throughout (IEEE-754, round-to-nearest):
//   x - (-y)  rounds the exact value x + y   =>  same bits as x + y
//   (-x) + y  rounds the exact value y - x   =>  same bits as y - x
// so conj-multiplies can be written FMA-free with plain mul/add/sub in
// the order below and still match libstdc++'s complex operator*.

/// out[g] = Re(a_g^H R a_g), lanes [g0, g1). Mirrors
/// linalg::batched_quadratic_form: y = R a_g accumulated col-inner,
/// then quad += conj(a(row)) * y[row] row-by-row (fused here — y[row]
/// does not depend on later rows, so fusing preserves every bit).
inline void batched_quadratic_form_lanes(const CMatrix& r,
                                         const SplitComplexMatrix& a,
                                         std::size_t g0, std::size_t g1,
                                         double* out) {
  const std::size_t m = r.rows();
  for (std::size_t g = g0; g < g1; ++g) {
    double quad_re = 0.0;
    double quad_im = 0.0;
    for (std::size_t row = 0; row < m; ++row) {
      double y_re = 0.0;
      double y_im = 0.0;
      for (std::size_t col = 0; col < m; ++col) {
        const double rr = r(row, col).real();
        const double ri = r(row, col).imag();
        const double ar = a.re_row(col)[g];
        const double ai = a.im_row(col)[g];
        // (rr + i ri)(ar + i ai): libstdc++ order re = rr*ar - ri*ai,
        // im = rr*ai + ri*ar, then complex += adds componentwise.
        y_re += rr * ar - ri * ai;
        y_im += rr * ai + ri * ar;
      }
      const double cr = a.re_row(row)[g];
      const double ci = a.im_row(row)[g];
      // conj(c) * y = (cr - i ci)(y_re + i y_im):
      //   re = cr*y_re - (-ci)*y_im  ==  cr*y_re + ci*y_im
      //   im = cr*y_im + (-ci)*y_re  ==  cr*y_im - ci*y_re
      quad_re += cr * y_re + ci * y_im;
      quad_im += cr * y_im - ci * y_re;
    }
    (void)quad_im;  // oracle returns quad.real()
    out[g] = quad_re;
  }
}

/// out = U^H C restricted to lanes [g0, g1). Mirrors
/// linalg::matmul_hermitian_left including the k-outer loop and the
/// conj(u(k,p)) == 0 skip (the comparison ignores zero sign, so
/// testing the unconjugated element is equivalent).
inline void matmul_hermitian_left_lanes(const CMatrix& u,
                                        const SplitComplexMatrix& c,
                                        std::size_t g0, std::size_t g1,
                                        SplitComplexMatrix& out) {
  for (std::size_t k = 0; k < u.rows(); ++k) {
    const double* c_re = c.re_row(k);
    const double* c_im = c.im_row(k);
    for (std::size_t p = 0; p < u.cols(); ++p) {
      const double ur = u(k, p).real();
      const double ui = u(k, p).imag();
      if (ur == 0.0 && ui == 0.0) continue;
      double* o_re = out.re_row(p);
      double* o_im = out.im_row(p);
      for (std::size_t g = g0; g < g1; ++g) {
        // conj(u) * c = (ur - i ui)(cr + i ci):
        //   re = ur*cr - (-ui)*ci  ==  ur*cr + ui*ci
        //   im = ur*ci + (-ui)*cr  ==  ur*ci - ui*cr
        o_re[g] += ur * c_re[g] + ui * c_im[g];
        o_im[g] += ur * c_im[g] - ui * c_re[g];
      }
    }
  }
}

/// out[g] = sum_r |a(r,g)|^2, lanes [g0, g1). Mirrors
/// linalg::column_squared_norms (row-outer accumulation; std::norm is
/// re*re + im*im).
inline void column_squared_norms_lanes(const SplitComplexMatrix& a,
                                       std::size_t g0, std::size_t g1,
                                       double* out) {
  for (std::size_t g = g0; g < g1; ++g) out[g] = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* re = a.re_row(r);
    const double* im = a.im_row(r);
    for (std::size_t g = g0; g < g1; ++g) {
      out[g] += re[g] * re[g] + im[g] * im[g];
    }
  }
}

/// out(i, j) for j in [j0, j1), all i. `xt` is the transposed snapshot
/// matrix (rows = snapshots k, cols = elements). Mirrors
/// core::sample_correlation: sum_k x(i,k) * conj(x(j,k)), then one
/// componentwise divide by N.
inline void sample_correlation_lanes(const SplitComplexMatrix& xt,
                                     std::size_t j0, std::size_t j1,
                                     CMatrix& out) {
  const std::size_t n = xt.rows();
  const std::size_t m = xt.cols();
  const double n_d = static_cast<double>(n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = j0; j < j1; ++j) {
      double s_re = 0.0;
      double s_im = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double a = xt.re_row(k)[i];
        const double b = xt.im_row(k)[i];
        const double c = xt.re_row(k)[j];
        const double d = xt.im_row(k)[j];
        // x * conj(w) = (a + i b)(c - i d):
        //   re = a*c - b*(-d)  ==  a*c + b*d
        //   im = a*(-d) + b*c  ==  b*c - a*d
        s_re += a * c + b * d;
        s_im += b * c - a * d;
      }
      out(i, j) = Complex{s_re / n_d, s_im / n_d};
    }
  }
}

/// acc(i, j) += sum_k x(i,k) * conj(x(j,k)) for j in [j0, j1), all i —
/// the streaming covariance update. Identical inner k-chain (ascending,
/// same mul/add/sub order) as sample_correlation_lanes, but the partial
/// sum RESUMES from the accumulator and there is no trailing divide:
/// chaining calls chunk-by-chunk therefore extends the exact addition
/// chain the batch kernel would produce over the concatenated
/// snapshots, and one divide at read time reproduces its bits.
inline void accumulate_outer_products_lanes(const SplitComplexMatrix& xt,
                                            std::size_t j0, std::size_t j1,
                                            SplitComplexMatrix& acc) {
  const std::size_t n = xt.rows();
  const std::size_t m = xt.cols();
  for (std::size_t i = 0; i < m; ++i) {
    double* a_re = acc.re_row(i);
    double* a_im = acc.im_row(i);
    for (std::size_t j = j0; j < j1; ++j) {
      double s_re = a_re[j];
      double s_im = a_im[j];
      for (std::size_t k = 0; k < n; ++k) {
        const double a = xt.re_row(k)[i];
        const double b = xt.im_row(k)[i];
        const double c = xt.re_row(k)[j];
        const double d = xt.im_row(k)[j];
        // x * conj(w), same decomposition as sample_correlation_lanes.
        s_re += a * c + b * d;
        s_im += b * c - a * d;
      }
      a_re[j] = s_re;
      a_im[j] = s_im;
    }
  }
}

// ---- per-architecture entry points ----
// Defined only in their own TU; dispatch guards calls with the macros
// above. Each writes the same bits as the lane functions.

#if DWATCH_SIMD_X86
[[nodiscard]] bool avx2_available() noexcept;
void batched_quadratic_form_avx2(const CMatrix& r, const SplitComplexMatrix& a,
                                 double* out);
void matmul_hermitian_left_avx2(const CMatrix& u, const SplitComplexMatrix& c,
                                SplitComplexMatrix& out);
void column_squared_norms_avx2(const SplitComplexMatrix& a, double* out);
void sample_correlation_avx2(const SplitComplexMatrix& xt, CMatrix& out);
void accumulate_outer_products_avx2(const SplitComplexMatrix& xt,
                                    SplitComplexMatrix& acc);
#endif

#if DWATCH_SIMD_NEON
void batched_quadratic_form_neon(const CMatrix& r, const SplitComplexMatrix& a,
                                 double* out);
void matmul_hermitian_left_neon(const CMatrix& u, const SplitComplexMatrix& c,
                                SplitComplexMatrix& out);
void column_squared_norms_neon(const SplitComplexMatrix& a, double* out);
void sample_correlation_neon(const SplitComplexMatrix& xt, CMatrix& out);
void accumulate_outer_products_neon(const SplitComplexMatrix& xt,
                                    SplitComplexMatrix& acc);
#endif

}  // namespace dwatch::linalg::simd::detail
