#include "linalg/hermitian_eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dwatch::linalg {

namespace {

/// Sum of |a_rc|^2 over strictly-upper off-diagonal entries.
double off_diagonal_norm(const CMatrix& a) {
  double sum = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = r + 1; c < a.cols(); ++c) sum += std::norm(a(r, c));
  }
  return std::sqrt(2.0 * sum);
}

/// One complex Jacobi rotation zeroing a(p,q).
///
/// For a Hermitian A, the 2x2 principal submatrix
///   [ a_pp      a_pq ]
///   [ conj(a_pq) a_qq ]
/// is diagonalized by the unitary
///   J = [ c           s e^{j phi} ]
///       [ -s e^{-j phi}     c     ]
/// with a_pq = |a_pq| e^{j phi}.
void jacobi_rotate(CMatrix& a, CMatrix& v, std::size_t p, std::size_t q) {
  const Complex apq = a(p, q);
  const double abs_apq = std::abs(apq);
  if (abs_apq == 0.0) return;

  const double app = a(p, p).real();
  const double aqq = a(q, q).real();
  const Complex phase = apq / abs_apq;  // e^{j phi}

  // Classic symmetric Jacobi angle on the "rephased" real problem.
  const double tau = (aqq - app) / (2.0 * abs_apq);
  const double t = (tau >= 0.0)
                       ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                       : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;

  const Complex sp = s * phase;  // s e^{j phi}

  // Update rows/cols p and q of A: A <- J^H A J.
  for (std::size_t k = 0; k < a.rows(); ++k) {
    if (k == p || k == q) continue;
    const Complex akp = a(k, p);
    const Complex akq = a(k, q);
    a(k, p) = c * akp - std::conj(sp) * akq;
    a(k, q) = sp * akp + c * akq;
    a(p, k) = std::conj(a(k, p));
    a(q, k) = std::conj(a(k, q));
  }
  const double new_app = app - t * abs_apq;
  const double new_aqq = aqq + t * abs_apq;
  a(p, p) = Complex{new_app, 0.0};
  a(q, q) = Complex{new_aqq, 0.0};
  a(p, q) = Complex{0.0, 0.0};
  a(q, p) = Complex{0.0, 0.0};

  // Accumulate eigenvectors: V <- V J.
  for (std::size_t k = 0; k < v.rows(); ++k) {
    const Complex vkp = v(k, p);
    const Complex vkq = v(k, q);
    v(k, p) = c * vkp - std::conj(sp) * vkq;
    v(k, q) = sp * vkp + c * vkq;
  }
}

}  // namespace

EigenDecomposition hermitian_eig(const CMatrix& input,
                                 const JacobiOptions& opts) {
  if (input.rows() != input.cols()) {
    throw std::invalid_argument("hermitian_eig: matrix not square");
  }
  if (!input.is_hermitian(1e-8)) {
    throw std::invalid_argument("hermitian_eig: matrix not Hermitian");
  }
  const std::size_t n = input.rows();
  CMatrix a = input;
  // Symmetrize exactly to suppress tiny numerical asymmetry accumulation.
  for (std::size_t r = 0; r < n; ++r) {
    a(r, r) = Complex{a(r, r).real(), 0.0};
    for (std::size_t c = r + 1; c < n; ++c) {
      const Complex avg = 0.5 * (a(r, c) + std::conj(a(c, r)));
      a(r, c) = avg;
      a(c, r) = std::conj(avg);
    }
  }

  CMatrix v = CMatrix::identity(n);
  const double scale = std::max(a.frobenius_norm(), 1e-300);

  bool converged = (n <= 1);
  for (std::size_t sweep = 0; sweep < opts.max_sweeps && !converged;
       ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a(p, q)) > opts.tolerance * scale * 1e-3) {
          jacobi_rotate(a, v, p, q);
        }
      }
    }
    converged = off_diagonal_norm(a) <= opts.tolerance * scale;
  }
  if (!converged) {
    throw std::runtime_error("hermitian_eig: Jacobi failed to converge");
  }

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> raw(n);
  for (std::size_t i = 0; i < n; ++i) raw[i] = a(i, i).real();
  std::sort(order.begin(), order.end(),
            [&raw](std::size_t x, std::size_t y) { return raw[x] > raw[y]; });

  out.eigenvectors = CMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = raw[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      out.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return out;
}

CMatrix reconstruct(const EigenDecomposition& eig) {
  const std::size_t n = eig.eigenvalues.size();
  CMatrix lambda(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    lambda(i, i) = Complex{eig.eigenvalues[i], 0.0};
  }
  return eig.eigenvectors * lambda * eig.eigenvectors.hermitian();
}

}  // namespace dwatch::linalg
