// Dense complex matrix/vector primitives for array signal processing.
//
// D-Watch's algorithms (MUSIC, P-MUSIC, wireless phase calibration) operate
// on small dense complex matrices: array snapshots X (M x N), correlation
// matrices R (M x M, Hermitian), steering vectors a(theta) (M x 1) and
// subspace bases U_N (M x Q). M is the antenna count (4..8 in the paper),
// so these are tiny matrices where a simple, well-tested dense
// implementation beats pulling in a heavyweight dependency.
//
// Conventions:
//  - Row-major storage, zero-based indexing.
//  - at(r, c) is bounds-checked and throws std::out_of_range;
//    operator()(r, c) is unchecked for hot loops.
//  - All operations have value semantics; there is no aliasing surprise.
#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace dwatch::linalg {

using Complex = std::complex<double>;

/// Dense row-major complex matrix.
class CMatrix {
 public:
  /// Empty 0x0 matrix.
  CMatrix() = default;

  /// rows x cols matrix, zero-initialized.
  CMatrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled with `fill`.
  CMatrix(std::size_t rows, std::size_t cols, Complex fill);

  /// Construct from nested initializer list: CMatrix{{a,b},{c,d}}.
  /// Throws std::invalid_argument on ragged rows.
  CMatrix(std::initializer_list<std::initializer_list<Complex>> rows);

  /// Identity matrix of size n.
  [[nodiscard]] static CMatrix identity(std::size_t n);

  /// Diagonal matrix from a vector of diagonal entries.
  [[nodiscard]] static CMatrix diagonal(const std::vector<Complex>& diag);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Unchecked element access (hot paths).
  [[nodiscard]] Complex& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const Complex& operator()(std::size_t r,
                                          std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws std::out_of_range.
  [[nodiscard]] Complex& at(std::size_t r, std::size_t c);
  [[nodiscard]] const Complex& at(std::size_t r, std::size_t c) const;

  /// Raw storage (row-major), e.g. for serialization.
  [[nodiscard]] const std::vector<Complex>& data() const noexcept {
    return data_;
  }

  // --- arithmetic (dimension mismatches throw std::invalid_argument) ---
  CMatrix& operator+=(const CMatrix& rhs);
  CMatrix& operator-=(const CMatrix& rhs);
  CMatrix& operator*=(Complex scalar) noexcept;
  CMatrix& operator/=(Complex scalar);

  [[nodiscard]] friend CMatrix operator+(CMatrix lhs, const CMatrix& rhs) {
    lhs += rhs;
    return lhs;
  }
  [[nodiscard]] friend CMatrix operator-(CMatrix lhs, const CMatrix& rhs) {
    lhs -= rhs;
    return lhs;
  }
  [[nodiscard]] friend CMatrix operator*(CMatrix lhs, Complex scalar) {
    lhs *= scalar;
    return lhs;
  }
  [[nodiscard]] friend CMatrix operator*(Complex scalar, CMatrix rhs) {
    rhs *= scalar;
    return rhs;
  }

  /// Matrix product; throws std::invalid_argument if inner dims mismatch.
  friend CMatrix operator*(const CMatrix& lhs, const CMatrix& rhs);

  /// Transpose (no conjugation).
  [[nodiscard]] CMatrix transpose() const;

  /// Hermitian (conjugate) transpose — the `(.)^H` of the paper.
  [[nodiscard]] CMatrix hermitian() const;

  /// Elementwise complex conjugate.
  [[nodiscard]] CMatrix conjugate() const;

  /// Contiguous block copy [r0, r0+nr) x [c0, c0+nc); bounds-checked.
  [[nodiscard]] CMatrix block(std::size_t r0, std::size_t c0, std::size_t nr,
                              std::size_t nc) const;

  /// Column `c` as an M x 1 matrix; bounds-checked.
  [[nodiscard]] CMatrix col(std::size_t c) const;

  /// Row `r` as a 1 x N matrix; bounds-checked.
  [[nodiscard]] CMatrix row(std::size_t r) const;

  /// Frobenius norm sqrt(sum |a_ij|^2).
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Sum of diagonal entries; throws std::logic_error if non-square.
  [[nodiscard]] Complex trace() const;

  /// Max |a_ij - b_ij|; throws std::invalid_argument on shape mismatch.
  [[nodiscard]] double max_abs_diff(const CMatrix& other) const;

  /// True iff square and ‖A - A^H‖_max <= tol.
  [[nodiscard]] bool is_hermitian(double tol = 1e-10) const noexcept;

  friend std::ostream& operator<<(std::ostream& os, const CMatrix& m);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

/// Dense complex column vector; thin wrapper kept separate from CMatrix so
/// steering-vector code reads like the paper's math.
class CVector {
 public:
  CVector() = default;
  explicit CVector(std::size_t n) : data_(n) {}
  CVector(std::initializer_list<Complex> init) : data_(init) {}
  explicit CVector(std::vector<Complex> data) : data_(std::move(data)) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] Complex& operator[](std::size_t i) noexcept {
    return data_[i];
  }
  [[nodiscard]] const Complex& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] Complex& at(std::size_t i);
  [[nodiscard]] const Complex& at(std::size_t i) const;

  [[nodiscard]] const std::vector<Complex>& data() const noexcept {
    return data_;
  }

  CVector& operator+=(const CVector& rhs);
  CVector& operator-=(const CVector& rhs);
  CVector& operator*=(Complex scalar) noexcept;

  [[nodiscard]] friend CVector operator+(CVector lhs, const CVector& rhs) {
    lhs += rhs;
    return lhs;
  }
  [[nodiscard]] friend CVector operator-(CVector lhs, const CVector& rhs) {
    lhs -= rhs;
    return lhs;
  }
  [[nodiscard]] friend CVector operator*(CVector lhs, Complex scalar) {
    lhs *= scalar;
    return lhs;
  }
  [[nodiscard]] friend CVector operator*(Complex scalar, CVector rhs) {
    rhs *= scalar;
    return rhs;
  }

  /// Euclidean norm.
  [[nodiscard]] double norm() const noexcept;

  /// Elementwise conjugate.
  [[nodiscard]] CVector conjugate() const;

  /// As M x 1 matrix.
  [[nodiscard]] CMatrix as_column() const;

  friend std::ostream& operator<<(std::ostream& os, const CVector& v);

 private:
  std::vector<Complex> data_;
};

/// Inner product <x, y> = x^H y (conjugates the FIRST argument, physics
/// convention, matching a(theta)^H u usage in the paper).
[[nodiscard]] Complex inner_product(const CVector& x, const CVector& y);

/// Outer product x y^H producing an n x n rank-1 matrix.
[[nodiscard]] CMatrix outer_product(const CVector& x, const CVector& y);

/// y = A x; throws std::invalid_argument on dimension mismatch.
[[nodiscard]] CVector matvec(const CMatrix& a, const CVector& x);

/// y = A^H x without forming A^H.
[[nodiscard]] CVector matvec_hermitian(const CMatrix& a, const CVector& x);

/// B = A^H C without forming A^H. A is m x p, C is m x q, result p x q.
/// The batched form of matvec_hermitian: column j of the result is
/// A^H c_j, so projecting a steering manifold onto a subspace is one
/// call instead of one matvec per grid point. Throws
/// std::invalid_argument on row-count mismatch.
[[nodiscard]] CMatrix matmul_hermitian_left(const CMatrix& a,
                                            const CMatrix& c);

/// Batched Hermitian quadratic form: q_i = Re(a_i^H R a_i) for every
/// column a_i of A. R is m x m, A is m x G; result has G entries. For
/// Hermitian R the quadratic form is real up to rounding, so only the
/// real part is returned (the beamforming power of paper Eq. 13).
/// Throws std::invalid_argument on dimension mismatch.
[[nodiscard]] std::vector<double> batched_quadratic_form(const CMatrix& r,
                                                         const CMatrix& a);

/// Squared Euclidean norm of every column of A: n_j = sum_i |a_ij|^2.
[[nodiscard]] std::vector<double> column_squared_norms(const CMatrix& a);

}  // namespace dwatch::linalg
