// Hermitian eigendecomposition via the cyclic complex Jacobi method.
//
// MUSIC and the wireless phase calibration both require the
// eigenstructure of the (Hermitian, positive semi-definite) array
// correlation matrix R = E[X X^H] (paper Eq. 5-6). The matrices involved
// are small (M <= 8 antennas, smoothed subarrays 4..6), where Jacobi
// iteration is simple, numerically robust and fast enough — each sweep is
// O(n^3) and convergence is quadratic.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/complex_matrix.hpp"

namespace dwatch::linalg {

/// Result of a Hermitian eigendecomposition A = V diag(w) V^H.
struct EigenDecomposition {
  /// Eigenvalues sorted in DESCENDING order (signal eigenvalues first,
  /// matching the paper's lambda_1 >= ... >= lambda_M convention).
  std::vector<double> eigenvalues;
  /// Unit-norm eigenvectors as matrix columns, column i pairs with
  /// eigenvalues[i].
  CMatrix eigenvectors;
};

/// Options for the Jacobi iteration.
struct JacobiOptions {
  /// Stop when the off-diagonal Frobenius norm falls below
  /// `tolerance * ||A||_F`.
  double tolerance = 1e-12;
  /// Hard cap on full sweeps; exceeded => std::runtime_error (should never
  /// happen for PSD correlation matrices of the sizes we use).
  std::size_t max_sweeps = 100;
};

/// Eigendecomposition of a Hermitian matrix.
///
/// Throws std::invalid_argument if `a` is not square or not Hermitian
/// within 1e-8, std::runtime_error if Jacobi fails to converge.
[[nodiscard]] EigenDecomposition hermitian_eig(const CMatrix& a,
                                               const JacobiOptions& opts = {});

/// Reconstruct V diag(w) V^H; handy for testing round trips.
[[nodiscard]] CMatrix reconstruct(const EigenDecomposition& eig);

}  // namespace dwatch::linalg
