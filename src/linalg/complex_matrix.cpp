#include "linalg/complex_matrix.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace dwatch::linalg {

CMatrix::CMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols) {}

CMatrix::CMatrix(std::size_t rows, std::size_t cols, Complex fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

CMatrix::CMatrix(std::initializer_list<std::initializer_list<Complex>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("CMatrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = Complex{1.0, 0.0};
  return m;
}

CMatrix CMatrix::diagonal(const std::vector<Complex>& diag) {
  CMatrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Complex& CMatrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("CMatrix::at: index out of range");
  }
  return data_[r * cols_ + c];
}

const Complex& CMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("CMatrix::at: index out of range");
  }
  return data_[r * cols_ + c];
}

namespace {
void require_same_shape(const CMatrix& a, const CMatrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string("CMatrix: shape mismatch in ") +
                                op);
  }
}
}  // namespace

CMatrix& CMatrix::operator+=(const CMatrix& rhs) {
  require_same_shape(*this, rhs, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

CMatrix& CMatrix::operator-=(const CMatrix& rhs) {
  require_same_shape(*this, rhs, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

CMatrix& CMatrix::operator*=(Complex scalar) noexcept {
  for (auto& v : data_) v *= scalar;
  return *this;
}

CMatrix& CMatrix::operator/=(Complex scalar) {
  if (scalar == Complex{}) {
    throw std::invalid_argument("CMatrix: division by zero scalar");
  }
  for (auto& v : data_) v /= scalar;
  return *this;
}

CMatrix operator*(const CMatrix& lhs, const CMatrix& rhs) {
  if (lhs.cols() != rhs.rows()) {
    throw std::invalid_argument("CMatrix: inner dimension mismatch in *");
  }
  CMatrix out(lhs.rows(), rhs.cols());
  for (std::size_t i = 0; i < lhs.rows(); ++i) {
    for (std::size_t k = 0; k < lhs.cols(); ++k) {
      const Complex lik = lhs(i, k);
      if (lik == Complex{}) continue;
      for (std::size_t j = 0; j < rhs.cols(); ++j) {
        out(i, j) += lik * rhs(k, j);
      }
    }
  }
  return out;
}

CMatrix CMatrix::transpose() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

CMatrix CMatrix::hermitian() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = std::conj((*this)(r, c));
    }
  }
  return out;
}

CMatrix CMatrix::conjugate() const {
  CMatrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = std::conj(data_[i]);
  }
  return out;
}

CMatrix CMatrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                       std::size_t nc) const {
  if (r0 + nr > rows_ || c0 + nc > cols_) {
    throw std::out_of_range("CMatrix::block: out of range");
  }
  CMatrix out(nr, nc);
  for (std::size_t r = 0; r < nr; ++r) {
    for (std::size_t c = 0; c < nc; ++c) out(r, c) = (*this)(r0 + r, c0 + c);
  }
  return out;
}

CMatrix CMatrix::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("CMatrix::col: out of range");
  return block(0, c, rows_, 1);
}

CMatrix CMatrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("CMatrix::row: out of range");
  return block(r, 0, 1, cols_);
}

double CMatrix::frobenius_norm() const noexcept {
  double sum = 0.0;
  for (const auto& v : data_) sum += std::norm(v);
  return std::sqrt(sum);
}

Complex CMatrix::trace() const {
  if (rows_ != cols_) {
    throw std::logic_error("CMatrix::trace: matrix not square");
  }
  Complex t{};
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double CMatrix::max_abs_diff(const CMatrix& other) const {
  require_same_shape(*this, other, "max_abs_diff");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

bool CMatrix::is_hermitian(double tol) const noexcept {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - std::conj((*this)(c, r))) > tol) {
        return false;
      }
    }
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const CMatrix& m) {
  os << "CMatrix(" << m.rows_ << "x" << m.cols_ << ")[\n";
  for (std::size_t r = 0; r < m.rows_; ++r) {
    os << "  ";
    for (std::size_t c = 0; c < m.cols_; ++c) {
      const Complex& v = m(r, c);
      os << v.real() << (v.imag() >= 0 ? "+" : "") << v.imag() << "j ";
    }
    os << "\n";
  }
  return os << "]";
}

// --- CVector -------------------------------------------------------------

Complex& CVector::at(std::size_t i) {
  if (i >= data_.size()) throw std::out_of_range("CVector::at: out of range");
  return data_[i];
}

const Complex& CVector::at(std::size_t i) const {
  if (i >= data_.size()) throw std::out_of_range("CVector::at: out of range");
  return data_[i];
}

CVector& CVector::operator+=(const CVector& rhs) {
  if (size() != rhs.size()) {
    throw std::invalid_argument("CVector: size mismatch in +=");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

CVector& CVector::operator-=(const CVector& rhs) {
  if (size() != rhs.size()) {
    throw std::invalid_argument("CVector: size mismatch in -=");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

CVector& CVector::operator*=(Complex scalar) noexcept {
  for (auto& v : data_) v *= scalar;
  return *this;
}

double CVector::norm() const noexcept {
  double sum = 0.0;
  for (const auto& v : data_) sum += std::norm(v);
  return std::sqrt(sum);
}

CVector CVector::conjugate() const {
  CVector out(size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = std::conj(data_[i]);
  return out;
}

CMatrix CVector::as_column() const {
  CMatrix out(size(), 1);
  for (std::size_t i = 0; i < size(); ++i) out(i, 0) = data_[i];
  return out;
}

std::ostream& operator<<(std::ostream& os, const CVector& v) {
  os << "CVector(" << v.size() << ")[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    const Complex& x = v[i];
    os << x.real() << (x.imag() >= 0 ? "+" : "") << x.imag() << "j ";
  }
  return os << "]";
}

Complex inner_product(const CVector& x, const CVector& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("inner_product: size mismatch");
  }
  Complex sum{};
  for (std::size_t i = 0; i < x.size(); ++i) sum += std::conj(x[i]) * y[i];
  return sum;
}

CMatrix outer_product(const CVector& x, const CVector& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("outer_product: size mismatch");
  }
  CMatrix out(x.size(), x.size());
  for (std::size_t r = 0; r < x.size(); ++r) {
    for (std::size_t c = 0; c < x.size(); ++c) {
      out(r, c) = x[r] * std::conj(y[c]);
    }
  }
  return out;
}

CVector matvec(const CMatrix& a, const CVector& x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("matvec: dimension mismatch");
  }
  CVector y(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    Complex sum{};
    for (std::size_t c = 0; c < a.cols(); ++c) sum += a(r, c) * x[c];
    y[r] = sum;
  }
  return y;
}

CMatrix matmul_hermitian_left(const CMatrix& a, const CMatrix& c) {
  if (a.rows() != c.rows()) {
    throw std::invalid_argument("matmul_hermitian_left: row mismatch");
  }
  CMatrix out(a.cols(), c.cols());
  // k-outer loop keeps both operands in row-major streaming order: row k
  // of A scales row k of C into every output row.
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t p = 0; p < a.cols(); ++p) {
      const Complex akp = std::conj(a(k, p));
      if (akp == Complex{}) continue;
      for (std::size_t q = 0; q < c.cols(); ++q) {
        out(p, q) += akp * c(k, q);
      }
    }
  }
  return out;
}

std::vector<double> batched_quadratic_form(const CMatrix& r,
                                           const CMatrix& a) {
  if (r.rows() != r.cols() || r.rows() != a.rows()) {
    throw std::invalid_argument("batched_quadratic_form: dimension mismatch");
  }
  const std::size_t m = r.rows();
  const std::size_t g = a.cols();
  std::vector<double> out(g);
  std::vector<Complex> y(m);  // y = R a_i, reused across columns
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t row = 0; row < m; ++row) {
      Complex sum{};
      for (std::size_t col = 0; col < m; ++col) {
        sum += r(row, col) * a(col, i);
      }
      y[row] = sum;
    }
    Complex quad{};
    for (std::size_t row = 0; row < m; ++row) {
      quad += std::conj(a(row, i)) * y[row];
    }
    out[i] = quad.real();
  }
  return out;
}

std::vector<double> column_squared_norms(const CMatrix& a) {
  std::vector<double> out(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      out[c] += std::norm(a(r, c));
    }
  }
  return out;
}

CVector matvec_hermitian(const CMatrix& a, const CVector& x) {
  if (a.rows() != x.size()) {
    throw std::invalid_argument("matvec_hermitian: dimension mismatch");
  }
  CVector y(a.cols());
  for (std::size_t c = 0; c < a.cols(); ++c) {
    Complex sum{};
    for (std::size_t r = 0; r < a.rows(); ++r) {
      sum += std::conj(a(r, c)) * x[r];
    }
    y[c] = sum;
  }
  return y;
}

}  // namespace dwatch::linalg
