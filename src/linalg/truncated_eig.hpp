// Truncated Hermitian eigensolver: top-K eigenpairs by subspace
// (simultaneous) iteration with Rayleigh-Ritz extraction.
//
// P-MUSIC only needs the K dominant eigenvectors of the smoothed
// correlation matrix — K is the signal-path count (1..3 in the paper's
// scenes) while the full Jacobi EVD pays for all L eigenpairs per
// (array, tag) estimate. Subspace iteration runs one L x L by L x K
// product per step plus a K x K dense solve, so for K << L it
// amortizes far below a Jacobi sweep; the MUSIC spectrum then comes
// from the COMPLEMENT identity ||U_N^H a||^2 = ||a||^2 - ||U_S^H a||^2
// without ever forming the noise basis.
//
// This is an approximation with an escape hatch, not a replacement:
// when K is close to L (no savings, weaker convergence) or the
// iteration stalls (tiny spectral gap), callers get
// `used_dense_fallback` / `converged == false` and are expected to run
// the dense path — music.cpp does exactly that, so accuracy never
// degrades silently.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/complex_matrix.hpp"
#include "linalg/hermitian_eig.hpp"

namespace dwatch::linalg {

struct TruncatedEigOptions {
  /// Number of dominant eigenpairs to extract (K). Clamped to n; 0
  /// throws std::invalid_argument.
  std::size_t rank = 2;
  /// Converged when every Ritz residual ||A u - theta u||_2 falls below
  /// `tolerance * ||A||_F`.
  double tolerance = 1e-10;
  /// Iteration cap; hitting it returns converged == false (no throw —
  /// the caller chooses dense fallback or acceptance).
  std::size_t max_iterations = 200;
};

struct TruncatedEigResult {
  /// Top-K eigenvalues, DESCENDING (same convention as hermitian_eig).
  std::vector<double> eigenvalues;
  /// n x K orthonormal eigenvector columns, column i pairs with
  /// eigenvalues[i].
  CMatrix eigenvectors;
  /// Every residual met tolerance (always true on the dense fallback).
  bool converged = false;
  /// rank was too close to n for iteration to pay off, so the dense
  /// Jacobi solver ran and the top-K slice of its output is returned.
  bool used_dense_fallback = false;
  /// Subspace iterations performed (0 on the dense fallback).
  std::size_t iterations = 0;
  /// Re(trace(A)) — callers reconstruct the noise floor from it:
  /// sum of the (n - K) discarded eigenvalues == trace - sum(top K).
  double trace = 0.0;
};

/// Top-K eigenpairs of a Hermitian matrix.
///
/// Throws std::invalid_argument if `a` is not square, not Hermitian
/// within 1e-8, or options.rank == 0. Rank >= n - 1 silently runs the
/// dense solver (used_dense_fallback).
[[nodiscard]] TruncatedEigResult truncated_hermitian_eig(
    const CMatrix& a, const TruncatedEigOptions& options = {});

}  // namespace dwatch::linalg
