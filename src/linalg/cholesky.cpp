#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace dwatch::linalg {

CMatrix cholesky(const CMatrix& a, double tol) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky: matrix not square");
  }
  if (!a.is_hermitian(1e-8)) {
    throw std::invalid_argument("cholesky: matrix not Hermitian");
  }
  const std::size_t n = a.rows();
  CMatrix l(n, n);
  const double scale = std::max(1.0, a.frobenius_norm());
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j).real();
    for (std::size_t k = 0; k < j; ++k) diag -= std::norm(l(j, k));
    if (diag <= tol * scale) {
      throw std::runtime_error("cholesky: matrix not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = Complex{ljj, 0.0};
    for (std::size_t i = j + 1; i < n; ++i) {
      Complex sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= l(i, k) * std::conj(l(j, k));
      }
      l(i, j) = sum / ljj;
    }
  }
  return l;
}

CVector forward_substitute(const CMatrix& l, const CVector& b) {
  if (l.rows() != l.cols() || l.rows() != b.size()) {
    throw std::invalid_argument("forward_substitute: dimension mismatch");
  }
  const std::size_t n = b.size();
  CVector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    Complex sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    if (l(i, i) == Complex{}) {
      throw std::runtime_error("forward_substitute: singular factor");
    }
    y[i] = sum / l(i, i);
  }
  return y;
}

CVector backward_substitute_hermitian(const CMatrix& l, const CVector& y) {
  if (l.rows() != l.cols() || l.rows() != y.size()) {
    throw std::invalid_argument(
        "backward_substitute_hermitian: dimension mismatch");
  }
  const std::size_t n = y.size();
  CVector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    Complex sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) {
      sum -= std::conj(l(k, ii)) * x[k];
    }
    if (l(ii, ii) == Complex{}) {
      throw std::runtime_error("backward_substitute_hermitian: singular");
    }
    x[ii] = sum / std::conj(l(ii, ii));
  }
  return x;
}

CVector cholesky_solve(const CMatrix& a, const CVector& b) {
  const CMatrix l = cholesky(a);
  return backward_substitute_hermitian(l, forward_substitute(l, b));
}

CMatrix cholesky_inverse(const CMatrix& a) {
  const std::size_t n = a.rows();
  const CMatrix l = cholesky(a);
  CMatrix inv(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    CVector e(n);
    e[j] = Complex{1.0, 0.0};
    const CVector x = backward_substitute_hermitian(l, forward_substitute(l, e));
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = x[i];
  }
  return inv;
}

}  // namespace dwatch::linalg
