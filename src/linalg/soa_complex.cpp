#include "linalg/soa_complex.hpp"

namespace dwatch::linalg {

namespace {

std::size_t padded(std::size_t cols) {
  const std::size_t pad = SplitComplexMatrix::kPadDoubles;
  return (cols + pad - 1) / pad * pad;
}

}  // namespace

SplitComplexMatrix::SplitComplexMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      stride_(cols == 0 ? 0 : padded(cols)),
      re_(rows * stride_, 0.0),
      im_(rows * stride_, 0.0) {}

SplitComplexMatrix SplitComplexMatrix::from_matrix(const CMatrix& m) {
  SplitComplexMatrix out(m.rows(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double* re = out.re_row(r);
    double* im = out.im_row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) {
      re[c] = m(r, c).real();
      im[c] = m(r, c).imag();
    }
  }
  return out;
}

SplitComplexMatrix SplitComplexMatrix::from_matrix_transposed(
    const CMatrix& m) {
  SplitComplexMatrix out(m.cols(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out.re_row(c)[r] = m(r, c).real();
      out.im_row(c)[r] = m(r, c).imag();
    }
  }
  return out;
}

CMatrix SplitComplexMatrix::to_matrix() const {
  CMatrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* re = re_row(r);
    const double* im = im_row(r);
    for (std::size_t c = 0; c < cols_; ++c) {
      out(r, c) = Complex{re[c], im[c]};
    }
  }
  return out;
}

}  // namespace dwatch::linalg
