// Backend selection + public kernel entry points for the SIMD layer.
//
// Selection is resolved once (relaxed-atomic memo) so the hot path pays
// one load + switch. The env override exists for operators chasing a
// suspected kernel bug in the field: DWATCH_SIMD=off reruns the exact
// legacy scalar path with zero rebuild.
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

#include "linalg/simd_detail.hpp"
#include "linalg/simd_kernels.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace dwatch::linalg::simd {

namespace {

// -1 = unset; otherwise a Backend value.
std::atomic<int> g_override{-1};
std::atomic<int> g_active{-1};

Backend clamp_supported(Backend requested) noexcept {
  switch (requested) {
    case Backend::kAvx2:
#if DWATCH_SIMD_X86
      if (detail::avx2_available()) return Backend::kAvx2;
#endif
      return Backend::kScalar;
    case Backend::kNeon:
#if DWATCH_SIMD_NEON
      return Backend::kNeon;
#else
      return Backend::kScalar;
#endif
    case Backend::kScalar:
      break;
  }
  return Backend::kScalar;
}

Backend resolve() noexcept {
  const detail::EnvRequest env =
      detail::parse_env(std::getenv("DWATCH_SIMD"));
  if (env.forced_scalar) return Backend::kScalar;
  if (env.has_request) return clamp_supported(env.requested);
  return detected_backend();
}

}  // namespace

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
    case Backend::kScalar:
      break;
  }
  return "scalar";
}

bool compiled_with_simd() noexcept {
  return DWATCH_SIMD_X86 != 0 || DWATCH_SIMD_NEON != 0;
}

Backend detected_backend() noexcept {
#if DWATCH_SIMD_X86
  if (detail::avx2_available()) return Backend::kAvx2;
#endif
#if DWATCH_SIMD_NEON
  return Backend::kNeon;
#endif
  return Backend::kScalar;
}

Backend active_backend() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Backend>(forced);
  int cached = g_active.load(std::memory_order_relaxed);
  if (cached < 0) {
    // Benign race: resolve() is deterministic, so concurrent first
    // callers store the same value.
    cached = static_cast<int>(resolve());
    g_active.store(cached, std::memory_order_relaxed);
  }
  return static_cast<Backend>(cached);
}

void set_backend_override(Backend backend) noexcept {
  g_override.store(static_cast<int>(clamp_supported(backend)),
                   std::memory_order_relaxed);
}

void clear_backend_override() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
}

void publish_backend() {
  if (!obs::enabled()) return;
  const Backend backend = active_backend();
  const char* name = backend_name(backend);
  std::string labels = "backend=\"";
  labels += name;
  labels += '"';
  obs::MetricsRegistry::global()
      .gauge("dwatch_simd_backend", labels)
      .set(static_cast<double>(static_cast<int>(backend)));
  obs::EventLog::global().emit(obs::Event("simd.dispatch")
                                   .field("backend", name)
                                   .field("compiled", compiled_with_simd())
                                   .field("detected",
                                          backend_name(detected_backend())));
}

namespace detail {

EnvRequest parse_env(const char* value) noexcept {
  EnvRequest out;
  if (value == nullptr) return out;
  const std::string_view v(value);
  if (v == "off" || v == "OFF" || v == "scalar" || v == "0") {
    out.forced_scalar = true;
  } else if (v == "avx2" || v == "AVX2") {
    out.has_request = true;
    out.requested = Backend::kAvx2;
  } else if (v == "neon" || v == "NEON") {
    out.has_request = true;
    out.requested = Backend::kNeon;
  }
  // Anything else (including "auto" and "") falls through to detection.
  return out;
}

}  // namespace detail

std::vector<double> batched_quadratic_form(const CMatrix& r,
                                           const SplitComplexMatrix& a) {
  if (r.rows() != r.cols() || r.rows() != a.rows()) {
    throw std::invalid_argument("batched_quadratic_form: dimension mismatch");
  }
  std::vector<double> out(a.cols());
  if (out.empty()) return out;
  switch (active_backend()) {
#if DWATCH_SIMD_X86
    case Backend::kAvx2:
      detail::batched_quadratic_form_avx2(r, a, out.data());
      return out;
#endif
#if DWATCH_SIMD_NEON
    case Backend::kNeon:
      detail::batched_quadratic_form_neon(r, a, out.data());
      return out;
#endif
    default:
      detail::batched_quadratic_form_lanes(r, a, 0, a.cols(), out.data());
      return out;
  }
}

SplitComplexMatrix matmul_hermitian_left(const CMatrix& u,
                                         const SplitComplexMatrix& c) {
  if (u.rows() != c.rows()) {
    throw std::invalid_argument("matmul_hermitian_left: row mismatch");
  }
  SplitComplexMatrix out(u.cols(), c.cols());
  if (out.empty()) return out;
  switch (active_backend()) {
#if DWATCH_SIMD_X86
    case Backend::kAvx2:
      detail::matmul_hermitian_left_avx2(u, c, out);
      return out;
#endif
#if DWATCH_SIMD_NEON
    case Backend::kNeon:
      detail::matmul_hermitian_left_neon(u, c, out);
      return out;
#endif
    default:
      detail::matmul_hermitian_left_lanes(u, c, 0, c.cols(), out);
      return out;
  }
}

std::vector<double> column_squared_norms(const SplitComplexMatrix& a) {
  std::vector<double> out(a.cols(), 0.0);
  if (out.empty()) return out;
  switch (active_backend()) {
#if DWATCH_SIMD_X86
    case Backend::kAvx2:
      detail::column_squared_norms_avx2(a, out.data());
      return out;
#endif
#if DWATCH_SIMD_NEON
    case Backend::kNeon:
      detail::column_squared_norms_neon(a, out.data());
      return out;
#endif
    default:
      detail::column_squared_norms_lanes(a, 0, a.cols(), out.data());
      return out;
  }
}

CMatrix sample_correlation(const SplitComplexMatrix& xt) {
  if (xt.rows() == 0 || xt.cols() == 0) {
    throw std::invalid_argument("sample_correlation: empty snapshot matrix");
  }
  CMatrix out(xt.cols(), xt.cols());
  switch (active_backend()) {
#if DWATCH_SIMD_X86
    case Backend::kAvx2:
      detail::sample_correlation_avx2(xt, out);
      return out;
#endif
#if DWATCH_SIMD_NEON
    case Backend::kNeon:
      detail::sample_correlation_neon(xt, out);
      return out;
#endif
    default:
      detail::sample_correlation_lanes(xt, 0, xt.cols(), out);
      return out;
  }
}

void accumulate_outer_products(const SplitComplexMatrix& xt,
                               SplitComplexMatrix& acc) {
  if (xt.rows() == 0 || xt.cols() == 0) {
    throw std::invalid_argument(
        "accumulate_outer_products: empty snapshot chunk");
  }
  if (acc.rows() != xt.cols() || acc.cols() != xt.cols()) {
    throw std::invalid_argument(
        "accumulate_outer_products: accumulator shape mismatch");
  }
  switch (active_backend()) {
#if DWATCH_SIMD_X86
    case Backend::kAvx2:
      detail::accumulate_outer_products_avx2(xt, acc);
      return;
#endif
#if DWATCH_SIMD_NEON
    case Backend::kNeon:
      detail::accumulate_outer_products_neon(xt, acc);
      return;
#endif
    default:
      detail::accumulate_outer_products_lanes(xt, 0, xt.cols(), acc);
      return;
  }
}

}  // namespace dwatch::linalg::simd
