// AVX2 kernels: 4 double lanes = 4 independent grid columns (or 4
// covariance columns) per vector.
//
// Parity discipline (see simd_kernels.hpp): every lane replays the
// scalar accumulation order of the matching *_lanes function in
// simd_detail.hpp — the vector ops are plain mul/add/sub in the same
// sequence, never FMA (AVX2 does not imply the FMA ISA and none of the
// _mm256_fmadd_* intrinsics appear here), so each lane's rounding is
// identical to the scalar oracle's. Odd tails (< 4 lanes) run the
// shared *_lanes code.
//
// Functions carry __attribute__((target("avx2"))) instead of a
// per-file -mavx2 flag so nothing outside them can silently pick up
// AVX2 codegen; dispatch guards every call behind avx2_available().
#include "linalg/simd_detail.hpp"

#if DWATCH_SIMD_X86

#include <immintrin.h>

namespace dwatch::linalg::simd::detail {

bool avx2_available() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

__attribute__((target("avx2"))) void batched_quadratic_form_avx2(
    const CMatrix& r, const SplitComplexMatrix& a, double* out) {
  const std::size_t m = r.rows();
  const std::size_t g_total = a.cols();
  const std::size_t g_vec = g_total / 4 * 4;
  for (std::size_t g = 0; g < g_vec; g += 4) {
    __m256d quad_re = _mm256_setzero_pd();
    for (std::size_t row = 0; row < m; ++row) {
      __m256d y_re = _mm256_setzero_pd();
      __m256d y_im = _mm256_setzero_pd();
      for (std::size_t col = 0; col < m; ++col) {
        const __m256d rr = _mm256_set1_pd(r(row, col).real());
        const __m256d ri = _mm256_set1_pd(r(row, col).imag());
        const __m256d ar = _mm256_loadu_pd(a.re_row(col) + g);
        const __m256d ai = _mm256_loadu_pd(a.im_row(col) + g);
        y_re = _mm256_add_pd(
            y_re, _mm256_sub_pd(_mm256_mul_pd(rr, ar), _mm256_mul_pd(ri, ai)));
        y_im = _mm256_add_pd(
            y_im, _mm256_add_pd(_mm256_mul_pd(rr, ai), _mm256_mul_pd(ri, ar)));
      }
      const __m256d cr = _mm256_loadu_pd(a.re_row(row) + g);
      const __m256d ci = _mm256_loadu_pd(a.im_row(row) + g);
      // quad.real() is all the oracle returns; skip the imaginary
      // accumulator entirely (it feeds nothing).
      quad_re = _mm256_add_pd(
          quad_re,
          _mm256_add_pd(_mm256_mul_pd(cr, y_re), _mm256_mul_pd(ci, y_im)));
    }
    _mm256_storeu_pd(out + g, quad_re);
  }
  batched_quadratic_form_lanes(r, a, g_vec, g_total, out);
}

__attribute__((target("avx2"))) void matmul_hermitian_left_avx2(
    const CMatrix& u, const SplitComplexMatrix& c, SplitComplexMatrix& out) {
  // Runs whole vectors across the PADDED width: padding columns are
  // zero in `c` and accumulate exact zeros in `out`, which to_matrix()
  // and column_squared_norms() never read. Stride is a multiple of 4,
  // so there is no tail.
  const std::size_t width = c.stride();
  for (std::size_t k = 0; k < u.rows(); ++k) {
    const double* c_re = c.re_row(k);
    const double* c_im = c.im_row(k);
    for (std::size_t p = 0; p < u.cols(); ++p) {
      const double ur_s = u(k, p).real();
      const double ui_s = u(k, p).imag();
      if (ur_s == 0.0 && ui_s == 0.0) continue;  // oracle's zero-skip
      const __m256d ur = _mm256_set1_pd(ur_s);
      const __m256d ui = _mm256_set1_pd(ui_s);
      double* o_re = out.re_row(p);
      double* o_im = out.im_row(p);
      for (std::size_t g = 0; g < width; g += 4) {
        const __m256d cr = _mm256_loadu_pd(c_re + g);
        const __m256d ci = _mm256_loadu_pd(c_im + g);
        const __m256d acc_re = _mm256_add_pd(
            _mm256_loadu_pd(o_re + g),
            _mm256_add_pd(_mm256_mul_pd(ur, cr), _mm256_mul_pd(ui, ci)));
        const __m256d acc_im = _mm256_add_pd(
            _mm256_loadu_pd(o_im + g),
            _mm256_sub_pd(_mm256_mul_pd(ur, ci), _mm256_mul_pd(ui, cr)));
        _mm256_storeu_pd(o_re + g, acc_re);
        _mm256_storeu_pd(o_im + g, acc_im);
      }
    }
  }
}

__attribute__((target("avx2"))) void column_squared_norms_avx2(
    const SplitComplexMatrix& a, double* out) {
  const std::size_t g_total = a.cols();
  const std::size_t g_vec = g_total / 4 * 4;
  for (std::size_t g = 0; g < g_vec; g += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t r = 0; r < a.rows(); ++r) {
      const __m256d re = _mm256_loadu_pd(a.re_row(r) + g);
      const __m256d im = _mm256_loadu_pd(a.im_row(r) + g);
      acc = _mm256_add_pd(
          acc, _mm256_add_pd(_mm256_mul_pd(re, re), _mm256_mul_pd(im, im)));
    }
    _mm256_storeu_pd(out + g, acc);
  }
  column_squared_norms_lanes(a, g_vec, g_total, out);
}

__attribute__((target("avx2"))) void sample_correlation_avx2(
    const SplitComplexMatrix& xt, CMatrix& out) {
  const std::size_t n = xt.rows();
  const std::size_t m = xt.cols();
  const std::size_t j_vec = m / 4 * 4;
  const __m256d n_d = _mm256_set1_pd(static_cast<double>(n));
  alignas(32) double t_re[4];
  alignas(32) double t_im[4];
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < j_vec; j += 4) {
      __m256d s_re = _mm256_setzero_pd();
      __m256d s_im = _mm256_setzero_pd();
      for (std::size_t k = 0; k < n; ++k) {
        const __m256d xa = _mm256_set1_pd(xt.re_row(k)[i]);
        const __m256d xb = _mm256_set1_pd(xt.im_row(k)[i]);
        const __m256d wc = _mm256_loadu_pd(xt.re_row(k) + j);
        const __m256d wd = _mm256_loadu_pd(xt.im_row(k) + j);
        s_re = _mm256_add_pd(
            s_re,
            _mm256_add_pd(_mm256_mul_pd(xa, wc), _mm256_mul_pd(xb, wd)));
        s_im = _mm256_add_pd(
            s_im,
            _mm256_sub_pd(_mm256_mul_pd(xb, wc), _mm256_mul_pd(xa, wd)));
      }
      _mm256_store_pd(t_re, _mm256_div_pd(s_re, n_d));
      _mm256_store_pd(t_im, _mm256_div_pd(s_im, n_d));
      for (std::size_t l = 0; l < 4; ++l) {
        out(i, j + l) = Complex{t_re[l], t_im[l]};
      }
    }
  }
  sample_correlation_lanes(xt, j_vec, m, out);
}

__attribute__((target("avx2"))) void accumulate_outer_products_avx2(
    const SplitComplexMatrix& xt, SplitComplexMatrix& acc) {
  const std::size_t n = xt.rows();
  const std::size_t m = xt.cols();
  const std::size_t j_vec = m / 4 * 4;
  for (std::size_t i = 0; i < m; ++i) {
    double* a_re = acc.re_row(i);
    double* a_im = acc.im_row(i);
    for (std::size_t j = 0; j < j_vec; j += 4) {
      // Resume the partial sums from the accumulator; the k-chain below
      // is sample_correlation_avx2's, minus the trailing divide.
      __m256d s_re = _mm256_loadu_pd(a_re + j);
      __m256d s_im = _mm256_loadu_pd(a_im + j);
      for (std::size_t k = 0; k < n; ++k) {
        const __m256d xa = _mm256_set1_pd(xt.re_row(k)[i]);
        const __m256d xb = _mm256_set1_pd(xt.im_row(k)[i]);
        const __m256d wc = _mm256_loadu_pd(xt.re_row(k) + j);
        const __m256d wd = _mm256_loadu_pd(xt.im_row(k) + j);
        s_re = _mm256_add_pd(
            s_re,
            _mm256_add_pd(_mm256_mul_pd(xa, wc), _mm256_mul_pd(xb, wd)));
        s_im = _mm256_add_pd(
            s_im,
            _mm256_sub_pd(_mm256_mul_pd(xb, wc), _mm256_mul_pd(xa, wd)));
      }
      _mm256_storeu_pd(a_re + j, s_re);
      _mm256_storeu_pd(a_im + j, s_im);
    }
  }
  accumulate_outer_products_lanes(xt, j_vec, m, acc);
}

}  // namespace dwatch::linalg::simd::detail

#endif  // DWATCH_SIMD_X86
