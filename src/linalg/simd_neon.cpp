// NEON kernels: 2 double lanes per float64x2_t vector, same lane
// discipline as simd_avx2.cpp (plain vmul/vadd/vsub, no vfma — the
// linalg target's -ffp-contract=off also stops the compiler fusing
// them), tails via the shared *_lanes scalar code.
//
// AArch64 makes NEON mandatory, so there is no runtime capability
// probe; the build-time guard is the whole gate.
#include "linalg/simd_detail.hpp"

#if DWATCH_SIMD_NEON

#include <arm_neon.h>

namespace dwatch::linalg::simd::detail {

void batched_quadratic_form_neon(const CMatrix& r, const SplitComplexMatrix& a,
                                 double* out) {
  const std::size_t m = r.rows();
  const std::size_t g_total = a.cols();
  const std::size_t g_vec = g_total / 2 * 2;
  for (std::size_t g = 0; g < g_vec; g += 2) {
    float64x2_t quad_re = vdupq_n_f64(0.0);
    for (std::size_t row = 0; row < m; ++row) {
      float64x2_t y_re = vdupq_n_f64(0.0);
      float64x2_t y_im = vdupq_n_f64(0.0);
      for (std::size_t col = 0; col < m; ++col) {
        const float64x2_t rr = vdupq_n_f64(r(row, col).real());
        const float64x2_t ri = vdupq_n_f64(r(row, col).imag());
        const float64x2_t ar = vld1q_f64(a.re_row(col) + g);
        const float64x2_t ai = vld1q_f64(a.im_row(col) + g);
        y_re = vaddq_f64(y_re,
                         vsubq_f64(vmulq_f64(rr, ar), vmulq_f64(ri, ai)));
        y_im = vaddq_f64(y_im,
                         vaddq_f64(vmulq_f64(rr, ai), vmulq_f64(ri, ar)));
      }
      const float64x2_t cr = vld1q_f64(a.re_row(row) + g);
      const float64x2_t ci = vld1q_f64(a.im_row(row) + g);
      quad_re = vaddq_f64(
          quad_re, vaddq_f64(vmulq_f64(cr, y_re), vmulq_f64(ci, y_im)));
    }
    vst1q_f64(out + g, quad_re);
  }
  batched_quadratic_form_lanes(r, a, g_vec, g_total, out);
}

void matmul_hermitian_left_neon(const CMatrix& u, const SplitComplexMatrix& c,
                                SplitComplexMatrix& out) {
  // Full padded width, no tail (stride is a multiple of 2); padding
  // stays exactly zero. See the AVX2 twin for the rationale.
  const std::size_t width = c.stride();
  for (std::size_t k = 0; k < u.rows(); ++k) {
    const double* c_re = c.re_row(k);
    const double* c_im = c.im_row(k);
    for (std::size_t p = 0; p < u.cols(); ++p) {
      const double ur_s = u(k, p).real();
      const double ui_s = u(k, p).imag();
      if (ur_s == 0.0 && ui_s == 0.0) continue;  // oracle's zero-skip
      const float64x2_t ur = vdupq_n_f64(ur_s);
      const float64x2_t ui = vdupq_n_f64(ui_s);
      double* o_re = out.re_row(p);
      double* o_im = out.im_row(p);
      for (std::size_t g = 0; g < width; g += 2) {
        const float64x2_t cr = vld1q_f64(c_re + g);
        const float64x2_t ci = vld1q_f64(c_im + g);
        const float64x2_t acc_re =
            vaddq_f64(vld1q_f64(o_re + g),
                      vaddq_f64(vmulq_f64(ur, cr), vmulq_f64(ui, ci)));
        const float64x2_t acc_im =
            vaddq_f64(vld1q_f64(o_im + g),
                      vsubq_f64(vmulq_f64(ur, ci), vmulq_f64(ui, cr)));
        vst1q_f64(o_re + g, acc_re);
        vst1q_f64(o_im + g, acc_im);
      }
    }
  }
}

void column_squared_norms_neon(const SplitComplexMatrix& a, double* out) {
  const std::size_t g_total = a.cols();
  const std::size_t g_vec = g_total / 2 * 2;
  for (std::size_t g = 0; g < g_vec; g += 2) {
    float64x2_t acc = vdupq_n_f64(0.0);
    for (std::size_t r = 0; r < a.rows(); ++r) {
      const float64x2_t re = vld1q_f64(a.re_row(r) + g);
      const float64x2_t im = vld1q_f64(a.im_row(r) + g);
      acc = vaddq_f64(acc, vaddq_f64(vmulq_f64(re, re), vmulq_f64(im, im)));
    }
    vst1q_f64(out + g, acc);
  }
  column_squared_norms_lanes(a, g_vec, g_total, out);
}

void sample_correlation_neon(const SplitComplexMatrix& xt, CMatrix& out) {
  const std::size_t n = xt.rows();
  const std::size_t m = xt.cols();
  const std::size_t j_vec = m / 2 * 2;
  const float64x2_t n_d = vdupq_n_f64(static_cast<double>(n));
  double t_re[2];
  double t_im[2];
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < j_vec; j += 2) {
      float64x2_t s_re = vdupq_n_f64(0.0);
      float64x2_t s_im = vdupq_n_f64(0.0);
      for (std::size_t k = 0; k < n; ++k) {
        const float64x2_t xa = vdupq_n_f64(xt.re_row(k)[i]);
        const float64x2_t xb = vdupq_n_f64(xt.im_row(k)[i]);
        const float64x2_t wc = vld1q_f64(xt.re_row(k) + j);
        const float64x2_t wd = vld1q_f64(xt.im_row(k) + j);
        s_re = vaddq_f64(s_re,
                         vaddq_f64(vmulq_f64(xa, wc), vmulq_f64(xb, wd)));
        s_im = vaddq_f64(s_im,
                         vsubq_f64(vmulq_f64(xb, wc), vmulq_f64(xa, wd)));
      }
      vst1q_f64(t_re, vdivq_f64(s_re, n_d));
      vst1q_f64(t_im, vdivq_f64(s_im, n_d));
      for (std::size_t l = 0; l < 2; ++l) {
        out(i, j + l) = Complex{t_re[l], t_im[l]};
      }
    }
  }
  sample_correlation_lanes(xt, j_vec, m, out);
}

void accumulate_outer_products_neon(const SplitComplexMatrix& xt,
                                    SplitComplexMatrix& acc) {
  const std::size_t n = xt.rows();
  const std::size_t m = xt.cols();
  const std::size_t j_vec = m / 2 * 2;
  for (std::size_t i = 0; i < m; ++i) {
    double* a_re = acc.re_row(i);
    double* a_im = acc.im_row(i);
    for (std::size_t j = 0; j < j_vec; j += 2) {
      // Resume the partial sums from the accumulator; the k-chain below
      // is sample_correlation_neon's, minus the trailing divide.
      float64x2_t s_re = vld1q_f64(a_re + j);
      float64x2_t s_im = vld1q_f64(a_im + j);
      for (std::size_t k = 0; k < n; ++k) {
        const float64x2_t xa = vdupq_n_f64(xt.re_row(k)[i]);
        const float64x2_t xb = vdupq_n_f64(xt.im_row(k)[i]);
        const float64x2_t wc = vld1q_f64(xt.re_row(k) + j);
        const float64x2_t wd = vld1q_f64(xt.im_row(k) + j);
        s_re = vaddq_f64(s_re,
                         vaddq_f64(vmulq_f64(xa, wc), vmulq_f64(xb, wd)));
        s_im = vaddq_f64(s_im,
                         vsubq_f64(vmulq_f64(xb, wc), vmulq_f64(xa, wd)));
      }
      vst1q_f64(a_re + j, s_re);
      vst1q_f64(a_im + j, s_im);
    }
  }
  accumulate_outer_products_lanes(xt, j_vec, m, acc);
}

}  // namespace dwatch::linalg::simd::detail

#endif  // DWATCH_SIMD_NEON
