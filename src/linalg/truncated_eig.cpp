#include "linalg/truncated_eig.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dwatch::linalg {

namespace {

/// Deterministic, seed-free start basis: phases from a fixed irrational
/// stride so columns are generically non-orthogonal to any eigenvector
/// and two runs (or two hosts) produce identical results.
CMatrix deterministic_start(std::size_t n, std::size_t k) {
  CMatrix v(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const double phase = 0.61803398874989484820 *
                               static_cast<double>((i + 1) * (j + 2)) +
                           0.1 * static_cast<double>(j);
      v(i, j) = Complex{std::cos(phase), std::sin(phase)};
    }
  }
  return v;
}

/// In-place modified Gram-Schmidt on the columns of v. A column that
/// collapses below `floor` (linear dependence) is replaced by a
/// deterministic unit vector re-orthogonalized against the previous
/// columns, so the basis never degenerates mid-iteration.
void orthonormalize(CMatrix& v, double floor) {
  const std::size_t n = v.rows();
  const std::size_t k = v.cols();
  for (std::size_t j = 0; j < k; ++j) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      for (std::size_t prev = 0; prev < j; ++prev) {
        Complex dot{};
        for (std::size_t i = 0; i < n; ++i) {
          dot += std::conj(v(i, prev)) * v(i, j);
        }
        for (std::size_t i = 0; i < n; ++i) v(i, j) -= dot * v(i, prev);
      }
      double norm_sq = 0.0;
      for (std::size_t i = 0; i < n; ++i) norm_sq += std::norm(v(i, j));
      const double norm = std::sqrt(norm_sq);
      if (norm > floor) {
        const double inv = 1.0 / norm;
        for (std::size_t i = 0; i < n; ++i) v(i, j) *= inv;
        break;
      }
      // Re-seed: unit basis vector e_{j mod n} is orthogonal-enough to
      // restart from; the retry pass re-orthogonalizes it.
      for (std::size_t i = 0; i < n; ++i) v(i, j) = Complex{};
      v(j % n, j) = Complex{1.0, 0.0};
    }
  }
}

TruncatedEigResult dense_fallback(const CMatrix& a, std::size_t k) {
  const EigenDecomposition dense = hermitian_eig(a);
  TruncatedEigResult result;
  result.eigenvalues.assign(dense.eigenvalues.begin(),
                            dense.eigenvalues.begin() +
                                static_cast<std::ptrdiff_t>(k));
  result.eigenvectors = dense.eigenvectors.block(0, 0, a.rows(), k);
  result.converged = true;
  result.used_dense_fallback = true;
  result.trace = a.trace().real();
  return result;
}

}  // namespace

TruncatedEigResult truncated_hermitian_eig(const CMatrix& a,
                                           const TruncatedEigOptions& options) {
  if (a.rows() != a.cols() || a.rows() == 0) {
    throw std::invalid_argument("truncated_hermitian_eig: not square");
  }
  if (!a.is_hermitian(1e-8)) {
    throw std::invalid_argument("truncated_hermitian_eig: not Hermitian");
  }
  if (options.rank == 0) {
    throw std::invalid_argument("truncated_hermitian_eig: rank == 0");
  }
  const std::size_t n = a.rows();
  const std::size_t k = std::min(options.rank, n);

  // Iteration only pays off (and only converges robustly) for K well
  // below N: at K >= N-1 the K x K Ritz solve is already nearly the
  // full problem, so run the dense solver outright.
  if (k + 1 >= n) return dense_fallback(a, k);

  const double scale = a.frobenius_norm();
  TruncatedEigResult result;
  result.trace = a.trace().real();
  if (scale == 0.0) {
    // Zero matrix: any orthonormal set is an eigenbasis.
    CMatrix v = deterministic_start(n, k);
    orthonormalize(v, 1e-300);
    result.eigenvalues.assign(k, 0.0);
    result.eigenvectors = v;
    result.converged = true;
    return result;
  }
  const double residual_budget = options.tolerance * scale;

  CMatrix v = deterministic_start(n, k);
  orthonormalize(v, 1e-12);

  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;
    const CMatrix av = a * v;

    // Rayleigh-Ritz on span(v): B = V^H (A V), symmetrized because the
    // Jacobi solver insists on exact-enough Hermitian input.
    CMatrix b = matmul_hermitian_left(v, av);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i; j < k; ++j) {
        const Complex mean =
            0.5 * (b(i, j) + std::conj(b(j, i)));
        b(i, j) = mean;
        b(j, i) = std::conj(mean);
      }
    }
    const EigenDecomposition ritz = hermitian_eig(b);

    const CMatrix u = v * ritz.eigenvectors;       // Ritz vectors
    const CMatrix au = av * ritz.eigenvectors;     // A * Ritz vectors
    double worst = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      double res_sq = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        res_sq += std::norm(au(i, j) - ritz.eigenvalues[j] * u(i, j));
      }
      worst = std::max(worst, std::sqrt(res_sq));
    }
    if (worst <= residual_budget) {
      result.eigenvalues = ritz.eigenvalues;
      result.eigenvectors = u;
      result.converged = true;
      return result;
    }

    // Power step: advance the subspace along A and re-orthonormalize.
    // au spans A * span(v) (eigenvector rotation is unitary), saving a
    // second full product.
    v = au;
    orthonormalize(v, 1e-12);
  }

  // Stalled: hand back the best subspace found, flagged unconverged so
  // the caller can fall back to dense.
  const CMatrix av = a * v;
  CMatrix b = matmul_hermitian_left(v, av);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i; j < k; ++j) {
      const Complex mean = 0.5 * (b(i, j) + std::conj(b(j, i)));
      b(i, j) = mean;
      b(j, i) = std::conj(mean);
    }
  }
  const EigenDecomposition ritz = hermitian_eig(b);
  result.eigenvalues = ritz.eigenvalues;
  result.eigenvectors = v * ritz.eigenvectors;
  result.converged = false;
  return result;
}

}  // namespace dwatch::linalg
