// Cholesky factorization and linear solves for Hermitian positive-definite
// complex matrices.
//
// Used for least-squares refinement steps (normal equations) in the phase
// calibration pipeline and for whitening experiments; also a convenient
// well-conditioned inverse for small correlation matrices in tests.
#pragma once

#include "linalg/complex_matrix.hpp"

namespace dwatch::linalg {

/// Lower-triangular Cholesky factor L with A = L L^H.
///
/// Throws std::invalid_argument if `a` is not square/Hermitian and
/// std::runtime_error if a pivot is not strictly positive (matrix not
/// positive definite within tolerance).
[[nodiscard]] CMatrix cholesky(const CMatrix& a, double tol = 1e-12);

/// Solve A x = b for Hermitian positive-definite A via Cholesky.
[[nodiscard]] CVector cholesky_solve(const CMatrix& a, const CVector& b);

/// Inverse of a Hermitian positive-definite matrix via Cholesky.
[[nodiscard]] CMatrix cholesky_inverse(const CMatrix& a);

/// Forward substitution: solve L y = b with lower-triangular L.
[[nodiscard]] CVector forward_substitute(const CMatrix& l, const CVector& b);

/// Backward substitution: solve L^H x = y with lower-triangular L.
[[nodiscard]] CVector backward_substitute_hermitian(const CMatrix& l,
                                                    const CVector& y);

}  // namespace dwatch::linalg
