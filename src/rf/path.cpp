#include "rf/path.hpp"

#include <ostream>
#include <stdexcept>

namespace dwatch::rf {

const char* to_string(PathKind kind) noexcept {
  switch (kind) {
    case PathKind::kDirect:
      return "direct";
    case PathKind::kWall:
      return "wall";
    case PathKind::kScatterer:
      return "scatterer";
  }
  return "unknown";
}

std::pair<Vec3, Vec3> PropagationPath::leg(std::size_t i) const {
  if (i >= num_legs()) {
    throw std::out_of_range("PropagationPath::leg: index out of range");
  }
  return {vertices[i], vertices[i + 1]};
}

std::ostream& operator<<(std::ostream& os, const PropagationPath& p) {
  os << "Path{" << to_string(p.kind) << ", len=" << p.length
     << "m, aoa=" << p.aoa << "rad, |g|=" << std::abs(p.gain) << ", legs=";
  for (const auto& v : p.vertices) os << v << " ";
  return os << "}";
}

}  // namespace dwatch::rf
