// Physical constants and the UHF RFID band used throughout D-Watch.
//
// The paper's readers operate in 920.5-924.5 MHz (Chinese UHF band); the
// arrays use half-wavelength spacing d = lambda/2 = 16.25 cm, which pins
// the carrier near 922.5 MHz.
#pragma once

namespace dwatch::rf {

/// Speed of light [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Lower/upper edge of the Chinese UHF RFID band [Hz] (paper Section 5).
inline constexpr double kBandLowHz = 920.5e6;
inline constexpr double kBandHighHz = 924.5e6;

/// Default carrier frequency [Hz]: band centre.
inline constexpr double kDefaultCarrierHz = 922.5e6;

/// Wavelength [m] for a carrier frequency [Hz].
[[nodiscard]] constexpr double wavelength(double carrier_hz) {
  return kSpeedOfLight / carrier_hz;
}

/// Default wavelength (~0.325 m).
inline constexpr double kDefaultWavelength = wavelength(kDefaultCarrierHz);

/// Default inter-element spacing: half wavelength (~16.25 cm, paper §5).
inline constexpr double kDefaultElementSpacing = kDefaultWavelength / 2.0;

/// Pi to double precision (avoids pulling <numbers> into every header).
inline constexpr double kPi = 3.141592653589793238462643383279502884;

/// Two pi.
inline constexpr double kTwoPi = 2.0 * kPi;

/// Degrees -> radians.
[[nodiscard]] constexpr double deg2rad(double deg) {
  return deg * kPi / 180.0;
}

/// Radians -> degrees.
[[nodiscard]] constexpr double rad2deg(double rad) {
  return rad * 180.0 / kPi;
}

}  // namespace dwatch::rf
