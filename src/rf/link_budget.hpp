// Link-budget amplitude model for backscatter paths.
//
// We model field AMPLITUDES (not powers): free-space amplitude over
// distance d scales as lambda / (4*pi*d); a specular wall bounce keeps a
// single 1/d spreading over the unfolded total length times a reflection
// coefficient; a point scatterer re-radiates, so each leg spreads
// independently and the product carries an effective scattering aperture.
// These choices give reflected paths that are clearly weaker than the LoS
// but comfortably above the noise floor at room scale, which is the regime
// the paper's experiments live in (paths detectable at 2..9 m, Fig. 13).
#pragma once

#include <complex>

#include "linalg/complex_matrix.hpp"
#include "rf/constants.hpp"
#include "rf/path.hpp"

namespace dwatch::rf {

/// Tunable link-budget parameters.
struct LinkBudget {
  /// Carrier wavelength [m].
  double lambda = kDefaultWavelength;
  /// Amplitude reflection coefficient of walls/shelves (0..1].
  double wall_reflection = 0.45;
  /// Effective re-radiation aperture of a point scatterer [m]; the
  /// scattered amplitude is `scatter_aperture * lambda / ((4 pi)^2 d1 d2)`
  /// -- a bistatic-radar style two-leg spreading.
  double scatter_aperture = 2.2;
  /// Extra per-bounce phase [rad] (conductor bounce ~ pi).
  double reflection_phase = kPi;
  /// Amplitude multiplier applied to a path when a target blocks it
  /// (residual diffraction energy). 0.25 amplitude ~ -12 dB power.
  double blockage_residual_amplitude = 0.25;

  /// Free-space one-leg amplitude at distance d; throws
  /// std::invalid_argument for d <= 0.
  [[nodiscard]] double free_space_amplitude(double d) const;

  /// Gain of a direct (LoS) path of length d.
  [[nodiscard]] linalg::Complex direct_gain(double d) const;

  /// Gain of a specular wall bounce of unfolded length d with the given
  /// amplitude reflection coefficient.
  [[nodiscard]] linalg::Complex wall_gain(double d, double reflection) const;

  /// Gain of a two-leg scatterer path (legs d1, d2, aperture in metres).
  [[nodiscard]] linalg::Complex scatter_gain(double d1, double d2,
                                             double aperture) const;

  /// Complex gain of an unblocked path using the default coefficients
  /// (dispatches on path.kind).
  [[nodiscard]] linalg::Complex path_gain(const PropagationPath& path) const;
};

}  // namespace dwatch::rf
