// 2-D/3-D geometry primitives for propagation modelling.
//
// World frame: x/y span the floor plan (metres), z is height above the
// floor. Arrays are horizontal uniform linear arrays; targets are vertical
// cylinders; reflectors are vertical wall segments or vertical scatterer
// poles. All blocking tests therefore reduce to 3-D segment vs. vertical
// cylinder intersections.
#pragma once

#include <iosfwd>
#include <optional>

namespace dwatch::rf {

/// 2-D point/vector in the floor plane [m].
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] double norm() const;
  [[nodiscard]] constexpr double norm_sq() const { return x * x + y * y; }
  [[nodiscard]] constexpr double dot(Vec2 o) const {
    return x * o.x + y * o.y;
  }
  /// z-component of the 3-D cross product (signed area).
  [[nodiscard]] constexpr double cross(Vec2 o) const {
    return x * o.y - y * o.x;
  }
  /// Unit vector; throws std::domain_error on the zero vector.
  [[nodiscard]] Vec2 normalized() const;
  /// Counter-clockwise perpendicular.
  [[nodiscard]] constexpr Vec2 perp() const { return {-y, x}; }
};

/// 3-D point/vector [m].
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(Vec3 o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(Vec3 o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr bool operator==(const Vec3&) const = default;

  [[nodiscard]] double norm() const;
  [[nodiscard]] constexpr double norm_sq() const {
    return x * x + y * y + z * z;
  }
  [[nodiscard]] constexpr double dot(Vec3 o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] Vec3 normalized() const;
  [[nodiscard]] constexpr Vec2 xy() const { return {x, y}; }
};

[[nodiscard]] constexpr Vec3 lift(Vec2 p, double z) { return {p.x, p.y, z}; }

std::ostream& operator<<(std::ostream& os, Vec2 v);
std::ostream& operator<<(std::ostream& os, Vec3 v);

/// Euclidean distance helpers.
[[nodiscard]] double distance(Vec2 a, Vec2 b);
[[nodiscard]] double distance(Vec3 a, Vec3 b);

/// Shortest distance from point `p` to segment [a, b] in the plane.
[[nodiscard]] double point_segment_distance(Vec2 p, Vec2 a, Vec2 b);

/// Parameter t in [0,1] of the point on [a,b] closest to p.
[[nodiscard]] double closest_point_parameter(Vec2 p, Vec2 a, Vec2 b);

/// A finite wall segment in the floor plane (extends vertically).
struct Segment2 {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const { return distance(a, b); }
  /// Unit direction a->b; throws std::domain_error on degenerate segment.
  [[nodiscard]] Vec2 direction() const { return (b - a).normalized(); }
};

/// Mirror image of point `p` across the infinite line through `seg`.
[[nodiscard]] Vec2 mirror_across(Vec2 p, const Segment2& seg);

/// Intersection of segments [p1,p2] and [q1,q2], if any (proper or
/// endpoint-touching, not collinear-overlap).
[[nodiscard]] std::optional<Vec2> segment_intersection(Vec2 p1, Vec2 p2,
                                                       Vec2 q1, Vec2 q2);

/// True iff a 3-D segment [a, b] passes within horizontal radius `radius`
/// of the vertical axis x=c.x, y=c.y for some z in [z_lo, z_hi].
///
/// This is the path-blocking primitive: targets are vertical cylinders
/// (humans, bottles, fists at a given height band) and a propagation leg
/// is blocked iff it clips the cylinder.
[[nodiscard]] bool segment_hits_vertical_cylinder(Vec3 a, Vec3 b, Vec2 c,
                                                  double radius, double z_lo,
                                                  double z_hi);

/// Bearing (radians in [0, 2*pi)) of b as seen from a, measured CCW from
/// the +x axis in the floor plane.
[[nodiscard]] double bearing(Vec2 a, Vec2 b);

/// Normalize an angle to [-pi, pi).
[[nodiscard]] double wrap_pi(double angle);

/// Normalize an angle to [0, 2*pi).
[[nodiscard]] double wrap_two_pi(double angle);

}  // namespace dwatch::rf
