// Uniform linear array (ULA) model and steering vectors.
//
// Matches the paper's Section 2.2 conventions exactly:
//   omega(m, theta) = (m-1) * (2*pi*d/lambda) * cos(theta)
//   a(theta)        = [1, e^{-j omega(2,theta)}, ..., e^{-j omega(M,theta)}]^T
// where theta in [0, pi] is measured against the array's reference
// direction. The reference direction is the negative of the element-index
// axis so that a source at theta produces exactly the signal model of
// paper Eq. (2) at the elements.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/complex_matrix.hpp"
#include "rf/constants.hpp"
#include "rf/geometry.hpp"

namespace dwatch::rf {

/// Steering phase omega(m, theta) for 1-based element index m (paper Eq. 2).
[[nodiscard]] double steering_phase(std::size_t m_one_based, double theta,
                                    double spacing, double lambda);

/// Steering vector a(theta) for an M-element ULA (paper Eq. 4).
[[nodiscard]] linalg::CVector steering_vector(std::size_t num_elements,
                                              double theta, double spacing,
                                              double lambda);

/// Physical placement + electrical parameters of one ULA.
///
/// Elements are placed at `center + axis * ((m-1) - (M-1)/2) * spacing`
/// horizontally at height `center.z`; `axis` must be a horizontal unit
/// vector (the ULA is horizontal as in the paper's deployments).
class UniformLinearArray {
 public:
  /// Throws std::invalid_argument for fewer than 2 elements, non-positive
  /// spacing/lambda, or a zero axis.
  UniformLinearArray(Vec3 center, Vec2 axis, std::size_t num_elements,
                     double spacing = kDefaultElementSpacing,
                     double carrier_hz = kDefaultCarrierHz);

  [[nodiscard]] const Vec3& center() const noexcept { return center_; }
  [[nodiscard]] Vec2 axis() const noexcept { return axis_; }
  [[nodiscard]] std::size_t num_elements() const noexcept {
    return num_elements_;
  }
  [[nodiscard]] double spacing() const noexcept { return spacing_; }
  [[nodiscard]] double carrier_hz() const noexcept { return carrier_hz_; }
  [[nodiscard]] double lambda() const noexcept { return lambda_; }
  [[nodiscard]] double aperture() const noexcept {
    return spacing_ * static_cast<double>(num_elements_ - 1);
  }

  /// World position of 1-based element m.
  [[nodiscard]] Vec3 element_position(std::size_t m_one_based) const;

  /// Arrival angle theta in [0, pi] of a signal coming FROM `source`
  /// (or from the last reflector before the array), measured in the
  /// paper's convention so that synthesized element phases follow
  /// x_m = s * e^{-j omega(m, theta)}.
  [[nodiscard]] double arrival_angle(const Vec3& source) const;

  /// Same, for a point in the floor plane at array height (the 2-D
  /// assumption the localizer makes; differs from the 3-D truth when tags
  /// and array are at different heights — paper Fig. 18).
  [[nodiscard]] double arrival_angle_planar(Vec2 source_xy) const;

  /// a(theta) for this array.
  [[nodiscard]] linalg::CVector steering(double theta) const;

 private:
  Vec3 center_;
  Vec2 axis_;
  std::size_t num_elements_;
  double spacing_;
  double carrier_hz_;
  double lambda_;
};

}  // namespace dwatch::rf
