#include "rf/array.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dwatch::rf {

double steering_phase(std::size_t m_one_based, double theta, double spacing,
                      double lambda) {
  return static_cast<double>(m_one_based - 1) * kTwoPi * spacing / lambda *
         std::cos(theta);
}

linalg::CVector steering_vector(std::size_t num_elements, double theta,
                                double spacing, double lambda) {
  linalg::CVector a(num_elements);
  for (std::size_t m = 1; m <= num_elements; ++m) {
    const double w = steering_phase(m, theta, spacing, lambda);
    a[m - 1] = std::polar(1.0, -w);
  }
  return a;
}

UniformLinearArray::UniformLinearArray(Vec3 center, Vec2 axis,
                                       std::size_t num_elements,
                                       double spacing, double carrier_hz)
    : center_(center),
      axis_(axis),
      num_elements_(num_elements),
      spacing_(spacing),
      carrier_hz_(carrier_hz),
      lambda_(wavelength(carrier_hz)) {
  if (num_elements_ < 2) {
    throw std::invalid_argument("UniformLinearArray: need >= 2 elements");
  }
  if (spacing_ <= 0.0) {
    throw std::invalid_argument("UniformLinearArray: spacing must be > 0");
  }
  if (carrier_hz_ <= 0.0) {
    throw std::invalid_argument("UniformLinearArray: carrier must be > 0");
  }
  const double n = axis_.norm();
  if (n == 0.0) {
    throw std::invalid_argument("UniformLinearArray: zero axis");
  }
  axis_ = axis_ / n;
}

Vec3 UniformLinearArray::element_position(std::size_t m_one_based) const {
  if (m_one_based == 0 || m_one_based > num_elements_) {
    throw std::out_of_range("UniformLinearArray: element index out of range");
  }
  const double offset =
      (static_cast<double>(m_one_based - 1) -
       static_cast<double>(num_elements_ - 1) / 2.0) *
      spacing_;
  return {center_.x + axis_.x * offset, center_.y + axis_.y * offset,
          center_.z};
}

double UniformLinearArray::arrival_angle(const Vec3& source) const {
  const Vec3 k = (source - center_).normalized();
  // Reference direction is -axis so that increasing element index moves
  // AWAY from a theta=0 source, matching x_m = s e^{-j omega(m,theta)}.
  const double c = std::clamp(-(axis_.x * k.x + axis_.y * k.y), -1.0, 1.0);
  return std::acos(c);
}

double UniformLinearArray::arrival_angle_planar(Vec2 source_xy) const {
  return arrival_angle(lift(source_xy, center_.z));
}

linalg::CVector UniformLinearArray::steering(double theta) const {
  return steering_vector(num_elements_, theta, spacing_, lambda_);
}

}  // namespace dwatch::rf
