// Propagation path representation.
//
// In D-Watch each tag's backscatter reaches an array over a set of paths:
// the direct (LoS) path plus reflections off walls and objects. A path is
// a polyline of legs: tag -> [reflector...] -> array centre. Its arrival
// angle at the array is determined by the LAST leg only — which is why a
// target blocking a pre-reflection leg produces the paper's "wrong angle"
// (Fig. 1(b), path 3) while blocking the final leg or the direct path
// drops a peak at the target's true bearing.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "linalg/complex_matrix.hpp"
#include "rf/geometry.hpp"

namespace dwatch::rf {

/// How the path reached the array.
enum class PathKind {
  kDirect,     ///< tag -> array LoS
  kWall,       ///< specular bounce off a vertical wall segment
  kScatterer,  ///< re-radiation from a point scatterer (shelf, laptop...)
};

[[nodiscard]] const char* to_string(PathKind kind) noexcept;

/// One propagation path from a tag to an array.
struct PropagationPath {
  PathKind kind = PathKind::kDirect;

  /// Polyline vertices: first = tag position, last = array centre,
  /// any middle vertices are reflection points. Size >= 2.
  std::vector<Vec3> vertices;

  /// Total geometric length [m] (sum of leg lengths).
  double length = 0.0;

  /// Arrival angle theta at the array [rad, 0..pi], from the last leg.
  double aoa = 0.0;

  /// Complex gain of the UNBLOCKED path: |gain| is the link-budget
  /// amplitude, arg(gain) = -2*pi*length/lambda (plus reflection phase).
  linalg::Complex gain{1.0, 0.0};

  /// Number of legs (vertices.size() - 1).
  [[nodiscard]] std::size_t num_legs() const noexcept {
    return vertices.empty() ? 0 : vertices.size() - 1;
  }

  /// Leg i as a pair of endpoints (0-based, i < num_legs()).
  [[nodiscard]] std::pair<Vec3, Vec3> leg(std::size_t i) const;

  /// True if this path's dropped peak points at the target when leg
  /// `blocked_leg` is occluded: only the final leg (and the direct path)
  /// give the correct angle.
  [[nodiscard]] bool blocking_gives_true_angle(std::size_t blocked_leg) const
      noexcept {
    return blocked_leg + 1 == num_legs();
  }
};

std::ostream& operator<<(std::ostream& os, const PropagationPath& p);

}  // namespace dwatch::rf
