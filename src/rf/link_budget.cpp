#include "rf/link_budget.hpp"

#include <cmath>
#include <stdexcept>

namespace dwatch::rf {

double LinkBudget::free_space_amplitude(double d) const {
  if (d <= 0.0) {
    throw std::invalid_argument("free_space_amplitude: distance must be > 0");
  }
  return lambda / (4.0 * kPi * d);
}

linalg::Complex LinkBudget::direct_gain(double d) const {
  return std::polar(free_space_amplitude(d), -kTwoPi * d / lambda);
}

linalg::Complex LinkBudget::wall_gain(double d, double reflection) const {
  if (reflection < 0.0 || reflection > 1.0) {
    throw std::invalid_argument("wall_gain: reflection outside [0,1]");
  }
  return std::polar(reflection * free_space_amplitude(d),
                    -kTwoPi * d / lambda + reflection_phase);
}

linalg::Complex LinkBudget::scatter_gain(double d1, double d2,
                                         double aperture) const {
  if (d1 <= 0.0 || d2 <= 0.0) {
    throw std::invalid_argument("scatter_gain: distances must be > 0");
  }
  if (aperture <= 0.0) {
    throw std::invalid_argument("scatter_gain: aperture must be > 0");
  }
  const double amplitude =
      aperture * lambda / ((4.0 * kPi) * (4.0 * kPi) * d1 * d2);
  return std::polar(amplitude,
                    -kTwoPi * (d1 + d2) / lambda + reflection_phase);
}

linalg::Complex LinkBudget::path_gain(const PropagationPath& path) const {
  if (path.num_legs() == 0) {
    throw std::invalid_argument("path_gain: path has no legs");
  }
  switch (path.kind) {
    case PathKind::kDirect:
      return direct_gain(path.length);
    case PathKind::kWall:
      return wall_gain(path.length, wall_reflection);
    case PathKind::kScatterer: {
      if (path.num_legs() != 2) {
        throw std::invalid_argument(
            "path_gain: scatterer path must have exactly 2 legs");
      }
      const auto [a0, a1] = path.leg(0);
      const auto [b0, b1] = path.leg(1);
      return scatter_gain(distance(a0, a1), distance(b0, b1),
                          scatter_aperture);
    }
  }
  throw std::logic_error("path_gain: unknown path kind");
}

}  // namespace dwatch::rf
