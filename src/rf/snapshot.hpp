// Array snapshot synthesis: turns a set of propagation paths into the
// M x N complex snapshot matrix X that MUSIC/P-MUSIC consume.
//
// This is the simulator's contract with the algorithms: X = Gamma A S + n
// (paper Eq. 9), where
//  - every path carries the SAME tag symbol per snapshot (backscatter is a
//    single source => coherent multipath => rank-1 source covariance,
//    which is exactly why the paper needs spatial smoothing),
//  - Gamma injects the per-RF-port random phase offsets (paper Fig. 3),
//  - n is circularly-symmetric AWGN.
//
// Two wavefront models are provided: kPlanar reproduces the plane-wave
// textbook model of paper Eq. (2); kSpherical uses exact per-element path
// lengths, introducing the realistic near-field model mismatch a 1.14 m
// aperture sees at room distances.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/complex_matrix.hpp"
#include "rf/array.hpp"
#include "rf/noise.hpp"
#include "rf/path.hpp"

namespace dwatch::rf {

enum class WavefrontModel {
  kPlanar,     ///< plane wave at the nominal AoA (textbook model)
  kSpherical,  ///< exact per-element distances (near-field realism)
};

/// Options controlling snapshot synthesis.
struct SnapshotOptions {
  /// Number of temporal snapshots N (columns of X). The paper collects
  /// ~10 backscatter packets per tag per fix.
  std::size_t num_snapshots = 16;
  /// Per-antenna complex-noise amplitude sigma (E[|n|^2] = sigma^2).
  double noise_sigma = 1e-8;
  /// Tag backscatter source amplitude before path gain.
  double source_amplitude = 1.0;
  WavefrontModel wavefront = WavefrontModel::kPlanar;
  /// Per-port phase offsets beta_m [rad]; empty means all-zero (ideal
  /// front end). Index 0 is the reference port (paper fixes beta_1 = 0).
  std::vector<double> port_phase_offsets;
};

/// Noise sigma that achieves `snr_db` relative to the strongest single
/// path's per-antenna amplitude. Throws std::invalid_argument on an empty
/// path set.
[[nodiscard]] double noise_sigma_for_snr(
    std::span<const PropagationPath> paths, double source_amplitude,
    double snr_db);

/// Synthesize X (M x N).
///
/// `path_scale[i]` multiplies path i's amplitude (1.0 = unblocked; the
/// simulator passes the blockage residual when a target occludes the
/// path). Pass an empty span for all-ones. Throws std::invalid_argument
/// on size mismatches.
[[nodiscard]] linalg::CMatrix synthesize_snapshots(
    const UniformLinearArray& array, std::span<const PropagationPath> paths,
    std::span<const double> path_scale, const SnapshotOptions& opts,
    Rng& rng);

}  // namespace dwatch::rf
