// Deterministic random-number utilities for simulation and algorithms.
//
// Every stochastic component in the repository draws from an explicitly
// seeded Rng so experiments and tests are bit-reproducible. Never use
// std::rand or unseeded engines.
#pragma once

#include <cstdint>
#include <random>

#include "linalg/complex_matrix.hpp"
#include "rf/constants.hpp"

namespace dwatch::rf {

/// Seeded random-number generator wrapper.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform phase in [0, 2*pi).
  [[nodiscard]] double phase() { return uniform(0.0, kTwoPi); }

  /// Circularly-symmetric complex Gaussian with E[|n|^2] = sigma^2.
  [[nodiscard]] linalg::Complex complex_gaussian(double sigma) {
    const double s = sigma / std::sqrt(2.0);
    return {normal(0.0, s), normal(0.0, s)};
  }

  /// Unit-magnitude complex number with uniform random phase.
  [[nodiscard]] linalg::Complex random_phasor() {
    return std::polar(1.0, phase());
  }

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derive an independent child generator (for splitting streams across
  /// tags/readers without correlation).
  [[nodiscard]] Rng fork() {
    return Rng(engine_() ^ 0x9E3779B97F4A7C15ULL);
  }

  /// Access the raw engine, e.g. for std::shuffle.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dwatch::rf
