#include "rf/snapshot.hpp"

#include <cmath>
#include <stdexcept>

namespace dwatch::rf {

double noise_sigma_for_snr(std::span<const PropagationPath> paths,
                           double source_amplitude, double snr_db) {
  if (paths.empty()) {
    throw std::invalid_argument("noise_sigma_for_snr: no paths");
  }
  double strongest = 0.0;
  for (const auto& p : paths) {
    strongest = std::max(strongest, std::abs(p.gain));
  }
  return strongest * source_amplitude / std::pow(10.0, snr_db / 20.0);
}

linalg::CMatrix synthesize_snapshots(const UniformLinearArray& array,
                                     std::span<const PropagationPath> paths,
                                     std::span<const double> path_scale,
                                     const SnapshotOptions& opts, Rng& rng) {
  const std::size_t m_elems = array.num_elements();
  if (!path_scale.empty() && path_scale.size() != paths.size()) {
    throw std::invalid_argument(
        "synthesize_snapshots: path_scale size mismatch");
  }
  if (!opts.port_phase_offsets.empty() &&
      opts.port_phase_offsets.size() != m_elems) {
    throw std::invalid_argument(
        "synthesize_snapshots: port_phase_offsets size mismatch");
  }
  if (opts.num_snapshots == 0) {
    throw std::invalid_argument("synthesize_snapshots: num_snapshots == 0");
  }

  // Per-path, per-element complex response h[p][m] (excluding the tag
  // symbol and the port offsets).
  std::vector<std::vector<linalg::Complex>> response(paths.size());
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const auto& path = paths[p];
    const double scale = path_scale.empty() ? 1.0 : path_scale[p];
    response[p].resize(m_elems);
    if (opts.wavefront == WavefrontModel::kPlanar) {
      for (std::size_t m = 1; m <= m_elems; ++m) {
        const double w =
            steering_phase(m, path.aoa, array.spacing(), array.lambda());
        response[p][m - 1] = scale * path.gain * std::polar(1.0, -w);
      }
    } else {
      // Spherical: re-trace the LAST leg to each physical element.
      if (path.vertices.size() < 2) {
        throw std::invalid_argument("synthesize_snapshots: degenerate path");
      }
      const Vec3 last_reflector = path.vertices[path.vertices.size() - 2];
      const double nominal_last_leg =
          distance(last_reflector, path.vertices.back());
      for (std::size_t m = 1; m <= m_elems; ++m) {
        const double leg_m =
            distance(last_reflector, array.element_position(m));
        const double delta = leg_m - nominal_last_leg;
        response[p][m - 1] =
            scale * path.gain * std::polar(1.0, -kTwoPi * delta / array.lambda());
      }
    }
  }

  linalg::CMatrix x(m_elems, opts.num_snapshots);
  for (std::size_t n = 0; n < opts.num_snapshots; ++n) {
    // One backscatter symbol per snapshot, common to all paths.
    const linalg::Complex s = opts.source_amplitude * rng.random_phasor();
    for (std::size_t m = 0; m < m_elems; ++m) {
      linalg::Complex sum{};
      for (std::size_t p = 0; p < paths.size(); ++p) {
        sum += response[p][m] * s;
      }
      if (!opts.port_phase_offsets.empty()) {
        sum *= std::polar(1.0, opts.port_phase_offsets[m]);
      }
      sum += rng.complex_gaussian(opts.noise_sigma);
      x(m, n) = sum;
    }
  }
  return x;
}

}  // namespace dwatch::rf
