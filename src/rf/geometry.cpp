#include "rf/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "rf/constants.hpp"

namespace dwatch::rf {

double Vec2::norm() const { return std::sqrt(norm_sq()); }

Vec2 Vec2::normalized() const {
  const double n = norm();
  if (n == 0.0) throw std::domain_error("Vec2::normalized: zero vector");
  return {x / n, y / n};
}

double Vec3::norm() const { return std::sqrt(norm_sq()); }

Vec3 Vec3::normalized() const {
  const double n = norm();
  if (n == 0.0) throw std::domain_error("Vec3::normalized: zero vector");
  return {x / n, y / n, z / n};
}

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

std::ostream& operator<<(std::ostream& os, Vec3 v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
double distance(Vec3 a, Vec3 b) { return (a - b).norm(); }

double closest_point_parameter(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len_sq = ab.norm_sq();
  if (len_sq == 0.0) return 0.0;
  return std::clamp((p - a).dot(ab) / len_sq, 0.0, 1.0);
}

double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  const double t = closest_point_parameter(p, a, b);
  return distance(p, a + (b - a) * t);
}

Vec2 mirror_across(Vec2 p, const Segment2& seg) {
  const Vec2 d = seg.b - seg.a;
  const double len_sq = d.norm_sq();
  if (len_sq == 0.0) {
    throw std::domain_error("mirror_across: degenerate segment");
  }
  const double t = (p - seg.a).dot(d) / len_sq;
  const Vec2 foot = seg.a + d * t;
  return foot * 2.0 - p;
}

std::optional<Vec2> segment_intersection(Vec2 p1, Vec2 p2, Vec2 q1, Vec2 q2) {
  const Vec2 r = p2 - p1;
  const Vec2 s = q2 - q1;
  const double denom = r.cross(s);
  if (std::abs(denom) < 1e-15) return std::nullopt;  // parallel
  const Vec2 qp = q1 - p1;
  const double t = qp.cross(s) / denom;
  const double u = qp.cross(r) / denom;
  if (t < 0.0 || t > 1.0 || u < 0.0 || u > 1.0) return std::nullopt;
  return p1 + r * t;
}

bool segment_hits_vertical_cylinder(Vec3 a, Vec3 b, Vec2 c, double radius,
                                    double z_lo, double z_hi) {
  if (radius < 0.0) {
    throw std::invalid_argument("segment_hits_vertical_cylinder: radius < 0");
  }
  // Work with the horizontal projection; the cylinder is the disc of
  // radius `radius` around c, valid for z in [z_lo, z_hi].
  const Vec2 pa = a.xy();
  const Vec2 pb = b.xy();
  const Vec2 d = pb - pa;
  const double len_sq = d.norm_sq();

  // Vertical (or near-vertical) segment: distance is fixed in plan view.
  if (len_sq < 1e-18) {
    if (distance(pa, c) > radius) return false;
    const double seg_lo = std::min(a.z, b.z);
    const double seg_hi = std::max(a.z, b.z);
    return seg_hi >= z_lo && seg_lo <= z_hi;
  }

  // Find the sub-interval of t in [0,1] where the horizontal distance to c
  // is <= radius, i.e. |pa + t d - c|^2 <= radius^2 (a quadratic in t).
  const Vec2 f = pa - c;
  const double qa = len_sq;
  const double qb = 2.0 * f.dot(d);
  const double qc = f.norm_sq() - radius * radius;
  const double disc = qb * qb - 4.0 * qa * qc;
  if (disc < 0.0) return false;
  const double sqrt_disc = std::sqrt(disc);
  double t0 = (-qb - sqrt_disc) / (2.0 * qa);
  double t1 = (-qb + sqrt_disc) / (2.0 * qa);
  t0 = std::max(t0, 0.0);
  t1 = std::min(t1, 1.0);
  if (t0 > t1) return false;

  // Within [t0, t1] the segment is horizontally inside the cylinder;
  // require some z within [z_lo, z_hi] too. z(t) is linear.
  const double z0 = a.z + (b.z - a.z) * t0;
  const double z1 = a.z + (b.z - a.z) * t1;
  const double seg_lo = std::min(z0, z1);
  const double seg_hi = std::max(z0, z1);
  return seg_hi >= z_lo && seg_lo <= z_hi;
}

double bearing(Vec2 a, Vec2 b) { return wrap_two_pi(std::atan2(b.y - a.y, b.x - a.x)); }

double wrap_pi(double angle) {
  double a = std::fmod(angle + kPi, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a - kPi;
}

double wrap_two_pi(double angle) {
  double a = std::fmod(angle, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a;
}

}  // namespace dwatch::rf
