#include "core/localizer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"

namespace dwatch::core {

bool Localizer::candidate_order(const LocationEstimate& a,
                                const LocationEstimate& b) noexcept {
  if (a.likelihood != b.likelihood) return a.likelihood > b.likelihood;
  if (a.position.y != b.position.y) return a.position.y < b.position.y;
  return a.position.x < b.position.x;
}

LocationEstimate Localizer::select_max_likelihood(
    std::span<const LocationEstimate> candidates) noexcept {
  LocationEstimate best{};
  bool have = false;
  for (const LocationEstimate& c : candidates) {
    if (!have || candidate_order(c, best)) {
      best = c;
      have = true;
    }
  }
  return best;
}

Localizer::Localizer(std::vector<rf::UniformLinearArray> arrays,
                     SearchBounds bounds, LocalizerOptions options)
    : arrays_(std::move(arrays)), bounds_(bounds), options_(options) {
  if (arrays_.empty()) {
    throw std::invalid_argument("Localizer: no arrays");
  }
  if (!(bounds_.min.x < bounds_.max.x && bounds_.min.y < bounds_.max.y)) {
    throw std::invalid_argument("Localizer: degenerate bounds");
  }
  if (options_.grid_step <= 0.0 || options_.kernel_sigma <= 0.0) {
    throw std::invalid_argument("Localizer: bad step/sigma");
  }
  inv_2s2_ = 1.0 / (2.0 * options_.kernel_sigma * options_.kernel_sigma);
}

double Localizer::effective_grid_step() const noexcept {
  // Stride 1 returns the configured step VERBATIM (no arithmetic) so
  // the un-browned path is bit-identical by construction.
  if (grid_stride_ == 1) return options_.grid_step;
  return options_.grid_step * static_cast<double>(grid_stride_);
}

double Localizer::global_drop_norm(
    std::span<const AngularEvidence> evidence) {
  double norm = 0.0;
  for (const auto& e : evidence) {
    // An excluded array contributes nothing anywhere — including to the
    // normalizer. A poisoned-but-excluded drop must not rescale the
    // healthy arrays' weights.
    if (e.excluded) continue;
    for (const PathDrop& d : e.drops) {
      norm = std::max(norm, d.baseline_power - d.online_power);
    }
  }
  return norm;
}

double Localizer::evidence_at(const AngularEvidence& evidence, double theta,
                              double norm) const {
  if (norm <= 0.0) return 0.0;
  const double inv_2s2 = inv_2s2_;
  // MAX-combine across drops: several drops at one bearing are usually
  // one physical blockage seen through several tags' spectra (or one
  // reflector's ghost), so they must not pile up additively — otherwise
  // a cluster of weak reflection-path ghosts outvotes one honest
  // direct-path drop.
  double best = 0.0;
  for (const PathDrop& d : evidence.drops) {
    const double delta = theta - d.theta;
    const double power_drop =
        std::max(d.baseline_power - d.online_power, 0.0);
    const double weight =
        std::pow(power_drop / norm, options_.power_exponent);
    // sigma_scale > 1 widens the kernel of a low-confidence drop
    // (degraded snapshot count); the division by 1.0 on the clean path
    // is exact, so healthy runs are bit-identical.
    const double inv = inv_2s2 / (d.sigma_scale * d.sigma_scale);
    best = std::max(best, weight * std::exp(-delta * delta * inv));
  }
  return best;
}

std::size_t Localizer::arrays_with_evidence(
    std::span<const AngularEvidence> evidence) const {
  std::size_t n = 0;
  for (const auto& e : evidence) {
    if (e.usable()) ++n;
  }
  return n;
}

std::size_t Localizer::effective_min_arrays(
    std::span<const AngularEvidence> evidence) const {
  // K-of-N degraded mode: excluded arrays shrink the consensus
  // requirement down to the surviving array count (never below 1), so a
  // deployment that loses a reader keeps producing fixes. With no
  // exclusions this is exactly options_.min_arrays — the clean path is
  // untouched.
  std::size_t excluded = 0;
  for (const auto& e : evidence) {
    if (e.excluded) ++excluded;
  }
  if (excluded == 0) return options_.min_arrays;
  const std::size_t active = evidence.size() - excluded;
  return std::min(options_.min_arrays, std::max<std::size_t>(1, active));
}

bool Localizer::too_close_to_array(rf::Vec2 point) const {
  // A candidate sitting (nearly) on an array is geometrically degenerate
  // (its bearing is undefined, every evidence kernel matches something)
  // and physically impossible for a target.
  for (const auto& a : arrays_) {
    if (rf::distance(point, a.center().xy()) < 0.25) return true;
  }
  return false;
}

double Localizer::likelihood_at(
    rf::Vec2 point, std::span<const AngularEvidence> evidence) const {
  return likelihood_at(point, evidence, global_drop_norm(evidence));
}

double Localizer::likelihood_at(rf::Vec2 point,
                                std::span<const AngularEvidence> evidence,
                                double norm) const {
  if (evidence.size() != arrays_.size()) {
    throw std::invalid_argument("likelihood_at: evidence count mismatch");
  }
  if (too_close_to_array(point)) return 0.0;
  double l = 1.0;
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    // Silent reader: no information. Excluded reader: flagged unusable
    // (degraded mode) — also contributes nothing.
    if (!evidence[i].usable()) continue;
    const double theta = arrays_[i].arrival_angle_planar(point);
    l *= options_.epsilon + evidence_at(evidence[i], theta, norm);
  }
  return l;
}

std::size_t Localizer::consensus_at(rf::Vec2 point,
                                    std::span<const AngularEvidence> evidence,
                                    double norm) const {
  (void)norm;
  // Consensus is about ANGULAR agreement, not power: an array supports a
  // candidate iff one of its drops points at it (kernel proximity),
  // whatever that drop's strength. Power weighting then ranks candidates
  // WITHIN a consensus level via the likelihood.
  const double inv_2s2 = inv_2s2_;
  if (too_close_to_array(point)) return 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    if (!evidence[i].usable()) continue;
    const double theta = arrays_[i].arrival_angle_planar(point);
    double best = 0.0;
    for (const PathDrop& d : evidence[i].drops) {
      const double delta = theta - d.theta;
      const double inv = inv_2s2 / (d.sigma_scale * d.sigma_scale);
      best = std::max(best, std::exp(-delta * delta * inv));
    }
    if (best >= options_.consensus_floor) ++n;
  }
  return n;
}

std::vector<LocationEstimate> Localizer::grid_candidates(
    std::span<const AngularEvidence> evidence) const {
  const LikelihoodGrid grid = likelihood_grid(evidence);
  std::vector<LocationEstimate> candidates;
  for (std::size_t iy = 0; iy < grid.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid.nx; ++ix) {
      const double v = grid.at(ix, iy);
      bool is_max = true;
      for (int dy = -1; dy <= 1 && is_max; ++dy) {
        for (int dx = -1; dx <= 1 && is_max; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const auto jx = static_cast<std::ptrdiff_t>(ix) + dx;
          const auto jy = static_cast<std::ptrdiff_t>(iy) + dy;
          if (jx < 0 || jy < 0 ||
              jx >= static_cast<std::ptrdiff_t>(grid.nx) ||
              jy >= static_cast<std::ptrdiff_t>(grid.ny)) {
            continue;
          }
          if (grid.at(static_cast<std::size_t>(jx),
                      static_cast<std::size_t>(jy)) > v) {
            is_max = false;
          }
        }
      }
      if (is_max) {
        candidates.push_back(
            LocationEstimate{grid.point(ix, iy), v, 0, false});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(), candidate_order);
  return candidates;
}

std::vector<LocationEstimate> Localizer::hill_climb_candidates(
    std::span<const AngularEvidence> evidence, double norm) const {
  DWATCH_SPAN("localize.hill_climb");
  // Multi-start: coarse seed lattice, then 8-neighbour ascent on the
  // fine grid (the paper's hill climbing). Produces one candidate per
  // distinct basin reached.
  const double step = effective_grid_step();
  const std::size_t starts =
      std::max<std::size_t>(options_.hill_climb_starts, 4);
  const auto per_side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(starts))));

  std::vector<LocationEstimate> candidates;
  for (std::size_t sy = 0; sy < per_side; ++sy) {
    for (std::size_t sx = 0; sx < per_side; ++sx) {
      rf::Vec2 p{
          bounds_.min.x + (bounds_.max.x - bounds_.min.x) *
                              (static_cast<double>(sx) + 0.5) /
                              static_cast<double>(per_side),
          bounds_.min.y + (bounds_.max.y - bounds_.min.y) *
                              (static_cast<double>(sy) + 0.5) /
                              static_cast<double>(per_side)};
      double l = likelihood_at(p, evidence, norm);
      bool moved = true;
      while (moved) {
        moved = false;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            const rf::Vec2 q{p.x + dx * step, p.y + dy * step};
            if (!bounds_.contains(q)) continue;
            const double lq = likelihood_at(q, evidence, norm);
            if (lq > l) {
              l = lq;
              p = q;
              moved = true;
            }
          }
        }
      }
      const bool dup = std::any_of(
          candidates.begin(), candidates.end(),
          [&](const LocationEstimate& c) {
            return rf::distance(c.position, p) < step * 1.5;
          });
      if (!dup) candidates.push_back(LocationEstimate{p, l, 0, false});
    }
  }
  std::sort(candidates.begin(), candidates.end(), candidate_order);
  return candidates;
}

LocationEstimate Localizer::consensus_select(
    std::vector<LocationEstimate> candidates,
    std::span<const AngularEvidence> evidence, double norm,
    std::size_t min_arrays) const {
  // Rank by the total order BEFORE the cap: which 24 get scored must
  // not depend on the order restarts (or a caller) produced them in.
  std::sort(candidates.begin(), candidates.end(), candidate_order);
  LocationEstimate best{};
  const std::size_t limit = std::min(candidates.size(), kMaxCandidates);
  for (std::size_t i = 0; i < limit; ++i) {
    LocationEstimate c = candidates[i];
    c.consensus = consensus_at(c.position, evidence, norm);
    // Scanning in candidate_order means the first candidate at any
    // consensus level is already the best-ranked one — a strict
    // consensus improvement is the only reason to switch.
    if (c.consensus > best.consensus ||
        (c.consensus == best.consensus && c.likelihood > best.likelihood)) {
      best = c;
    }
  }
  best.valid = best.consensus >= min_arrays;
  return best;
}

LocationEstimate Localizer::localize(
    std::span<const AngularEvidence> evidence) const {
  DWATCH_SPAN("localize.fix");
  if (evidence.size() != arrays_.size()) {
    throw std::invalid_argument("localize: evidence count mismatch");
  }
  const std::size_t min_arrays = effective_min_arrays(evidence);
  if (arrays_with_evidence(evidence) < min_arrays) {
    return LocationEstimate{};  // not covered
  }
  const double norm = global_drop_norm(evidence);
  std::vector<LocationEstimate> candidates =
      options_.hill_climbing ? hill_climb_candidates(evidence, norm)
                             : grid_candidates(evidence);
  // Both producers promise candidate_order() — consensus_select would
  // mask a violation by re-sorting, so check the contract here.
  assert(std::is_sorted(candidates.begin(), candidates.end(),
                        candidate_order));

  // Consensus selection (outlier rejection): among the likelihood peaks,
  // prefer the one the most arrays genuinely point at; candidates backed
  // by fewer than min_arrays arrays are not a valid fix at all.
  return consensus_select(std::move(candidates), evidence, norm, min_arrays);
}

LocationEstimate Localizer::localize_best_effort(
    std::span<const AngularEvidence> evidence) const {
  LocationEstimate est = localize(evidence);
  if (est.valid || est.likelihood > 0.0) return est;
  if (arrays_with_evidence(evidence) == 0) return est;  // nothing to go on
  // No consensus candidate: fall back to the raw likelihood maximum,
  // searched with the SAME mode the localizer is configured for (a
  // hill-climbing deployment must not silently pay for — and answer
  // from — an exhaustive grid), and selected by an explicit max scan
  // rather than trusting the list head.
  const double norm = global_drop_norm(evidence);
  const std::vector<LocationEstimate> candidates =
      options_.hill_climbing ? hill_climb_candidates(evidence, norm)
                             : grid_candidates(evidence);
  const LocationEstimate top = select_max_likelihood(candidates);
  if (top.likelihood > 0.0) {
    LocationEstimate best = top;
    best.consensus = consensus_at(best.position, evidence, norm);
    best.valid = false;
    return best;
  }
  return est;
}

std::vector<LocationEstimate> Localizer::localize_multi(
    std::span<const AngularEvidence> evidence, std::size_t max_targets,
    double min_separation, double relative_floor) const {
  std::vector<LocationEstimate> out;
  const std::size_t min_arrays = effective_min_arrays(evidence);
  if (max_targets == 0 || arrays_with_evidence(evidence) < min_arrays) {
    return out;
  }
  const double norm = global_drop_norm(evidence);
  std::vector<LocationEstimate> candidates = grid_candidates(evidence);
  if (candidates.empty()) return out;

  const double floor = candidates.front().likelihood * relative_floor;
  for (LocationEstimate& c : candidates) {
    if (c.likelihood < floor) break;
    const bool clash =
        std::any_of(out.begin(), out.end(), [&](const LocationEstimate& e) {
          return rf::distance(e.position, c.position) < min_separation;
        });
    if (clash) continue;
    c.consensus = consensus_at(c.position, evidence, norm);
    if (c.consensus < min_arrays) continue;
    c.valid = true;
    out.push_back(c);
    if (out.size() >= max_targets) break;
  }
  return out;
}

LikelihoodGrid Localizer::likelihood_grid(
    std::span<const AngularEvidence> evidence) const {
  DWATCH_SPAN("localize.grid");
  LikelihoodGrid grid;
  grid.origin = bounds_.min;
  grid.step = effective_grid_step();
  grid.nx = static_cast<std::size_t>(
                std::floor((bounds_.max.x - bounds_.min.x) / grid.step)) +
            1;
  grid.ny = static_cast<std::size_t>(
                std::floor((bounds_.max.y - bounds_.min.y) / grid.step)) +
            1;
  grid.values.resize(grid.nx * grid.ny);
  const double norm = global_drop_norm(evidence);
  // Each row writes only its own disjoint slice of grid.values and reads
  // shared state read-only, so the parallel and serial paths produce
  // bit-identical grids.
  const auto fill_row = [&](std::size_t iy) {
    for (std::size_t ix = 0; ix < grid.nx; ++ix) {
      const rf::Vec2 p = grid.point(ix, iy);
      if (too_close_to_array(p)) {
        grid.values[iy * grid.nx + ix] = 0.0;
        continue;
      }
      double l = 1.0;
      for (std::size_t i = 0; i < arrays_.size(); ++i) {
        if (!evidence[i].usable()) continue;
        const double theta = arrays_[i].arrival_angle_planar(p);
        l *= options_.epsilon + evidence_at(evidence[i], theta, norm);
      }
      grid.values[iy * grid.nx + ix] = l;
    }
  };
  if (pool_ && pool_->num_workers() > 1) {
    pool_->parallel_for(grid.ny, fill_row);
  } else {
    for (std::size_t iy = 0; iy < grid.ny; ++iy) fill_row(iy);
  }
  return grid;
}

}  // namespace dwatch::core
