#include "core/source_count.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dwatch::core {

namespace {

/// Negative log of the sphericity statistic for splitting at k sources:
/// ratio of geometric to arithmetic mean of the noise eigenvalues.
double log_likelihood_term(std::span<const double> ev, std::size_t k,
                           std::size_t n_snapshots) {
  const std::size_t m = ev.size();
  const std::size_t q = m - k;
  double log_geo = 0.0;
  double arith = 0.0;
  for (std::size_t i = k; i < m; ++i) {
    const double v = std::max(ev[i], 1e-300);
    log_geo += std::log(v);
    arith += v;
  }
  log_geo /= static_cast<double>(q);
  arith /= static_cast<double>(q);
  const double log_ratio = log_geo - std::log(std::max(arith, 1e-300));
  return -static_cast<double>(n_snapshots) * static_cast<double>(q) *
         log_ratio;
}

}  // namespace

std::size_t estimate_source_count(std::span<const double> eigenvalues,
                                  const SourceCountOptions& options) {
  const std::size_t m = eigenvalues.size();
  if (m < 2) {
    throw std::invalid_argument("estimate_source_count: need >= 2 values");
  }
  for (std::size_t i = 0; i + 1 < m; ++i) {
    if (eigenvalues[i] < eigenvalues[i + 1] - 1e-9 * std::abs(eigenvalues[i])) {
      throw std::invalid_argument(
          "estimate_source_count: eigenvalues not sorted descending");
    }
  }
  const std::size_t cap =
      options.max_sources > 0 ? std::min(options.max_sources, m - 1) : m - 1;

  switch (options.method) {
    case SourceCountMethod::kThreshold: {
      const std::size_t tail = std::clamp<std::size_t>(
          options.noise_tail, 1, m - 1);
      double noise_floor = 0.0;
      for (std::size_t i = m - tail; i < m; ++i) {
        noise_floor += std::max(eigenvalues[i], 0.0);
      }
      noise_floor /= static_cast<double>(tail);
      noise_floor = std::max(noise_floor, 1e-300);
      std::size_t p = 0;
      while (p < cap &&
             eigenvalues[p] > options.threshold_factor * noise_floor) {
        ++p;
      }
      return std::max<std::size_t>(p, 1);  // at least the dominant source
    }
    case SourceCountMethod::kMdl:
    case SourceCountMethod::kAic: {
      double best_score = 0.0;
      std::size_t best_k = 1;
      for (std::size_t k = 0; k <= cap; ++k) {
        const double ll =
            log_likelihood_term(eigenvalues, k, options.num_snapshots);
        const double free_params =
            static_cast<double>(k) * static_cast<double>(2 * m - k);
        const double penalty =
            options.method == SourceCountMethod::kMdl
                ? 0.5 * free_params *
                      std::log(static_cast<double>(options.num_snapshots))
                : free_params;
        const double score = ll + penalty;
        if (k == 0 || score < best_score) {
          best_score = score;
          best_k = std::max<std::size_t>(k, 1);
        }
      }
      return best_k;
    }
  }
  throw std::logic_error("estimate_source_count: unknown method");
}

}  // namespace dwatch::core
