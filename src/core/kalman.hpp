// Constant-velocity Kalman tracker — the adaptive-gain upgrade of the
// alpha-beta filter in tracker.hpp.
//
// The alpha-beta tracker uses fixed gains; a Kalman filter adapts its
// gain to the miss pattern, which matters for D-Watch because fixes
// arrive irregularly (deadzones, consensus failures). State is
// [x, y, vx, vy] with white-acceleration process noise; measurements are
// 2-D positions with isotropic noise. All matrices are tiny and handled
// with closed-form 2x2 blocks (position and velocity decouple per axis).
#pragma once

#include <optional>

#include "rf/geometry.hpp"

namespace dwatch::core {

struct KalmanOptions {
  double dt = 0.1;                 ///< fix interval [s]
  double process_accel = 1.5;      ///< accel noise sigma [m/s^2]
  double measurement_sigma = 0.15; ///< position noise sigma [m]
  /// Reject measurements with a normalized innovation beyond this many
  /// sigmas (<= 0 disables gating).
  double gate_sigmas = 4.0;
  /// Coast at most this many consecutive misses before resetting.
  std::size_t max_coast = 8;
};

/// Per-axis state (position/velocity with 2x2 covariance); the two axes
/// are independent under the isotropic model.
struct KalmanAxis {
  double pos = 0.0;
  double vel = 0.0;
  // Covariance [p_pp, p_pv; p_pv, p_vv].
  double p_pp = 1.0;
  double p_pv = 0.0;
  double p_vv = 1.0;
};

/// The filter's long-lived state, exported for checkpoint/restore.
struct KalmanState {
  KalmanAxis x;
  KalmanAxis y;
  bool initialized = false;
  std::size_t misses = 0;
};

class KalmanTracker {
 public:
  explicit KalmanTracker(KalmanOptions options = {});

  /// Feed one fix; returns the filtered position. First accepted
  /// measurement initializes the track; gated-out measurements count as
  /// misses (prediction is returned when the track survives).
  rf::Vec2 update(rf::Vec2 measurement);

  /// A missed fix: predict-only. Returns nullopt when uninitialized or
  /// after too many consecutive misses (track reset).
  std::optional<rf::Vec2> coast();

  [[nodiscard]] bool initialized() const noexcept { return initialized_; }
  [[nodiscard]] rf::Vec2 position() const noexcept {
    return {x_.pos, y_.pos};
  }
  [[nodiscard]] rf::Vec2 velocity() const noexcept {
    return {x_.vel, y_.vel};
  }
  /// Position standard deviation [m] (sqrt of the larger axis variance);
  /// grows while coasting, shrinks on updates.
  [[nodiscard]] double position_sigma() const noexcept;
  [[nodiscard]] std::size_t consecutive_misses() const noexcept {
    return misses_;
  }

  void reset();

  /// Checkpoint/restore of the track (options are construction-time).
  [[nodiscard]] KalmanState state() const noexcept {
    return {x_, y_, initialized_, misses_};
  }
  void restore(const KalmanState& s) noexcept {
    x_ = s.x;
    y_ = s.y;
    initialized_ = s.initialized;
    misses_ = s.misses;
  }

 private:
  void predict_axis(KalmanAxis& a) const;
  void update_axis(KalmanAxis& a, double z) const;

  KalmanOptions options_;
  KalmanAxis x_;
  KalmanAxis y_;
  bool initialized_ = false;
  std::size_t misses_ = 0;
};

}  // namespace dwatch::core
