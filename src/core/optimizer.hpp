// Derivative-free + local optimizers used by the wireless phase
// calibration (paper Section 4.1): "a hybrid method of genetic algorithm
// and gradient descent — GA initiates all the unknowns and then refines
// the solution with GD to find the closest local minimum."
//
// Kept generic (minimize f: R^n -> R over a box) so they are reusable
// and testable on standard functions independent of calibration.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "rf/noise.hpp"

namespace dwatch::core {

/// Objective to MINIMIZE.
using Objective = std::function<double(std::span<const double>)>;

struct GaOptions {
  std::size_t population = 64;
  std::size_t generations = 60;
  std::size_t tournament = 3;
  std::size_t elites = 2;
  double crossover_rate = 0.9;
  double mutation_rate = 0.20;
  /// Gaussian mutation sigma as a fraction of the box width per gene.
  double mutation_sigma = 0.08;
  /// Treat each dimension as periodic over its box (true for phases).
  bool periodic = true;
};

struct OptResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t evaluations = 0;
  bool converged = false;  ///< GD only: gradient/step tolerance met
};

/// Real-coded genetic algorithm. `lo`/`hi` give per-dimension bounds
/// (sizes must match and lo[i] < hi[i]); throws std::invalid_argument.
[[nodiscard]] OptResult genetic_minimize(const Objective& f,
                                         std::span<const double> lo,
                                         std::span<const double> hi,
                                         const GaOptions& options,
                                         rf::Rng& rng);

struct GdOptions {
  std::size_t max_iterations = 300;
  double initial_step = 0.25;
  double gradient_epsilon = 1e-6;  ///< central-difference step
  double tolerance = 1e-12;        ///< stop when improvement below this
  double backtrack = 0.5;          ///< step shrink factor
  std::size_t max_backtracks = 30;
};

/// Gradient descent with numeric central-difference gradients and
/// backtracking line search.
[[nodiscard]] OptResult gradient_descent_minimize(const Objective& f,
                                                  std::vector<double> x0,
                                                  const GdOptions& options);

struct HybridOptions {
  GaOptions ga;
  GdOptions gd;
  /// How many of the best GA individuals get GD refinement.
  std::size_t refine_candidates = 3;
};

/// GA global search followed by GD refinement of the best candidates
/// (the paper's calibration solver).
[[nodiscard]] OptResult hybrid_minimize(const Objective& f,
                                        std::span<const double> lo,
                                        std::span<const double> hi,
                                        const HybridOptions& options,
                                        rf::Rng& rng);

}  // namespace dwatch::core
