// The end-to-end D-Watch pipeline (paper Section 4.4, workflow steps
// 1-4):
//
//  Step 1  Data collection   — baseline snapshots per (array, tag) with
//                              the scene empty; online snapshots with the
//                              target present.
//  Step 2  Pre-processing    — per-array phase calibration applied to
//                              every snapshot matrix.
//  Step 3  Angle estimation  — P-MUSIC spectra; baseline-vs-online peak
//                              drops per (array, tag) aggregate into
//                              per-array angular evidence.
//  Step 4  Localization      — likelihood grid / hill climbing, with
//                              multi-target and triangulation variants.
//
// The pipeline consumes either raw snapshot matrices or wire-decoded
// LLRP TagObservations, so integration tests can drive it end-to-end
// from encoded reader bytes.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/calibration.hpp"
#include "core/change_detector.hpp"
#include "core/localizer.hpp"
#include "core/pmusic.hpp"
#include "core/rss.hpp"
#include "core/streaming.hpp"
#include "core/thread_pool.hpp"
#include "core/triangulate.hpp"
#include "linalg/complex_matrix.hpp"
#include "rf/array.hpp"
#include "rfid/llrp.hpp"

namespace dwatch::core {

/// Graceful-degradation knobs (DESIGN.md "Failure model & degraded
/// modes"). Defaults are chosen so a clean, fully-healthy run is
/// bit-identical to a pipeline without this struct.
struct DegradedModeOptions {
  /// Online observations with fewer snapshot columns than this get
  /// their drops' angular kernel widened (the spectrum is noisier, so
  /// the peak angle deserves less localization weight). The default
  /// matches the default smoothing subarray (L = 6): below that even
  /// the smoothed correlation is rank-starved.
  std::size_t min_snapshots = 6;
  /// Kernel widening factor for low-snapshot drops (sigma_scale).
  double sigma_widen = 2.0;
  /// Reject online observations whose first_seen_us predates the epoch
  /// watermark passed to begin_epoch() — stale retransmissions of a
  /// previous epoch must not pollute the current one.
  bool reject_stale = true;
};

/// Streaming spectral mode (DESIGN.md §16). Off by default: the batch
/// path stays byte-for-byte what it was. When enabled, each observe()
/// folds its snapshots into a per-(array, tag) IncrementalCovariance,
/// the P-MUSIC signal subspace is TRACKED across epochs
/// (SubspaceTracker; dense EVD only on divergence/reset), and the
/// epoch can seal EARLY: once the likelihood argmax has been stable
/// for `convergence_window` consecutive checks the pipeline flags
/// early_fix_ready() so the serving layer can emit the fix mid-epoch.
struct StreamingOptions {
  bool enabled = false;
  /// Subspace tracker configuration (rank, refinement, divergence).
  SubspaceTrackerOptions tracker;
  /// Early sealing on likelihood-grid convergence. Disable to keep the
  /// incremental covariance/tracking path without mid-epoch fixes
  /// (e.g. multi-target zones, where late evidence can still split the
  /// likelihood mass).
  bool early_seal = true;
  /// No convergence checks until EVERY healthy array has streamed at
  /// least this many observations this epoch. Per-array (not fleet
  /// total): sealing on a backlog where one array has barely reported
  /// is how partial-evidence ghosts get promoted to early fixes.
  std::size_t min_reports = 4;
  /// Consecutive stable checks required to declare convergence.
  std::size_t convergence_window = 3;
  /// Position delta between consecutive best-effort fixes below which
  /// a check counts as stable [m].
  double position_tolerance_m = 0.05;
  /// Relative likelihood delta bound for a stable check.
  double likelihood_tolerance = 0.02;
  /// Grid stride for the convergence-check localization (the stability
  /// probe), NOT for the sealed fix — that is always computed at full
  /// resolution. A stride of s makes each mid-backlog probe ~s^2
  /// cheaper; stability on the coarse grid means the argmax keeps
  /// choosing the same cell, which is strictly harder to jitter than
  /// the full-resolution argmax. Without this, per-observation probes
  /// cost as much as the spectral work early sealing tries to beat,
  /// and TTFF stops dropping.
  std::size_t convergence_grid_stride = 4;
};

/// Lifetime counters of the streaming path (NOT part of the frozen
/// DWCP v1 PipelineState — in-memory only, like the RSS references).
struct StreamingStats {
  std::size_t rank1_updates = 0;    ///< snapshot columns accumulated
  std::size_t streamed_spectra = 0; ///< online spectra via tracked basis
  std::size_t tracker_resets = 0;   ///< dense-oracle fallbacks
  std::size_t convergence_checks = 0;
  std::size_t early_seals = 0;      ///< epochs declared converged
  /// Observations that arrived after the epoch converged (the serving
  /// layer normally stops feeding; these count the ones fed anyway).
  std::size_t post_convergence_observations = 0;

  bool operator==(const StreamingStats&) const = default;
};

struct PipelineOptions {
  PMusicOptions pmusic;
  ChangeDetectorOptions change;
  LocalizerOptions localizer;
  /// Apply the Section 4.3 tag-identity outlier rejection before
  /// localization (see filtered_evidence()).
  bool ghost_filtering = true;
  /// Worker threads for observe_batch() and the likelihood grid:
  /// 0 = one per hardware thread, 1 = fully serial (no pool), n = n
  /// workers. Results are bit-identical for every setting.
  std::size_t num_workers = 1;
  DegradedModeOptions degraded;
  /// RSS-only degraded localization (see core/rss.hpp). Inert by
  /// default; requires surveyed tag positions (set_tag_position).
  RssOnlyOptions rss_only;
  /// Incremental spectral path + early sealing (inert by default).
  StreamingOptions streaming;
};

/// Runtime coarsening profile for overload brownout (the serving
/// layer's admission tier 2). The default profile is EXACTLY the
/// configured pipeline: grid_stride 1 leaves the localizer step
/// untouched and max_signal_rank 0 keeps each estimator's configured
/// rank, so applying and later clearing a profile restores
/// bit-identical fixes.
struct BrownoutProfile {
  /// Likelihood-grid step multiplier (clamped up to 1 on apply).
  std::size_t grid_stride = 1;
  /// Forced truncated-EVD signal rank; 0 keeps the configured
  /// MusicOptions::max_signal_rank. When both the profile and the
  /// configuration specify a rank the SMALLER (coarser) one wins.
  std::size_t max_signal_rank = 0;

  bool operator==(const BrownoutProfile&) const = default;
};

/// One (array, tag) online snapshot matrix queued for a batch epoch.
struct BatchObservation {
  std::size_t array_idx = 0;
  rfid::Epc96 epc;
  linalg::CMatrix snapshots;
};

/// Counters exposed for observability (cumulative over the pipeline's
/// lifetime). Every per-epoch ConfidenceReport counter has a lifetime
/// twin here, incremented at the same sites, so the sum of per-epoch
/// reports always equals the lifetime totals (asserted by
/// tests/obs/pipeline_obs_test). When the obs runtime switch is on,
/// the same increments are mirrored into process-wide
/// `dwatch_pipeline_*_total` registry counters.
struct PipelineStats {
  std::size_t baselines = 0;          ///< (array, tag) baselines stored
  std::size_t epochs = 0;             ///< begin_epoch() calls
  std::size_t observations = 0;       ///< online spectra processed
  std::size_t observations_skipped = 0;  ///< online without a baseline
  std::size_t drops_detected = 0;
  std::size_t stale_observations = 0;  ///< rejected by the epoch watermark
  std::size_t low_snapshot_observations = 0;  ///< widened-kernel spectra
  /// Wire observations quarantined because no complete inventory round
  /// survived (dead element, heavy sample loss) — counted, not thrown.
  std::size_t malformed_observations = 0;
  std::size_t reports_dropped = 0;    ///< lost/quarantined upstream
  std::size_t transport_retries = 0;
  std::size_t transport_timeouts = 0;

  bool operator==(const PipelineStats&) const = default;
};

/// Every long-lived piece of a DWatchPipeline, exported for
/// checkpointing (src/recovery serializes it) and reinstalled by
/// restore(). Spectra are carried exactly as stored — no recomputation
/// on either side — so a restored pipeline produces fixes bit-identical
/// to one that never stopped.
struct PipelineState {
  /// Per-array phase calibration (nullopt = never calibrated).
  std::vector<std::optional<std::vector<double>>> calibration;
  /// Per-array reference spectra keyed by tag EPC.
  std::vector<std::map<rfid::Epc96, AngularSpectrum>> baselines;
  /// Per-array K-of-N health flags (1 = excluded).
  std::vector<std::uint8_t> excluded;
  /// Lifetime counters (per-epoch state is NOT long-lived: an epoch in
  /// flight when the process dies is simply lost, by design).
  PipelineStats stats;
  /// The watermark of the last begun epoch.
  std::uint64_t watermark_us = 0;
};

/// Provenance of ONE localization result: which arrays contributed,
/// what was lost on the way, how degraded the inputs were. Two runs
/// with identical inputs (same fault seed) produce bit-identical
/// reports — asserted by the stress suite.
struct ConfidenceReport {
  std::size_t arrays_total = 0;
  std::size_t arrays_with_evidence = 0;  ///< usable (not excluded) arrays
  std::size_t arrays_excluded = 0;       ///< flagged unhealthy/stale
  std::size_t observations = 0;          ///< spectra in this epoch
  std::size_t observations_skipped = 0;  ///< no baseline
  std::size_t stale_observations = 0;    ///< rejected as stale
  std::size_t low_snapshot_observations = 0;  ///< widened-kernel spectra
  std::size_t malformed_observations = 0;     ///< no complete round
  std::size_t drops_detected = 0;
  std::size_t reports_dropped = 0;   ///< lost/quarantined upstream
  std::size_t transport_retries = 0;
  std::size_t transport_timeouts = 0;
  /// This fix came from the RSS-only fallback, not the phase path.
  bool rss_mode = false;
  /// Mean inter-element phase coherence of this epoch's observations
  /// (1.0 when no observations carried phase-health information).
  double phase_health = 1.0;

  /// Anything at all went wrong on the way to this fix.
  [[nodiscard]] bool degraded() const noexcept {
    return arrays_excluded > 0 || stale_observations > 0 ||
           low_snapshot_observations > 0 || malformed_observations > 0 ||
           reports_dropped > 0 || transport_timeouts > 0 || rss_mode;
  }
  bool operator==(const ConfidenceReport&) const = default;
};

/// A localization estimate plus the provenance of the evidence that
/// produced it.
struct ConfidentEstimate {
  LocationEstimate estimate;
  ConfidenceReport confidence;
};

/// Reconstruct an M x N snapshot matrix from a wire observation. Rounds
/// with missing elements are dropped; throws std::invalid_argument if no
/// complete round exists or an element id exceeds M.
[[nodiscard]] linalg::CMatrix observation_to_snapshots(
    const rfid::TagObservation& obs, std::size_t num_elements);

class DWatchPipeline {
 public:
  /// Throws std::invalid_argument on empty arrays/degenerate bounds.
  DWatchPipeline(std::vector<rf::UniformLinearArray> arrays,
                 SearchBounds bounds, PipelineOptions options = {});

  [[nodiscard]] std::size_t num_arrays() const noexcept {
    return arrays_.size();
  }
  [[nodiscard]] const PipelineStats& stats() const noexcept { return stats_; }
  /// Streaming-path lifetime counters (all zero unless streaming mode
  /// is enabled; never checkpointed).
  [[nodiscard]] const StreamingStats& streaming_stats() const noexcept {
    return streaming_stats_;
  }
  [[nodiscard]] const Localizer& localizer() const noexcept {
    return localizer_;
  }

  /// Step 2: install per-array calibration offsets (size = M of that
  /// array). Applied to every subsequent snapshot matrix.
  void set_calibration(std::size_t array_idx, std::vector<double> offsets);

  /// The installed offsets of one array (nullopt = uncalibrated).
  [[nodiscard]] const std::optional<std::vector<double>>& calibration(
      std::size_t array_idx) const;

  /// Drop every stored reference spectrum of one array. Called after a
  /// calibration hot-swap: the old baselines were computed under the
  /// superseded Gamma and would report phantom peak drops against
  /// spectra computed under the new one. Observations of the array skip
  /// (no baseline) until re-capture.
  void clear_baselines(std::size_t array_idx);

  /// RSS-only fallback prerequisite: install the surveyed position of a
  /// tag (the phase path never needs this; the RSS path measures drop
  /// magnitude along tag-array line segments, so it does). Links of
  /// tags without a position are silently unusable for RSS.
  void set_tag_position(const rfid::Epc96& epc, rf::Vec2 position);

  /// Mean inter-element phase coherence of this epoch's observations
  /// (1.0 until an observation with phase content arrives). ~1 on
  /// healthy hardware, ~1/sqrt(num_snapshots) on scrambled phase.
  [[nodiscard]] double phase_health() const noexcept;

  /// True iff localization calls will take the RSS-only path this
  /// epoch: rss_only.force is set, or auto_health_threshold > 0 and the
  /// epoch's phase_health() has fallen below it.
  [[nodiscard]] bool rss_active() const noexcept;

  /// The RSS link evidence accumulated this epoch (inspection/tests).
  [[nodiscard]] const std::vector<RssLink>& rss_links() const noexcept {
    return epoch_.rss_links;
  }

  /// Snapshot every long-lived field for checkpointing. NOTE: the RSS
  /// fallback's reference state (tag positions, per-link baseline
  /// powers) is deliberately NOT part of PipelineState — the DWCP v1
  /// layout is frozen by the checkpoint golden. A restored pipeline's
  /// phase path is bit-identical; its RSS fallback re-arms on the next
  /// set_tag_position/add_baseline pass.
  [[nodiscard]] PipelineState export_state() const;

  /// Reinstall a previously exported state. The pipeline must have been
  /// constructed with the same arrays/bounds/options; throws
  /// std::invalid_argument on an array-count or offset-size mismatch.
  /// Any in-flight epoch is discarded (call begin_epoch afterwards).
  void restore(const PipelineState& state);

  /// Step 1 (baseline): store the empty-scene spectrum of (array, tag).
  /// Re-adding a tag overwrites its baseline (environment re-baselining).
  void add_baseline(std::size_t array_idx, const rfid::Epc96& epc,
                    const linalg::CMatrix& snapshots);
  void add_baseline(std::size_t array_idx, const rfid::TagObservation& obs);

  /// Begin a new online epoch (clears accumulated evidence and the
  /// per-epoch confidence counters). `watermark_us` is the reader-clock
  /// time the epoch started: wire observations timestamped before it
  /// are rejected as stale when degraded.reject_stale is set (0 = no
  /// staleness checking, the default).
  void begin_epoch(std::uint64_t watermark_us = 0);

  /// Degraded mode: flag an array unhealthy (reader unreachable, its
  /// evidence stale). Unhealthy arrays are excluded from localization
  /// and from the min_arrays requirement (K-of-N). Health persists
  /// across epochs until changed.
  void set_array_health(std::size_t array_idx, bool healthy);
  [[nodiscard]] bool array_healthy(std::size_t array_idx) const;

  /// Fold transport-layer losses into this epoch's confidence report
  /// (retry/timeout counts from a RobustSessionClient, frames/reports
  /// quarantined by decoders or assemblers).
  void note_transport(std::size_t retries, std::size_t timeouts);
  void note_reports_dropped(std::size_t count);

  /// Step 3 (online): process one (array, tag) snapshot matrix; detected
  /// peak drops accumulate into the epoch's per-array evidence. Returns
  /// the number of drops found (0 also when the tag has no baseline).
  std::size_t observe(std::size_t array_idx, const rfid::Epc96& epc,
                      const linalg::CMatrix& snapshots);

  std::size_t observe(std::size_t array_idx, const rfid::TagObservation& obs);

  /// Streaming mode only: true once this epoch's likelihood grid has
  /// converged (stable best-effort argmax + bounded likelihood delta
  /// over `convergence_window` consecutive observations, with evidence
  /// from EVERY healthy array). The serving layer may then seal the
  /// epoch early and emit the fix without waiting for the remaining
  /// reports. Always false when streaming/early_seal is off; reset by
  /// begin_epoch().
  [[nodiscard]] bool early_fix_ready() const noexcept {
    return converged_;
  }

  /// Step 3, batched: process many (array, tag) snapshots for the
  /// current epoch, fanning the per-tag P-MUSIC spectra across the
  /// worker pool (PipelineOptions::num_workers). Equivalent to calling
  /// observe() on every item sorted by (array index, EPC, input order):
  /// evidence, stats and results are bit-identical to that serial loop
  /// for EVERY worker count. Returns the total drops detected.
  std::size_t observe_batch(std::span<const BatchObservation> batch);

  /// Accumulated per-array evidence for the current epoch (raw).
  [[nodiscard]] const std::vector<AngularEvidence>& evidence() const noexcept {
    return evidence_;
  }

  /// Evidence after the paper's Section 4.3 outlier rejection: a drop is
  /// discarded as a pre-reflection-leg "wrong angle" when its tag shows
  /// drops at 2+ arrays while NO other tag corroborates the angle at
  /// this array. (A genuine final-leg blockage is shared by many tags at
  /// one array; a pre-leg blockage travels with one tag to all arrays.)
  [[nodiscard]] std::vector<AngularEvidence> filtered_evidence() const;

  /// Step 4: single-target fix from the current epoch.
  [[nodiscard]] LocationEstimate localize() const;

  /// Step 4, always-report variant (paper Fig. 14 style): falls back to
  /// the raw likelihood maximum when consensus fails.
  [[nodiscard]] LocationEstimate localize_best_effort() const;

  /// Step 4 with provenance: the fix plus a ConfidenceReport describing
  /// the epoch's evidence (arrays used/excluded, reports dropped,
  /// retries, staleness). `best_effort` selects the Fig. 14 fallback.
  [[nodiscard]] ConfidentEstimate localize_with_confidence(
      bool best_effort = false) const;

  /// The confidence report for the current epoch as it stands.
  [[nodiscard]] ConfidenceReport confidence_report() const;

  /// Step 4 (multi-target).
  [[nodiscard]] std::vector<LocationEstimate> localize_multi(
      std::size_t max_targets, double min_separation = 0.25,
      double relative_floor = 0.35) const;

  /// Step 4 (explicit triangulation + outlier rejection variant).
  [[nodiscard]] TriangulationResult triangulate(
      double cluster_radius = 0.5) const;

  /// Dense likelihood map of the current epoch (heatmaps).
  [[nodiscard]] LikelihoodGrid likelihood_grid() const;

  /// The stored baseline spectrum, if any (for inspection/tests).
  [[nodiscard]] const AngularSpectrum* baseline_spectrum(
      std::size_t array_idx, const rfid::Epc96& epc) const;

  /// The worker pool shared with the localizer; null when num_workers
  /// resolves to 1 (fully serial pipeline).
  [[nodiscard]] const std::shared_ptr<ThreadPool>& thread_pool()
      const noexcept {
    return pool_;
  }

  /// Serving-layer hook: replace the worker pool with an externally
  /// owned (typically fleet-shared) one; nullptr reverts to fully
  /// serial. Safe at any epoch boundary — results are bit-identical
  /// for every pool size, per the observe_batch/likelihood_grid
  /// determinism contract. The pool must outlive the pipeline.
  void set_thread_pool(std::shared_ptr<ThreadPool> pool) noexcept {
    pool_ = std::move(pool);
    localizer_.set_thread_pool(pool_);
  }

  /// Serving-layer brownout hook: apply (or clear, with a default
  /// profile) runtime coarsening — localizer grid stride + truncated
  /// P-MUSIC rank cap. Call only at an epoch boundary on the thread
  /// that drives the pipeline (it retunes the estimators the workers
  /// share). set_brownout({}) restores the configured estimators
  /// exactly; subsequent fixes are bit-identical to a pipeline that
  /// was never coarsened.
  void set_brownout(const BrownoutProfile& profile);
  [[nodiscard]] const BrownoutProfile& brownout() const noexcept {
    return brownout_;
  }

 private:
  [[nodiscard]] AngularSpectrum compute_omega(
      std::size_t array_idx, const linalg::CMatrix& snapshots) const;
  [[nodiscard]] AngularSpectrum compute_online_power(
      std::size_t array_idx, const linalg::CMatrix& snapshots) const;
  /// Detection for one observation with a known baseline: online power
  /// spectrum + drop detection, tagged with the EPC serial. Const and
  /// side-effect free so batch items can run on any worker.
  [[nodiscard]] std::vector<PathDrop> detect_drops(
      std::size_t array_idx, const rfid::Epc96& epc,
      const AngularSpectrum& baseline,
      const linalg::CMatrix& snapshots) const;
  void check_array(std::size_t array_idx) const;

  /// Per-epoch RSS bookkeeping for one observation with a stored
  /// baseline: coherence sampling plus (when the tag is surveyed and a
  /// baseline power exists) the link drop. Shared by observe() and the
  /// observe_batch() serial merge so both orders are bit-identical.
  void accumulate_rss(std::size_t array_idx, const rfid::Epc96& epc,
                      double coherence, double online_power);
  [[nodiscard]] std::vector<std::uint8_t> excluded_flags() const;

  /// Streaming-mode detection for one observation: fold the calibrated
  /// snapshots into the (array, tag) incremental covariance, refresh the
  /// tracked subspace, and detect drops on the full Omega spectrum of
  /// the ACCUMULATED covariance. Non-const (mutates the stream state).
  [[nodiscard]] std::vector<PathDrop> detect_drops_streaming(
      std::size_t array_idx, const rfid::Epc96& epc,
      const AngularSpectrum& baseline, const linalg::CMatrix& snapshots);
  /// Run one convergence check after a streaming observation; flips
  /// converged_ once the fix has been stable long enough.
  void check_convergence();

  std::vector<rf::UniformLinearArray> arrays_;
  PipelineOptions options_;
  Localizer localizer_;
  RssLocalizer rss_localizer_;
  SpectrumChangeDetector detector_;
  /// One estimator per array, built once (estimators are immutable and
  /// shared by all workers).
  std::vector<PMusicEstimator> pmusic_;
  std::vector<std::optional<std::vector<double>>> calibration_;
  std::vector<std::map<rfid::Epc96, AngularSpectrum>> baselines_;
  /// RSS fallback reference state (NOT checkpointed; see export_state).
  std::vector<std::map<rfid::Epc96, double>> rss_baselines_;
  std::map<rfid::Epc96, rf::Vec2> tag_positions_;
  std::vector<AngularEvidence> evidence_;
  PipelineStats stats_;
  std::shared_ptr<ThreadPool> pool_;
  /// Active brownout coarsening (default = configured behaviour).
  BrownoutProfile brownout_;
  /// Per-epoch degraded-mode state (reset by begin_epoch).
  struct EpochState {
    std::uint64_t watermark_us = 0;
    std::size_t observations = 0;
    std::size_t observations_skipped = 0;
    std::size_t stale_observations = 0;
    std::size_t low_snapshot_observations = 0;
    std::size_t malformed_observations = 0;
    std::size_t drops_detected = 0;
    std::size_t reports_dropped = 0;
    std::size_t transport_retries = 0;
    std::size_t transport_timeouts = 0;
    /// RSS fallback: per-epoch link evidence + phase-health average.
    std::vector<RssLink> rss_links;
    double coherence_sum = 0.0;
    std::size_t coherence_count = 0;
  };
  EpochState epoch_;

  /// Streaming-path state (empty / inert unless options_.streaming is
  /// enabled). Covariances reset per epoch; trackers persist across
  /// epochs (that is the point of tracking) and are invalidated by
  /// restore().
  struct StreamState {
    IncrementalCovariance cov;
    SubspaceTracker tracker;
  };
  std::vector<std::map<rfid::Epc96, StreamState>> streams_;
  /// Streamed observations per array this epoch (convergence gating).
  std::vector<std::size_t> stream_reports_;
  StreamingStats streaming_stats_;
  /// Convergence detection for the current epoch.
  LocationEstimate last_estimate_;
  std::size_t stable_checks_ = 0;
  bool converged_ = false;
  /// Max first_seen_us accepted so far; carried into the next epoch as
  /// the default watermark when begin_epoch(0) is called with staleness
  /// rejection on (in-memory only, NOT checkpointed beyond the regular
  /// watermark field).
  std::uint64_t max_seen_us_ = 0;
};

}  // namespace dwatch::core
