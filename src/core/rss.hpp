// RSS-only degraded localization (no phase).
//
// When phase is unusable — a reader hub with a broken LO chain, a
// firmware revision that scrambles phase reports, an interferer that
// decorrelates the elements — the P-MUSIC spectra turn to noise but the
// per-(array, tag) received power is still meaningful. This module
// implements an RTI-style fallback (after Wang et al., "Multichannel
// RSS-based Device-Free Localization"): a body standing on or near the
// straight line between a tag and its array attenuates that link, so
// the magnitude of the per-link power drop is spatial evidence along
// the link segment. The likelihood mirrors the phase path's Eq. 15
// shape — a per-array epsilon-floored product — so K-of-N exclusion
// and consensus selection behave identically.
//
// Unlike the phase path, RSS localization needs the SURVEYED tag
// positions (the paper's phase pipeline explicitly does not): callers
// install them with DWatchPipeline::set_tag_position, exactly like
// calibration anchors.
//
// Health gating: DWatchPipeline accumulates a per-epoch phase-health
// score (mean inter-element phase coherence, ~1.0 on healthy hardware,
// ~1/sqrt(N) on scrambled phase) and flips to this path when the score
// falls below RssOnlyOptions::auto_health_threshold, or unconditionally
// when `force` is set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/localizer.hpp"
#include "linalg/complex_matrix.hpp"
#include "rf/geometry.hpp"

namespace dwatch::core {

/// Knobs for the RSS-only degraded mode. Defaults keep the mode fully
/// inert: force off and auto_health_threshold 0 mean a pipeline that
/// never asks for RSS behaves bit-identically to one without it.
struct RssOnlyOptions {
  /// Always localize from RSS drops, ignoring phase health.
  bool force = false;
  /// Switch to RSS automatically when the epoch's mean phase coherence
  /// falls below this value (0 = never switch automatically). Healthy
  /// hardware sits near 1.0; scrambled phase near 1/sqrt(num_snapshots).
  double auto_health_threshold = 0.0;
  /// Minimum fractional per-link power drop that counts as evidence.
  double min_drop_fraction = 0.12;
  /// Lateral spread of a link's evidence around its segment [m] — how
  /// far off the tag-array line a body still measurably shadows it.
  double lateral_sigma = 0.4;
  /// Exponent on the normalized drop fraction used as link weight.
  double power_exponent = 1.0;
  /// Per-array likelihood floor (mirrors LocalizerOptions::epsilon).
  double epsilon = 0.12;
  /// Minimum arrays with RSS evidence for a valid fix.
  std::size_t min_arrays = 2;
  /// An array supports a candidate only when its evidence there is at
  /// least this fraction of the global maximum link weight.
  double consensus_floor = 0.3;
};

/// One attenuated tag-array link observed during an epoch.
struct RssLink {
  std::size_t array_idx = 0;
  rf::Vec2 tag_position;
  /// Fractional power drop vs baseline, in (0, 1].
  double drop_fraction = 0.0;
};

/// Mean inter-element phase coherence of a snapshot matrix, in [0, 1].
/// For each element m >= 1 the N per-round phase differences to element
/// 0 are averaged on the unit circle; coherent hardware keeps them
/// aligned (|mean| ~ 1) while scrambled phase gives a random walk
/// (|mean| ~ 1/sqrt(N)). Single-element matrices score 1.0.
[[nodiscard]] double phase_coherence(const linalg::CMatrix& snapshots);

/// Grid localizer over RSS link evidence. Shares SearchBounds,
/// LocationEstimate and LikelihoodGrid with the phase-path Localizer so
/// callers cannot tell which mode produced a fix except through the
/// ConfidenceReport.
class RssLocalizer {
 public:
  /// Throws std::invalid_argument on empty centers/degenerate bounds.
  RssLocalizer(std::vector<rf::Vec2> array_centers, SearchBounds bounds,
               double grid_step, RssOnlyOptions options = {});

  [[nodiscard]] const RssOnlyOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const SearchBounds& bounds() const noexcept {
    return bounds_;
  }

  /// Largest drop fraction across all links (the weight normalizer).
  [[nodiscard]] static double global_drop_norm(std::span<const RssLink> links);

  /// Evidence of one array at a candidate point: max over its links of
  /// weight * gaussian(lateral distance to the link segment).
  [[nodiscard]] double evidence_at(std::size_t array_idx, rf::Vec2 point,
                                   std::span<const RssLink> links,
                                   double norm) const;

  /// Epsilon-floored per-array product, Eq. 15 shaped. `excluded[a]`
  /// nonzero removes array a from the product and from min_arrays.
  [[nodiscard]] double likelihood_at(rf::Vec2 point,
                                     std::span<const RssLink> links,
                                     std::span<const std::uint8_t> excluded,
                                     double norm) const;

  /// Best single-target estimate (exhaustive grid search + consensus).
  [[nodiscard]] LocationEstimate localize(
      std::span<const RssLink> links,
      std::span<const std::uint8_t> excluded) const;

  /// Always-position variant: consensus failure demotes to the raw
  /// likelihood maximum with valid == false (Fig. 14 semantics).
  [[nodiscard]] LocationEstimate localize_best_effort(
      std::span<const RssLink> links,
      std::span<const std::uint8_t> excluded) const;

  /// Up to `max_targets` grid maxima, min_separation apart and above
  /// relative_floor of the best peak.
  [[nodiscard]] std::vector<LocationEstimate> localize_multi(
      std::span<const RssLink> links, std::span<const std::uint8_t> excluded,
      std::size_t max_targets, double min_separation = 0.25,
      double relative_floor = 0.35) const;

  /// Dense likelihood map (heatmaps, same layout as the phase grid).
  [[nodiscard]] LikelihoodGrid likelihood_grid(
      std::span<const RssLink> links,
      std::span<const std::uint8_t> excluded) const;

 private:
  [[nodiscard]] std::size_t usable_arrays(
      std::span<const RssLink> links,
      std::span<const std::uint8_t> excluded) const;
  [[nodiscard]] std::size_t consensus_at(
      rf::Vec2 point, std::span<const RssLink> links,
      std::span<const std::uint8_t> excluded, double norm) const;
  [[nodiscard]] std::vector<LocationEstimate> grid_candidates(
      std::span<const RssLink> links,
      std::span<const std::uint8_t> excluded) const;

  std::vector<rf::Vec2> centers_;
  SearchBounds bounds_;
  double grid_step_;
  RssOnlyOptions options_;
  double inv_2s2_ = 0.0;
};

}  // namespace dwatch::core
