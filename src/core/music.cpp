#include "core/music.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/steering_cache.hpp"
#include "obs/trace.hpp"
#include "rf/array.hpp"

namespace dwatch::core {

MusicEstimator::MusicEstimator(double spacing, double lambda,
                               MusicOptions options)
    : spacing_(spacing), lambda_(lambda), options_(options) {
  if (spacing_ <= 0.0 || lambda_ <= 0.0) {
    throw std::invalid_argument("MusicEstimator: bad spacing/lambda");
  }
}

MusicResult MusicEstimator::estimate(const linalg::CMatrix& snapshots) const {
  return estimate_from_correlation(sample_correlation(snapshots),
                                   snapshots.cols());
}

MusicResult MusicEstimator::estimate_from_correlation(
    const linalg::CMatrix& r, std::size_t num_snapshots) const {
  DWATCH_SPAN("music.spectrum");
  if (r.rows() != r.cols() || r.rows() < 2) {
    throw std::invalid_argument("MusicEstimator: bad correlation matrix");
  }
  const std::size_t m = r.rows();
  std::size_t l = options_.subarray == 0 ? default_subarray(m)
                                         : options_.subarray;
  if (l < 2 || l > m) {
    throw std::invalid_argument("MusicEstimator: bad subarray size");
  }

  const linalg::CMatrix smoothed =
      l == m ? r
             : (options_.forward_backward ? forward_backward_smooth(r, l)
                                          : forward_smooth(r, l));

  const linalg::EigenDecomposition eig = linalg::hermitian_eig(smoothed);

  SourceCountOptions sc = options_.source_count;
  sc.num_snapshots = num_snapshots;
  const std::size_t p = estimate_source_count(eig.eigenvalues, sc);

  MusicResult result;
  result.num_sources = p;
  result.subarray = l;
  result.eigenvalues = eig.eigenvalues;
  result.signal_subspace = eig.eigenvectors.block(0, 0, l, p);
  result.noise_subspace = eig.eigenvectors.block(0, p, l, l - p);

  result.spectrum = noise_spectrum(result.noise_subspace);
  return result;
}

AngularSpectrum MusicEstimator::noise_spectrum(
    const linalg::CMatrix& noise_subspace) const {
  const std::shared_ptr<const SteeringManifold> manifold =
      SteeringCache::instance().get(noise_subspace.rows(), spacing_, lambda_,
                                    options_.grid_points);
  // ||U_N^H a(theta_i)||^2 for all grid points in one batched projection.
  const linalg::CMatrix proj =
      linalg::matmul_hermitian_left(noise_subspace, manifold->matrix());
  const std::vector<double> denom = linalg::column_squared_norms(proj);
  AngularSpectrum spectrum(options_.grid_points);
  for (std::size_t i = 0; i < denom.size(); ++i) {
    spectrum[i] = 1.0 / std::max(denom[i], 1e-12);
  }
  return spectrum;
}

double MusicEstimator::spectrum_value(const linalg::CMatrix& noise_subspace,
                                      double theta) const {
  const std::size_t l = noise_subspace.rows();
  const linalg::CVector a = rf::steering_vector(l, theta, spacing_, lambda_);
  // ||U_N^H a||^2 without forming the projector.
  double denom = 0.0;
  for (std::size_t q = 0; q < noise_subspace.cols(); ++q) {
    linalg::Complex dot{};
    for (std::size_t i = 0; i < l; ++i) {
      dot += std::conj(noise_subspace(i, q)) * a[i];
    }
    denom += std::norm(dot);
  }
  return 1.0 / std::max(denom, 1e-12);
}

}  // namespace dwatch::core
