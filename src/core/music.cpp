#include "core/music.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/steering_cache.hpp"
#include "linalg/simd_kernels.hpp"
#include "linalg/truncated_eig.hpp"
#include "obs/trace.hpp"
#include "rf/array.hpp"

namespace dwatch::core {

namespace {

/// ||U^H a(theta_i)||^2 per grid column, dispatched on the SIMD
/// backend: scalar runs the untouched legacy CMatrix kernels, vector
/// backends the bit-identical SoA twins.
std::vector<double> subspace_projection_norms(
    const linalg::CMatrix& u, const SteeringManifold& manifold) {
  namespace simd = linalg::simd;
  if (simd::active_backend() == simd::Backend::kScalar) {
    return linalg::column_squared_norms(
        linalg::matmul_hermitian_left(u, manifold.matrix()));
  }
  return simd::column_squared_norms(
      simd::matmul_hermitian_left(u, manifold.soa()));
}

}  // namespace

MusicEstimator::MusicEstimator(double spacing, double lambda,
                               MusicOptions options)
    : spacing_(spacing), lambda_(lambda), options_(options) {
  if (spacing_ <= 0.0 || lambda_ <= 0.0) {
    throw std::invalid_argument("MusicEstimator: bad spacing/lambda");
  }
}

MusicResult MusicEstimator::estimate(const linalg::CMatrix& snapshots) const {
  return estimate_from_correlation(sample_correlation(snapshots),
                                   snapshots.cols());
}

MusicResult MusicEstimator::estimate_from_correlation(
    const linalg::CMatrix& r, std::size_t num_snapshots) const {
  DWATCH_SPAN("music.spectrum");
  if (r.rows() != r.cols() || r.rows() < 2) {
    throw std::invalid_argument("MusicEstimator: bad correlation matrix");
  }
  const std::size_t m = r.rows();
  std::size_t l = options_.subarray == 0 ? default_subarray(m)
                                         : options_.subarray;
  if (l < 2 || l > m) {
    throw std::invalid_argument("MusicEstimator: bad subarray size");
  }

  const linalg::CMatrix smoothed =
      l == m ? r
             : (options_.forward_backward ? forward_backward_smooth(r, l)
                                          : forward_smooth(r, l));

  if (options_.max_signal_rank > 0) {
    MusicResult truncated;
    if (try_truncated_estimate(smoothed, num_snapshots, truncated)) {
      return truncated;
    }
    // Fall through: the dense path below is the safety net.
  }

  const linalg::EigenDecomposition eig = linalg::hermitian_eig(smoothed);

  SourceCountOptions sc = options_.source_count;
  sc.num_snapshots = num_snapshots;
  const std::size_t p = estimate_source_count(eig.eigenvalues, sc);

  MusicResult result;
  result.num_sources = p;
  result.subarray = l;
  result.eigenvalues = eig.eigenvalues;
  result.signal_subspace = eig.eigenvectors.block(0, 0, l, p);
  result.noise_subspace = eig.eigenvectors.block(0, p, l, l - p);

  result.spectrum = noise_spectrum(result.noise_subspace);
  return result;
}

MusicResult MusicEstimator::estimate_from_subspace(
    const linalg::CMatrix& signal_subspace,
    const std::vector<double>& eigenvalues, double trace,
    std::size_t num_snapshots) const {
  DWATCH_SPAN("music.tracked_spectrum");
  const std::size_t l = signal_subspace.rows();
  const std::size_t k = signal_subspace.cols();
  if (l < 2 || k == 0 || k >= l || eigenvalues.size() != k) {
    throw std::invalid_argument(
        "MusicEstimator: bad tracked subspace dimensions");
  }

  // Same synthetic tail as try_truncated_estimate: the top K Ritz
  // values are (near-)exact, the discarded mass is spread uniformly so
  // its SUM stays exact for the source-count threshold rule.
  std::vector<double> full = eigenvalues;
  double extracted = 0.0;
  for (const double v : full) extracted += v;
  double tail =
      std::max((trace - extracted) / static_cast<double>(l - k), 0.0);
  tail = std::min(tail, full.back());
  full.resize(l, tail);

  SourceCountOptions sc = options_.source_count;
  sc.num_snapshots = num_snapshots;
  const std::size_t p = std::min(estimate_source_count(full, sc), k);

  MusicResult out;
  out.num_sources = p;
  out.subarray = l;
  out.eigenvalues = std::move(full);
  out.signal_subspace = signal_subspace.block(0, 0, l, p);
  out.noise_subspace = linalg::CMatrix{};  // never formed, as truncated
  out.truncated = true;
  out.spectrum = complement_spectrum(out.signal_subspace);
  return out;
}

AngularSpectrum MusicEstimator::noise_spectrum(
    const linalg::CMatrix& noise_subspace) const {
  const std::shared_ptr<const SteeringManifold> manifold =
      SteeringCache::instance().get(noise_subspace.rows(), spacing_, lambda_,
                                    options_.grid_points);
  // ||U_N^H a(theta_i)||^2 for all grid points in one batched projection.
  const std::vector<double> denom =
      subspace_projection_norms(noise_subspace, *manifold);
  AngularSpectrum spectrum(options_.grid_points);
  for (std::size_t i = 0; i < denom.size(); ++i) {
    spectrum[i] = 1.0 / std::max(denom[i], 1e-12);
  }
  return spectrum;
}

bool MusicEstimator::try_truncated_estimate(const linalg::CMatrix& smoothed,
                                            std::size_t num_snapshots,
                                            MusicResult& out) const {
  const std::size_t l = smoothed.rows();
  const std::size_t k = std::min(options_.max_signal_rank, l);
  // At K >= L-1 the truncated solver would dense-fallback internally
  // anyway; let the caller's dense path handle it in one place.
  if (k + 1 >= l) return false;

  linalg::TruncatedEigOptions topt;
  topt.rank = k;
  const linalg::TruncatedEigResult trunc =
      linalg::truncated_hermitian_eig(smoothed, topt);
  if (!trunc.converged || trunc.used_dense_fallback) return false;

  // Source counting needs a full eigenvalue list. The top K are exact;
  // the discarded mass (trace minus extracted sum) is spread as a
  // uniform tail — its SUM is exact, which is what the threshold rule's
  // noise-floor mean consumes. Clamp keeps the list descending even
  // when rounding pushes the tail above lambda_K.
  std::vector<double> eigenvalues = trunc.eigenvalues;
  double extracted = 0.0;
  for (const double v : eigenvalues) extracted += v;
  double tail =
      std::max((trunc.trace - extracted) / static_cast<double>(l - k), 0.0);
  if (!eigenvalues.empty()) tail = std::min(tail, eigenvalues.back());
  eigenvalues.resize(l, tail);

  SourceCountOptions sc = options_.source_count;
  sc.num_snapshots = num_snapshots;
  // max_signal_rank is a model-order cap with the same contract as
  // SourceCountOptions::max_sources: never report more sources than
  // eigenpairs extracted.
  const std::size_t p =
      std::min(estimate_source_count(eigenvalues, sc), k);

  out.num_sources = p;
  out.subarray = l;
  out.eigenvalues = std::move(eigenvalues);
  out.signal_subspace = trunc.eigenvectors.block(0, 0, l, p);
  out.noise_subspace = linalg::CMatrix{};  // never formed (documented)
  out.truncated = true;
  out.spectrum = complement_spectrum(out.signal_subspace);
  return true;
}

AngularSpectrum MusicEstimator::complement_spectrum(
    const linalg::CMatrix& signal_subspace) const {
  const std::shared_ptr<const SteeringManifold> manifold =
      SteeringCache::instance().get(signal_subspace.rows(), spacing_, lambda_,
                                    options_.grid_points);
  const std::vector<double> proj =
      subspace_projection_norms(signal_subspace, *manifold);
  const std::vector<double>& norms = manifold->column_norms();
  AngularSpectrum spectrum(options_.grid_points);
  for (std::size_t i = 0; i < proj.size(); ++i) {
    spectrum[i] = 1.0 / std::max(norms[i] - proj[i], 1e-12);
  }
  return spectrum;
}

double MusicEstimator::spectrum_value(const linalg::CMatrix& noise_subspace,
                                      double theta) const {
  const std::size_t l = noise_subspace.rows();
  const linalg::CVector a = rf::steering_vector(l, theta, spacing_, lambda_);
  // ||U_N^H a||^2 without forming the projector.
  double denom = 0.0;
  for (std::size_t q = 0; q < noise_subspace.cols(); ++q) {
    linalg::Complex dot{};
    for (std::size_t i = 0; i < l; ++i) {
      dot += std::conj(noise_subspace(i, q)) * a[i];
    }
    denom += std::norm(dot);
  }
  return 1.0 / std::max(denom, 1e-12);
}

}  // namespace dwatch::core
