// Spectrum-change detection: which paths dropped, and by how much.
//
// D-Watch's observable is the per-path POWER DROP on the P-MUSIC
// spectrum when a target occludes a path (paper Section 4.3, Step 3 of
// the workflow): compare the baseline spectrum (empty scene) with the
// online spectrum and report, for every baseline peak, the fractional
// power drop at that angle.
#pragma once

#include <cstdint>
#include <vector>

#include "core/spectrum.hpp"
#include "rf/constants.hpp"

namespace dwatch::core {

/// One detected path blockage.
struct PathDrop {
  double theta = 0.0;          ///< baseline peak angle [rad]
  double drop_fraction = 0.0;  ///< (P_base - P_online)/P_base, in [0, 1]
  double baseline_power = 0.0;
  double online_power = 0.0;
  /// Which tag's spectrum produced this drop (EPC serial); lets the
  /// outlier rejection distinguish one-tag/many-array ghost patterns
  /// from many-tag/one-array genuine blockage (paper Section 4.3).
  std::uint32_t source_id = 0;
  /// Degraded-mode widening of the localizer's angular kernel for this
  /// drop: >1 when the spectrum behind it was computed from fewer
  /// snapshots than the smoothing minimum (the peak angle is less
  /// trustworthy, so its evidence is spread wider and weighs less at
  /// the center). 1.0 = full confidence; the clean path never changes.
  double sigma_scale = 1.0;
};

struct ChangeDetectorOptions {
  /// Peak detection on the BASELINE spectrum. The default floor is low:
  /// weak reflection-path peaks are exactly the "bad multipaths" D-Watch
  /// wants to watch, and the PB-based online comparison is stable enough
  /// to monitor them without false positives.
  PeakOptions peaks{.min_relative_height = 0.015};
  /// Report a drop only if the fraction exceeds this (absorbs noise and
  /// small spectral jitter).
  double min_drop_fraction = 0.3;
  /// The online power at a baseline peak is taken as the max over a
  /// +/- window this wide, tolerating sub-degree peak wobble.
  double angle_window = rf::deg2rad(2.0);
};

/// Compare baseline vs online spectra of ONE (array, tag) pair.
class SpectrumChangeDetector {
 public:
  explicit SpectrumChangeDetector(ChangeDetectorOptions options = {});

  [[nodiscard]] const ChangeDetectorOptions& options() const noexcept {
    return options_;
  }

  /// All baseline peaks whose power dropped by at least
  /// min_drop_fraction. Spectra must have equal size (throws
  /// std::invalid_argument otherwise).
  [[nodiscard]] std::vector<PathDrop> detect(
      const AngularSpectrum& baseline, const AngularSpectrum& online) const;

  /// Max power in `spectrum` within +/- angle_window of theta. The
  /// window is clamped to the grid and always contains the bin nearest
  /// theta, so an edge-of-grid peak reads its own power rather than an
  /// empty-window 0.0.
  [[nodiscard]] double windowed_power(const AngularSpectrum& spectrum,
                                      double theta) const;

 private:
  ChangeDetectorOptions options_;
};

}  // namespace dwatch::core
