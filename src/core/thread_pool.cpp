#include "core/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <utility>

namespace dwatch::core {

namespace {
thread_local bool t_on_worker = false;
}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

ThreadPool::ThreadPool(std::size_t num_workers) {
  if (num_workers == 0) {
    num_workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Nested fan-out from a pooled task: run inline. Splitting here would
  // park this worker in f.get() on chunks that need a free worker to
  // run — when every worker nests, nothing is free and the pool
  // deadlocks. Inline execution is bit-identical (callers own result
  // placement; indices just run in ascending order on one thread).
  if (on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, num_workers());
  if (chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Static contiguous partition: chunk c covers [c*n/chunks, (c+1)*n/chunks).
  const auto chunk_begin = [n, chunks](std::size_t c) {
    return c * n / chunks;
  };
  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  for (std::size_t c = 1; c < chunks; ++c) {
    futures.push_back(submit([&fn, lo = chunk_begin(c),
                              hi = chunk_begin(c + 1)] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // The calling thread works too instead of idling on the first chunk.
  std::exception_ptr first_error;
  try {
    for (std::size_t i = 0; i < chunk_begin(1); ++i) fn(i);
  } catch (...) {
    first_error = std::current_exception();
  }
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into its future
  }
}

}  // namespace dwatch::core
