#include "core/kalman.hpp"

#include <cmath>
#include <stdexcept>

namespace dwatch::core {

KalmanTracker::KalmanTracker(KalmanOptions options) : options_(options) {
  if (options_.dt <= 0.0 || options_.process_accel <= 0.0 ||
      options_.measurement_sigma <= 0.0) {
    throw std::invalid_argument("KalmanTracker: bad options");
  }
}

void KalmanTracker::predict_axis(KalmanAxis& a) const {
  const double dt = options_.dt;
  const double q = options_.process_accel * options_.process_accel;
  // x <- F x with F = [1 dt; 0 1].
  a.pos += a.vel * dt;
  // P <- F P F^T + Q (white-acceleration discretization).
  const double p_pp = a.p_pp + 2.0 * dt * a.p_pv + dt * dt * a.p_vv;
  const double p_pv = a.p_pv + dt * a.p_vv;
  const double dt2 = dt * dt;
  a.p_pp = p_pp + q * dt2 * dt2 / 4.0;
  a.p_pv = p_pv + q * dt2 * dt / 2.0;
  a.p_vv = a.p_vv + q * dt2;
}

void KalmanTracker::update_axis(KalmanAxis& a, double z) const {
  const double r = options_.measurement_sigma * options_.measurement_sigma;
  const double s = a.p_pp + r;            // innovation variance
  const double k_pos = a.p_pp / s;        // Kalman gains (H = [1 0])
  const double k_vel = a.p_pv / s;
  const double innovation = z - a.pos;
  a.pos += k_pos * innovation;
  a.vel += k_vel * innovation;
  const double p_pp = (1.0 - k_pos) * a.p_pp;
  const double p_pv = (1.0 - k_pos) * a.p_pv;
  const double p_vv = a.p_vv - k_vel * a.p_pv;
  a.p_pp = p_pp;
  a.p_pv = p_pv;
  a.p_vv = p_vv;
}

rf::Vec2 KalmanTracker::update(rf::Vec2 measurement) {
  const double r = options_.measurement_sigma * options_.measurement_sigma;
  if (!initialized_) {
    x_ = KalmanAxis{measurement.x, 0.0, r, 0.0, 4.0};
    y_ = KalmanAxis{measurement.y, 0.0, r, 0.0, 4.0};
    initialized_ = true;
    misses_ = 0;
    return measurement;
  }
  predict_axis(x_);
  predict_axis(y_);

  if (options_.gate_sigmas > 0.0) {
    const double sx = x_.p_pp + r;
    const double sy = y_.p_pp + r;
    const double dx = measurement.x - x_.pos;
    const double dy = measurement.y - y_.pos;
    const double d2 = dx * dx / sx + dy * dy / sy;
    if (d2 > options_.gate_sigmas * options_.gate_sigmas) {
      ++misses_;
      if (misses_ > options_.max_coast) reset();
      return position();
    }
  }
  update_axis(x_, measurement.x);
  update_axis(y_, measurement.y);
  misses_ = 0;
  return position();
}

std::optional<rf::Vec2> KalmanTracker::coast() {
  if (!initialized_) return std::nullopt;
  ++misses_;
  if (misses_ > options_.max_coast) {
    reset();
    return std::nullopt;
  }
  predict_axis(x_);
  predict_axis(y_);
  return position();
}

double KalmanTracker::position_sigma() const noexcept {
  return std::sqrt(std::max(x_.p_pp, y_.p_pp));
}

void KalmanTracker::reset() {
  initialized_ = false;
  misses_ = 0;
  x_ = KalmanAxis{};
  y_ = KalmanAxis{};
}

}  // namespace dwatch::core
