// P-MUSIC (Power MUSIC) — the paper's core algorithmic contribution
// (Section 4.2).
//
// Traditional MUSIC peaks carry angle but not power. P-MUSIC combines
// two spectra computed from the SAME snapshots:
//
//   PB(theta)  = ||sum_m x_m e^{+j omega(m,theta)}||^2 / M^2   (Eq. 13)
//              — delay-and-sum alignment: signals from `theta` add
//                coherently (x M), everything else averages out;
//   Nor(B)     — the MUSIC spectrum with every peak renormalized to 1,
//                keeping only WHERE the peaks are;
//
//   Omega(theta) = PB(theta) * Nor(B(theta))                   (Eq. 14)
//
// so Omega has MUSIC's angular resolution with honest per-path power —
// the quantity whose drop reveals a blocking target.
#pragma once

#include "core/music.hpp"
#include "core/spectrum.hpp"
#include "linalg/complex_matrix.hpp"

namespace dwatch::core {

struct PMusicOptions {
  MusicOptions music;
  /// Peak handling for the Nor(B) normalization. B's peak heights are
  /// inverse subspace leakage and span orders of magnitude; 0.02 keeps
  /// weak-but-real reflection paths while rejecting ripple. Lower it
  /// further (e.g. 0.002) for controlled few-path scenes (bench_fig12).
  PeakOptions peaks{.min_relative_height = 0.02};
};

struct PMusicResult {
  AngularSpectrum omega;     ///< Omega(theta), the P-MUSIC spectrum
  AngularSpectrum power;     ///< PB(theta), beamforming power
  AngularSpectrum music_nor; ///< Nor(B(theta))
  MusicResult music;         ///< underlying MUSIC result
};

/// P-MUSIC estimator bound to one array geometry.
class PMusicEstimator {
 public:
  PMusicEstimator(double spacing, double lambda, PMusicOptions options = {});

  [[nodiscard]] const PMusicOptions& options() const noexcept {
    return options_;
  }

  /// Brownout knob: forwards to the inner MusicEstimator (see
  /// MusicEstimator::set_max_signal_rank). Kept in sync on options_ so
  /// options().music.max_signal_rank reflects the active value.
  void set_max_signal_rank(std::size_t rank) noexcept {
    options_.music.max_signal_rank = rank;
    music_.set_max_signal_rank(rank);
  }

  /// Full P-MUSIC from an M x N snapshot matrix.
  [[nodiscard]] PMusicResult estimate(const linalg::CMatrix& snapshots) const;

  /// Full P-MUSIC from a precomputed M x M correlation (the streaming
  /// path feeds the incrementally accumulated R here). estimate() is
  /// exactly this on sample_correlation(snapshots).
  [[nodiscard]] PMusicResult estimate_from_correlation(
      const linalg::CMatrix& r, std::size_t num_snapshots) const;

  /// Compose Omega = PB(R) * Nor(B) from a correlation matrix and an
  /// externally produced MUSIC result (the subspace-tracking path: B
  /// came from MusicEstimator::estimate_from_subspace over the SAME
  /// accumulated correlation, so no EVD runs per report).
  [[nodiscard]] PMusicResult compose(const linalg::CMatrix& r,
                                     MusicResult music) const;

  /// The inner MUSIC estimator (streaming callers need its
  /// estimate_from_subspace under this array's geometry).
  [[nodiscard]] const MusicEstimator& music() const noexcept {
    return music_;
  }

  /// Beamforming power spectrum PB(theta) alone (Eq. 13), computed from
  /// the FULL (unsmoothed) correlation since power lives on the whole
  /// aperture: PB(theta) = a^H R a / M^2.
  [[nodiscard]] AngularSpectrum power_spectrum(const linalg::CMatrix& r) const;

 private:
  double spacing_;
  double lambda_;
  PMusicOptions options_;
  /// The inner MUSIC estimator, built once so repeated estimate() calls
  /// (one per observation on the pipeline hot path) share it.
  MusicEstimator music_;
};

}  // namespace dwatch::core
