#include "core/steering_cache.hpp"

#include <stdexcept>

#include "rf/array.hpp"

namespace dwatch::core {

SteeringManifold::SteeringManifold(std::size_t elements, double spacing,
                                   double lambda, std::size_t grid_points)
    : spacing_(spacing), lambda_(lambda) {
  if (elements == 0 || grid_points < 2) {
    throw std::invalid_argument("SteeringManifold: bad dimensions");
  }
  if (spacing <= 0.0 || lambda <= 0.0) {
    throw std::invalid_argument("SteeringManifold: bad spacing/lambda");
  }
  matrix_ = linalg::CMatrix(elements, grid_points);
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double theta = rf::kPi * static_cast<double>(i) /
                         static_cast<double>(grid_points - 1);
    const linalg::CVector a =
        rf::steering_vector(elements, theta, spacing, lambda);
    for (std::size_t m = 0; m < elements; ++m) {
      matrix_(m, i) = a[m];
    }
  }
  soa_ = linalg::SplitComplexMatrix::from_matrix(matrix_);
  column_norms_ = linalg::column_squared_norms(matrix_);
}

SteeringCache& SteeringCache::instance() {
  static SteeringCache cache;
  return cache;
}

std::shared_ptr<const SteeringManifold> SteeringCache::get(
    std::size_t elements, double spacing, double lambda,
    std::size_t grid_points) {
  const Key key{elements, spacing, lambda, grid_points};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = manifolds_.find(key);
    if (it != manifolds_.end()) return it->second;
  }
  // Build outside the lock: construction is the expensive part and two
  // threads racing to build the same manifold is harmless (both results
  // are identical; the loser's copy is discarded).
  auto built = std::make_shared<const SteeringManifold>(elements, spacing,
                                                        lambda, grid_points);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = manifolds_.try_emplace(key, std::move(built));
  return it->second;
}

std::size_t SteeringCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return manifolds_.size();
}

void SteeringCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  manifolds_.clear();
}

}  // namespace dwatch::core
