// Cached steering manifolds: the M x G matrix A = [a(theta_1) ...
// a(theta_G)] over the angular grid, precomputed once per array
// geometry.
//
// Every spectrum evaluation (MUSIC Eq. 8, P-MUSIC Eq. 13) and every
// calibration objective probe (Eq. 11) needs a(theta) at the same grid
// of angles for the same (elements, spacing, lambda); regenerating the
// steering vector per angle costs one std::polar (sin+cos) per element
// per grid point plus a heap allocation, and dominated the per-spectrum
// hot path. The manifold is immutable once built, so one copy is shared
// process-wide behind a shared_ptr and concurrent readers need no
// locking (the cache lookup itself is mutex-protected).
//
// Keying uses exact double equality on (spacing, lambda): callers pass
// the same UniformLinearArray-derived values every time, so bitwise
// identity is the correct notion of "same geometry" — no epsilon
// matching, no false sharing between nearly-equal arrays.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "core/spectrum.hpp"
#include "linalg/complex_matrix.hpp"
#include "linalg/soa_complex.hpp"

namespace dwatch::core {

/// Immutable steering matrix over the uniform [0, pi] grid used by
/// AngularSpectrum: column i is a(theta_i) for an `elements`-element ULA.
class SteeringManifold {
 public:
  /// Builds the full M x G matrix eagerly. Throws std::invalid_argument
  /// on elements < 1, grid_points < 2 or non-positive spacing/lambda.
  SteeringManifold(std::size_t elements, double spacing, double lambda,
                   std::size_t grid_points);

  [[nodiscard]] std::size_t elements() const noexcept {
    return matrix_.rows();
  }
  [[nodiscard]] std::size_t grid_points() const noexcept {
    return matrix_.cols();
  }
  [[nodiscard]] double spacing() const noexcept { return spacing_; }
  [[nodiscard]] double lambda() const noexcept { return lambda_; }

  /// The manifold A: elements x grid_points, column i = a(theta_at(i)).
  [[nodiscard]] const linalg::CMatrix& matrix() const noexcept {
    return matrix_;
  }

  /// The same manifold in split re/im (SoA) layout for the SIMD
  /// kernels; built once alongside matrix(), identical values.
  [[nodiscard]] const linalg::SplitComplexMatrix& soa() const noexcept {
    return soa_;
  }

  /// ||a(theta_i)||^2 per grid column, precomputed with the scalar
  /// oracle. The truncated-EVD spectrum path subtracts the signal
  /// projection from these (complement identity) instead of forming
  /// the noise subspace.
  [[nodiscard]] const std::vector<double>& column_norms() const noexcept {
    return column_norms_;
  }

  /// Grid angle of column i (identical to AngularSpectrum::theta_at for
  /// a spectrum of the same size).
  [[nodiscard]] double theta_at(std::size_t i) const noexcept {
    return rf::kPi * static_cast<double>(i) /
           static_cast<double>(matrix_.cols() - 1);
  }

 private:
  double spacing_;
  double lambda_;
  linalg::CMatrix matrix_;
  linalg::SplitComplexMatrix soa_;
  std::vector<double> column_norms_;
};

/// Process-wide cache of steering manifolds keyed by
/// (elements, spacing, lambda, grid_points). Thread-safe; returned
/// manifolds are immutable and may be read concurrently without
/// synchronization.
class SteeringCache {
 public:
  /// The singleton instance shared by all estimators.
  static SteeringCache& instance();

  /// The manifold for this geometry, building it on first request.
  [[nodiscard]] std::shared_ptr<const SteeringManifold> get(
      std::size_t elements, double spacing, double lambda,
      std::size_t grid_points);

  /// Number of distinct manifolds currently cached.
  [[nodiscard]] std::size_t size() const;

  /// Drop all cached manifolds (outstanding shared_ptrs stay valid).
  void clear();

 private:
  using Key = std::tuple<std::size_t, double, double, std::size_t>;

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<const SteeringManifold>> manifolds_;
};

}  // namespace dwatch::core
