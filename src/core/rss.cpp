#include "core/rss.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <stdexcept>

namespace dwatch::core {

double phase_coherence(const linalg::CMatrix& snapshots) {
  const std::size_t m_rows = snapshots.rows();
  const std::size_t n_cols = snapshots.cols();
  if (m_rows <= 1 || n_cols == 0) return 1.0;
  double total = 0.0;
  for (std::size_t m = 1; m < m_rows; ++m) {
    std::complex<double> acc{0.0, 0.0};
    std::size_t terms = 0;
    for (std::size_t n = 0; n < n_cols; ++n) {
      const std::complex<double> x = snapshots(m, n);
      const std::complex<double> r = snapshots(0, n);
      const double mag = std::abs(x) * std::abs(r);
      if (mag < 1e-12) continue;  // a dead sample carries no phase
      acc += x * std::conj(r) / mag;
      ++terms;
    }
    total += terms == 0 ? 0.0 : std::abs(acc) / static_cast<double>(terms);
  }
  return total / static_cast<double>(m_rows - 1);
}

RssLocalizer::RssLocalizer(std::vector<rf::Vec2> array_centers,
                           SearchBounds bounds, double grid_step,
                           RssOnlyOptions options)
    : centers_(std::move(array_centers)),
      bounds_(bounds),
      grid_step_(grid_step),
      options_(options) {
  if (centers_.empty()) {
    throw std::invalid_argument("RssLocalizer: no array centers");
  }
  if (bounds_.max.x <= bounds_.min.x || bounds_.max.y <= bounds_.min.y) {
    throw std::invalid_argument("RssLocalizer: degenerate bounds");
  }
  if (grid_step_ <= 0.0) {
    throw std::invalid_argument("RssLocalizer: grid_step must be > 0");
  }
  if (options_.lateral_sigma <= 0.0) {
    throw std::invalid_argument("RssLocalizer: lateral_sigma must be > 0");
  }
  inv_2s2_ = 1.0 / (2.0 * options_.lateral_sigma * options_.lateral_sigma);
}

double RssLocalizer::global_drop_norm(std::span<const RssLink> links) {
  double norm = 0.0;
  for (const RssLink& link : links) {
    norm = std::max(norm, link.drop_fraction);
  }
  return norm;
}

double RssLocalizer::evidence_at(std::size_t array_idx, rf::Vec2 point,
                                 std::span<const RssLink> links,
                                 double norm) const {
  if (norm <= 0.0) return 0.0;
  double best = 0.0;
  for (const RssLink& link : links) {
    if (link.array_idx != array_idx) continue;
    if (link.drop_fraction < options_.min_drop_fraction) continue;
    const double w =
        std::pow(link.drop_fraction / norm, options_.power_exponent);
    const double d = rf::point_segment_distance(point, centers_[array_idx],
                                                link.tag_position);
    best = std::max(best, w * std::exp(-d * d * inv_2s2_));
  }
  return best;
}

double RssLocalizer::likelihood_at(rf::Vec2 point,
                                   std::span<const RssLink> links,
                                   std::span<const std::uint8_t> excluded,
                                   double norm) const {
  double product = 1.0;
  for (std::size_t a = 0; a < centers_.size(); ++a) {
    if (a < excluded.size() && excluded[a] != 0) continue;
    product *= options_.epsilon + evidence_at(a, point, links, norm);
  }
  return product;
}

std::size_t RssLocalizer::usable_arrays(
    std::span<const RssLink> links,
    std::span<const std::uint8_t> excluded) const {
  std::vector<std::uint8_t> has(centers_.size(), 0);
  for (const RssLink& link : links) {
    if (link.array_idx >= centers_.size()) continue;
    if (link.array_idx < excluded.size() && excluded[link.array_idx] != 0) {
      continue;
    }
    if (link.drop_fraction < options_.min_drop_fraction) continue;
    has[link.array_idx] = 1;
  }
  return static_cast<std::size_t>(
      std::count(has.begin(), has.end(), std::uint8_t{1}));
}

std::size_t RssLocalizer::consensus_at(
    rf::Vec2 point, std::span<const RssLink> links,
    std::span<const std::uint8_t> excluded, double norm) const {
  std::size_t supporting = 0;
  for (std::size_t a = 0; a < centers_.size(); ++a) {
    if (a < excluded.size() && excluded[a] != 0) continue;
    if (evidence_at(a, point, links, norm) >= options_.consensus_floor) {
      ++supporting;
    }
  }
  return supporting;
}

std::vector<LocationEstimate> RssLocalizer::grid_candidates(
    std::span<const RssLink> links,
    std::span<const std::uint8_t> excluded) const {
  const LikelihoodGrid grid = likelihood_grid(links, excluded);
  std::vector<LocationEstimate> candidates;
  for (std::size_t iy = 0; iy < grid.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid.nx; ++ix) {
      const double v = grid.at(ix, iy);
      bool is_max = true;
      for (int dy = -1; dy <= 1 && is_max; ++dy) {
        for (int dx = -1; dx <= 1 && is_max; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const auto jx = static_cast<std::ptrdiff_t>(ix) + dx;
          const auto jy = static_cast<std::ptrdiff_t>(iy) + dy;
          if (jx < 0 || jy < 0 ||
              jx >= static_cast<std::ptrdiff_t>(grid.nx) ||
              jy >= static_cast<std::ptrdiff_t>(grid.ny)) {
            continue;
          }
          if (grid.at(static_cast<std::size_t>(jx),
                      static_cast<std::size_t>(jy)) > v) {
            is_max = false;
          }
        }
      }
      if (!is_max) continue;
      LocationEstimate c;
      c.position = grid.point(ix, iy);
      c.likelihood = v;
      candidates.push_back(c);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            Localizer::candidate_order);
  return candidates;
}

LocationEstimate RssLocalizer::localize(
    std::span<const RssLink> links,
    std::span<const std::uint8_t> excluded) const {
  LocationEstimate best;
  const double norm = global_drop_norm(links);
  if (norm <= 0.0) return best;
  const std::size_t usable = usable_arrays(links, excluded);
  if (usable == 0) return best;
  const std::size_t min_arrays = std::min(options_.min_arrays, usable);
  std::vector<LocationEstimate> candidates = grid_candidates(links, excluded);
  if (candidates.size() > Localizer::kMaxCandidates) {
    candidates.resize(Localizer::kMaxCandidates);
  }
  bool have = false;
  for (LocationEstimate& c : candidates) {
    c.consensus = consensus_at(c.position, links, excluded, norm);
    if (c.consensus < min_arrays) continue;
    if (!have || c.consensus > best.consensus ||
        (c.consensus == best.consensus &&
         Localizer::candidate_order(c, best))) {
      best = c;
      have = true;
    }
  }
  best.valid = have;
  return best;
}

LocationEstimate RssLocalizer::localize_best_effort(
    std::span<const RssLink> links,
    std::span<const std::uint8_t> excluded) const {
  LocationEstimate est = localize(links, excluded);
  if (est.valid) return est;
  const double norm = global_drop_norm(links);
  if (norm <= 0.0) return est;
  const std::vector<LocationEstimate> candidates =
      grid_candidates(links, excluded);
  if (candidates.empty()) return est;
  est = candidates.front();
  est.consensus = consensus_at(est.position, links, excluded, norm);
  est.valid = false;
  return est;
}

std::vector<LocationEstimate> RssLocalizer::localize_multi(
    std::span<const RssLink> links, std::span<const std::uint8_t> excluded,
    std::size_t max_targets, double min_separation,
    double relative_floor) const {
  std::vector<LocationEstimate> out;
  const double norm = global_drop_norm(links);
  if (norm <= 0.0 || max_targets == 0) return out;
  const std::size_t usable = usable_arrays(links, excluded);
  if (usable == 0) return out;
  const std::size_t min_arrays = std::min(options_.min_arrays, usable);
  const std::vector<LocationEstimate> candidates =
      grid_candidates(links, excluded);
  if (candidates.empty()) return out;
  const double floor = candidates.front().likelihood * relative_floor;
  for (const LocationEstimate& c : candidates) {
    if (out.size() >= max_targets) break;
    if (c.likelihood < floor) break;  // candidates are sorted descending
    bool clear = true;
    for (const LocationEstimate& kept : out) {
      if (rf::distance(c.position, kept.position) < min_separation) {
        clear = false;
        break;
      }
    }
    if (!clear) continue;
    LocationEstimate e = c;
    e.consensus = consensus_at(e.position, links, excluded, norm);
    e.valid = e.consensus >= min_arrays;
    out.push_back(e);
  }
  return out;
}

LikelihoodGrid RssLocalizer::likelihood_grid(
    std::span<const RssLink> links,
    std::span<const std::uint8_t> excluded) const {
  LikelihoodGrid grid;
  grid.origin = bounds_.min;
  grid.step = grid_step_;
  grid.nx = static_cast<std::size_t>(
                std::floor((bounds_.max.x - bounds_.min.x) / grid_step_)) +
            1;
  grid.ny = static_cast<std::size_t>(
                std::floor((bounds_.max.y - bounds_.min.y) / grid_step_)) +
            1;
  grid.values.resize(grid.nx * grid.ny);
  const double norm = global_drop_norm(links);
  for (std::size_t iy = 0; iy < grid.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid.nx; ++ix) {
      grid.values[iy * grid.nx + ix] =
          likelihood_at(grid.point(ix, iy), links, excluded, norm);
    }
  }
  return grid;
}

}  // namespace dwatch::core
