// Streaming spectral state (ROADMAP item 3, DESIGN.md §16): the pieces
// that turn the per-epoch batch recompute into an incremental path.
//
//   IncrementalCovariance — per-(array, tag) rank-N accumulator: each
//     incoming report extends the raw outer-product sum S = X X^H
//     (no divide), so the correlation read back after any number of
//     chunks is BIT-IDENTICAL to core::sample_correlation over the
//     concatenated snapshots, on every SIMD backend.
//
//   SubspaceTracker — PAST/FAPI-style signal-subspace tracker: warm
//     updates refine the previous epoch's basis with a few subspace
//     iterations + Rayleigh-Ritz instead of re-deriving it with a full
//     EVD. The dense EVD stays the ORACLE under a bounded-divergence
//     contract: whenever the relative Ritz residual exceeds the
//     tolerance (or the tracker is cold/invalidated/resized), it
//     re-orthonormalizes by falling back to linalg::hermitian_eig —
//     so a tracked spectrum is either within tolerance of the batch
//     one or exactly the batch one.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/complex_matrix.hpp"
#include "linalg/soa_complex.hpp"

namespace dwatch::core {

/// Per-(array, tag) streaming covariance accumulator. accumulate() is
/// the rank-N update (one call per incoming report); correlation()
/// divides once, reproducing the batch kernel bit for bit.
class IncrementalCovariance {
 public:
  /// Throws std::invalid_argument on M == 0.
  explicit IncrementalCovariance(std::size_t num_elements);

  /// Fold one M x N snapshot chunk into the outer-product sum. The
  /// addition chain continues exactly where the previous chunk left
  /// off (see linalg::simd::accumulate_outer_products). Throws
  /// std::invalid_argument on a row-count mismatch or empty chunk.
  void accumulate(const linalg::CMatrix& snapshots);

  /// R = S / N over everything accumulated so far. Bit-identical to
  /// core::sample_correlation on the concatenated snapshot matrix.
  /// Throws std::logic_error before the first accumulate().
  [[nodiscard]] linalg::CMatrix correlation() const;

  [[nodiscard]] std::size_t num_snapshots() const noexcept {
    return num_snapshots_;
  }
  [[nodiscard]] std::size_t num_elements() const noexcept { return m_; }

  /// Drop the accumulated sum (epoch boundary). The object stays bound
  /// to its element count.
  void reset();

 private:
  std::size_t m_;
  std::size_t num_snapshots_ = 0;
  /// Raw outer-product sum, SoA so the vector kernel updates in place.
  linalg::SplitComplexMatrix sum_;
};

struct SubspaceTrackerOptions {
  /// Signal-subspace rank K to track (clamped to L-1 of the smoothed
  /// correlation so a noise complement always exists).
  std::size_t rank = 3;
  /// Warm-update refinement sweeps (subspace iteration + MGS) before
  /// the Rayleigh-Ritz rotation.
  std::size_t refine_iterations = 2;
  /// Divergence contract: relative Ritz residual
  /// ||A U - U diag(ritz)||_F / ||A||_F above this forces a dense EVD
  /// reset. Tight by default so a warm result is numerically
  /// indistinguishable from the batch oracle.
  double divergence_tolerance = 1e-9;
};

/// Outcome of one SubspaceTracker::update() call.
struct SubspaceUpdateResult {
  /// The dense EVD oracle ran (cold start, dimension change,
  /// invalidate(), or divergence).
  bool reset = false;
  /// Relative Ritz residual after the update (0 on a dense reset —
  /// the dense basis IS the oracle).
  double residual = 0.0;
};

class SubspaceTracker {
 public:
  /// Throws std::invalid_argument on rank == 0 or a non-positive
  /// divergence tolerance.
  explicit SubspaceTracker(SubspaceTrackerOptions options = {});

  /// Track the dominant subspace of one Hermitian (smoothed)
  /// correlation. Warm path: refine_iterations of Z = A U + modified
  /// Gram-Schmidt, then a K x K Rayleigh-Ritz rotation. Falls back to
  /// the dense EVD when cold, resized, invalidated, degenerate, or
  /// past the divergence tolerance.
  SubspaceUpdateResult update(const linalg::CMatrix& smoothed);

  /// L x K orthonormal signal basis, Ritz-ordered descending.
  [[nodiscard]] const linalg::CMatrix& subspace() const noexcept {
    return u_;
  }
  /// Ritz values (descending), matching subspace() columns.
  [[nodiscard]] const std::vector<double>& eigenvalues() const noexcept {
    return eigenvalues_;
  }
  /// Trace of the last tracked matrix (for the synthetic noise tail).
  [[nodiscard]] double trace() const noexcept { return trace_; }
  /// Actual rank in use (options.rank clamped to L-1); 0 before the
  /// first update.
  [[nodiscard]] std::size_t rank() const noexcept { return u_.cols(); }
  [[nodiscard]] std::size_t updates() const noexcept { return updates_; }
  /// Dense-oracle fallbacks so far (cold start counts).
  [[nodiscard]] std::size_t resets() const noexcept { return resets_; }

  /// Force the next update() onto the dense oracle (divergence
  /// injection for tests; also used after restore()).
  void invalidate() noexcept { invalidated_ = true; }

 private:
  void dense_reset(const linalg::CMatrix& a, std::size_t k);

  SubspaceTrackerOptions options_;
  linalg::CMatrix u_;
  std::vector<double> eigenvalues_;
  double trace_ = 0.0;
  std::size_t updates_ = 0;
  std::size_t resets_ = 0;
  bool invalidated_ = true;
};

}  // namespace dwatch::core
