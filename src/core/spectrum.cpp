#include "core/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dwatch::core {

AngularSpectrum::AngularSpectrum(std::size_t num_points)
    : values_(num_points) {
  if (num_points < 2) {
    throw std::invalid_argument("AngularSpectrum: need >= 2 points");
  }
}

AngularSpectrum::AngularSpectrum(std::vector<double> values)
    : values_(std::move(values)) {
  if (values_.size() < 2) {
    throw std::invalid_argument("AngularSpectrum: need >= 2 points");
  }
}

double AngularSpectrum::value_at(double theta) const noexcept {
  const double clamped = std::clamp(theta, 0.0, rf::kPi);
  const double pos = clamped / rf::kPi * static_cast<double>(size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= size()) return values_.back();
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

std::size_t AngularSpectrum::index_of(double theta) const noexcept {
  const double clamped = std::clamp(theta, 0.0, rf::kPi);
  const double pos = clamped / rf::kPi * static_cast<double>(size() - 1);
  return static_cast<std::size_t>(std::lround(pos));
}

double AngularSpectrum::max_value() const noexcept {
  return *std::max_element(values_.begin(), values_.end());
}

double AngularSpectrum::min_value() const noexcept {
  return *std::min_element(values_.begin(), values_.end());
}

AngularSpectrum& AngularSpectrum::operator*=(double s) noexcept {
  for (auto& v : values_) v *= s;
  return *this;
}

std::vector<Peak> find_peaks(const AngularSpectrum& spectrum,
                             const PeakOptions& options) {
  const std::size_t n = spectrum.size();
  const double global_max = spectrum.max_value();
  const double floor = global_max * options.min_relative_height;

  std::vector<Peak> peaks;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = spectrum[i];
    if (v < floor) continue;
    const bool left_ok = (i == 0) || spectrum[i - 1] < v;
    // Use <= on the right so plateaus emit exactly one peak (their first
    // sample).
    const bool right_ok = (i + 1 == n) || spectrum[i + 1] <= v;
    if (!left_ok || !right_ok) continue;

    Peak p;
    p.index = i;
    p.value = v;
    p.theta = spectrum.theta_at(i);
    // Parabolic refinement from the 3-point neighbourhood.
    if (i > 0 && i + 1 < n) {
      const double y0 = spectrum[i - 1];
      const double y1 = v;
      const double y2 = spectrum[i + 1];
      const double denom = y0 - 2.0 * y1 + y2;
      if (std::abs(denom) > 1e-300) {
        const double shift = 0.5 * (y0 - y2) / denom;
        if (std::abs(shift) <= 1.0) {
          const double step = rf::kPi / static_cast<double>(n - 1);
          p.theta += shift * step;
          p.value = y1 - 0.25 * (y0 - y2) * shift;
        }
      }
    }
    peaks.push_back(p);
  }

  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });

  // Enforce minimum separation (greedy, strongest first).
  std::vector<Peak> kept;
  for (const Peak& p : peaks) {
    const bool clash = std::any_of(
        kept.begin(), kept.end(), [&](const Peak& q) {
          return std::abs(q.theta - p.theta) < options.min_separation;
        });
    if (!clash) kept.push_back(p);
    if (options.max_peaks > 0 && kept.size() >= options.max_peaks) break;
  }
  return kept;
}

AngularSpectrum normalize_peaks(const AngularSpectrum& spectrum,
                                const PeakOptions& options) {
  const std::size_t n = spectrum.size();
  std::vector<Peak> peaks = find_peaks(spectrum, options);
  AngularSpectrum out(spectrum.values());
  if (peaks.empty()) {
    const double m = spectrum.max_value();
    if (m > 0.0) out *= 1.0 / m;
    return out;
  }

  // Sort peaks by angle and scale each valley-bounded region by its own
  // peak value so every peak tops out at exactly 1.
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.index < b.index; });

  std::vector<std::size_t> boundaries;  // region split points
  boundaries.push_back(0);
  for (std::size_t k = 0; k + 1 < peaks.size(); ++k) {
    // Valley = argmin between consecutive peak indices.
    std::size_t valley = peaks[k].index;
    double best = spectrum[valley];
    for (std::size_t i = peaks[k].index; i <= peaks[k + 1].index; ++i) {
      if (spectrum[i] < best) {
        best = spectrum[i];
        valley = i;
      }
    }
    boundaries.push_back(valley);
  }
  boundaries.push_back(n);

  for (std::size_t k = 0; k < peaks.size(); ++k) {
    const double scale = peaks[k].value > 0.0 ? 1.0 / peaks[k].value : 0.0;
    for (std::size_t i = boundaries[k]; i < boundaries[k + 1]; ++i) {
      out[i] = spectrum[i] * scale;
    }
  }
  return out;
}

}  // namespace dwatch::core
