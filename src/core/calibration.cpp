#include "core/calibration.hpp"

#include <cmath>
#include <stdexcept>

#include "core/covariance.hpp"
#include "linalg/hermitian_eig.hpp"
#include "obs/event_log.hpp"
#include "obs/trace.hpp"
#include "rf/array.hpp"
#include "rf/constants.hpp"
#include "rf/geometry.hpp"

namespace dwatch::core {

WirelessCalibrator::WirelessCalibrator(double spacing, double lambda,
                                       CalibrationOptions options)
    : spacing_(spacing), lambda_(lambda), options_(options) {
  if (spacing_ <= 0.0 || lambda_ <= 0.0) {
    throw std::invalid_argument("WirelessCalibrator: bad spacing/lambda");
  }
}

double WirelessCalibrator::objective(
    std::span<const linalg::CMatrix> noise_subspaces,
    std::span<const double> los_angles,
    std::span<const double> offsets_tail) const {
  if (noise_subspaces.size() != los_angles.size() ||
      noise_subspaces.empty()) {
    throw std::invalid_argument("calibration objective: size mismatch");
  }
  const std::size_t m = noise_subspaces.front().rows();
  std::vector<linalg::CVector> steerings;
  steerings.reserve(los_angles.size());
  for (const double theta : los_angles) {
    steerings.push_back(rf::steering_vector(m, theta, spacing_, lambda_));
  }
  return objective_precomputed(noise_subspaces, steerings, offsets_tail);
}

double WirelessCalibrator::objective_precomputed(
    std::span<const linalg::CMatrix> noise_subspaces,
    std::span<const linalg::CVector> steerings,
    std::span<const double> offsets_tail) const {
  if (noise_subspaces.size() != steerings.size() || noise_subspaces.empty()) {
    throw std::invalid_argument("calibration objective: size mismatch");
  }
  const std::size_t m = noise_subspaces.front().rows();
  if (offsets_tail.size() + 1 != m) {
    throw std::invalid_argument("calibration objective: bad offset count");
  }

  // g = Gamma a (beta_1 = 0), identical for every noise column, so the
  // per-element phasors are applied once per measurement rather than
  // once per (column, element) pair.
  std::vector<linalg::Complex> g(m);
  double total = 0.0;
  for (std::size_t k = 0; k < noise_subspaces.size(); ++k) {
    const linalg::CMatrix& un = noise_subspaces[k];
    const linalg::CVector& a = steerings[k];
    if (a.size() != m) {
      throw std::invalid_argument("calibration objective: bad steering size");
    }
    for (std::size_t i = 0; i < m; ++i) {
      const double beta = i == 0 ? 0.0 : offsets_tail[i - 1];
      g[i] = a[i] * std::polar(1.0, beta);
    }
    // Accumulate ||g^H U_N||^2.
    for (std::size_t q = 0; q < un.cols(); ++q) {
      linalg::Complex dot{};
      for (std::size_t i = 0; i < m; ++i) {
        dot += std::conj(g[i]) * un(i, q);
      }
      total += std::norm(dot);
    }
  }
  return total / static_cast<double>(noise_subspaces.size());
}

CalibrationProbe WirelessCalibrator::make_probe(
    std::span<const CalibrationMeasurement> measurements) const {
  if (measurements.empty()) {
    throw std::invalid_argument("calibrate: no measurements");
  }
  const std::size_t m = measurements.front().snapshots.rows();
  if (m < 2) {
    throw std::invalid_argument("calibrate: need >= 2 antennas");
  }

  // Extract the noise subspace of each measurement's UNsmoothed
  // correlation. Smoothing would scramble Gamma across subarrays, so it
  // must not be used here; coherent multipath keeps the signal subspace
  // 1-dimensional anyway. The steering vectors depend only on the fixed
  // LOS angles, so they are built once per probe, not per objective call.
  CalibrationProbe probe;
  probe.noise_subspaces.reserve(measurements.size());
  probe.steerings.reserve(measurements.size());
  for (const auto& meas : measurements) {
    if (meas.snapshots.rows() != m) {
      throw std::invalid_argument("calibrate: inconsistent antenna count");
    }
    const linalg::CMatrix r = sample_correlation(meas.snapshots);
    const linalg::EigenDecomposition eig = linalg::hermitian_eig(r);
    SourceCountOptions sc = options_.source_count;
    sc.num_snapshots = meas.snapshots.cols();
    const std::size_t p = estimate_source_count(eig.eigenvalues, sc);
    probe.noise_subspaces.push_back(eig.eigenvectors.block(0, p, m, m - p));
    probe.steerings.push_back(
        rf::steering_vector(m, meas.los_angle, spacing_, lambda_));
  }
  return probe;
}

double WirelessCalibrator::residual(const CalibrationProbe& probe,
                                    std::span<const double> offsets) const {
  if (probe.noise_subspaces.empty()) {
    throw std::invalid_argument("residual: empty probe");
  }
  const std::size_t m = probe.noise_subspaces.front().rows();
  if (offsets.size() != m) {
    throw std::invalid_argument("residual: offset count mismatch");
  }
  // The objective fixes beta_1 = 0, so rebase onto element 0.
  std::vector<double> tail(m - 1);
  for (std::size_t i = 1; i < m; ++i) {
    tail[i - 1] = rf::wrap_pi(offsets[i] - offsets[0]);
  }
  return objective_precomputed(probe.noise_subspaces, probe.steerings, tail);
}

CalibrationResult WirelessCalibrator::calibrate(
    std::span<const CalibrationMeasurement> measurements,
    rf::Rng& rng) const {
  DWATCH_SPAN("calibration.solve");
  const CalibrationProbe probe = make_probe(measurements);
  const std::size_t m = probe.noise_subspaces.front().rows();
  const Objective f = [&](std::span<const double> tail) {
    return objective_precomputed(probe.noise_subspaces, probe.steerings,
                                 tail);
  };
  const std::vector<double> lo(m - 1, -rf::kPi);
  const std::vector<double> hi(m - 1, rf::kPi);
  const OptResult opt = hybrid_minimize(f, lo, hi, options_.optimizer, rng);

  CalibrationResult result;
  result.offsets.resize(m, 0.0);
  for (std::size_t i = 1; i < m; ++i) {
    result.offsets[i] = rf::wrap_pi(opt.x[i - 1]);
  }
  result.residual = opt.value;
  result.evaluations = opt.evaluations;
  if (obs::enabled()) {
    obs::EventLog::global().emit(
        obs::Event("calibration.solve")
            .field("elements", m)
            .field("measurements", measurements.size())
            .field("residual", result.residual)
            .field("evaluations", result.evaluations));
  }
  return result;
}

void apply_phase_correction(linalg::CMatrix& x,
                            std::span<const double> offsets) {
  if (offsets.size() != x.rows()) {
    throw std::invalid_argument("apply_phase_correction: size mismatch");
  }
  for (std::size_t m = 0; m < x.rows(); ++m) {
    const linalg::Complex w = std::polar(1.0, -offsets[m]);
    for (std::size_t n = 0; n < x.cols(); ++n) {
      x(m, n) *= w;
    }
  }
}

double mean_phase_error(std::span<const double> estimated,
                        std::span<const double> truth) {
  if (estimated.size() != truth.size() || estimated.size() < 2) {
    throw std::invalid_argument("mean_phase_error: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 1; i < estimated.size(); ++i) {
    sum += std::abs(rf::wrap_pi(estimated[i] - truth[i]));
  }
  return sum / static_cast<double>(estimated.size() - 1);
}

}  // namespace dwatch::core
