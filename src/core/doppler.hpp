// Doppler-based radial speed estimation (paper Section 8: "Doppler shift
// can be applied to estimate the target's walking speed to further
// improve the location accuracy").
//
// Given the complex amplitude of one propagation path sampled once per
// epoch (every `dt` seconds), a moving reflector/blocker changes the path
// length and the phase rotates at f_d = -(1/2pi) d(phase)/dt. The
// estimator fits the unwrapped phase slope robustly and converts to
// radial velocity v = -f_d * lambda (one-way path-length change; pass
// `two_way = true` for reflection off the target, which doubles the
// phase rate).
#pragma once

#include <cstddef>
#include <span>

#include "linalg/complex_matrix.hpp"

namespace dwatch::core {

struct DopplerOptions {
  double dt = 0.1;        ///< epoch interval [s] (paper: 0.1 s)
  double lambda = 0.325;  ///< carrier wavelength [m]
  bool two_way = false;   ///< reflected path: phase accrues twice
  /// Samples with magnitude below this fraction of the series median are
  /// skipped (deep fades make phase meaningless).
  double min_relative_magnitude = 0.1;
};

struct DopplerEstimate {
  double frequency_hz = 0.0;  ///< Doppler shift
  double speed_mps = 0.0;     ///< radial speed (positive = approaching)
  std::size_t samples_used = 0;
  bool valid = false;  ///< false if fewer than 3 usable samples
};

/// Estimate the Doppler shift of a path from its per-epoch complex
/// amplitudes. Unwraps phase and least-squares fits the slope. The
/// usable unambiguous range is |f_d| < 1/(2 dt) (Nyquist over epochs).
[[nodiscard]] DopplerEstimate estimate_doppler(
    std::span<const linalg::Complex> series, const DopplerOptions& options);

/// Phase-unwrap helper (exposed for tests): returns phases with jumps
/// larger than pi removed by +-2pi corrections.
[[nodiscard]] std::vector<double> unwrap_phases(
    std::span<const double> wrapped);

}  // namespace dwatch::core
