#include "core/polynomial.hpp"

#include <cmath>
#include <stdexcept>

#include "rf/constants.hpp"

namespace dwatch::core {

linalg::Complex evaluate_polynomial(
    const std::vector<linalg::Complex>& coefficients, linalg::Complex z) {
  linalg::Complex acc{};
  for (std::size_t i = coefficients.size(); i-- > 0;) {
    acc = acc * z + coefficients[i];
  }
  return acc;
}

std::vector<linalg::Complex> find_roots(
    std::vector<linalg::Complex> coefficients,
    const RootFindOptions& options) {
  // Trim (numerically) zero leading coefficients.
  while (coefficients.size() > 1 &&
         std::abs(coefficients.back()) < 1e-300) {
    coefficients.pop_back();
  }
  if (coefficients.size() < 2) {
    throw std::invalid_argument("find_roots: constant polynomial");
  }
  const std::size_t degree = coefficients.size() - 1;

  // Normalize to a monic polynomial for stability.
  const linalg::Complex lead = coefficients.back();
  for (auto& c : coefficients) c /= lead;

  // Initial guesses: points on a circle of radius slightly above the
  // root magnitude bound, with an irrational angle offset to avoid
  // symmetric stalls.
  double radius = 0.0;
  for (std::size_t i = 0; i < degree; ++i) {
    radius = std::max(radius, std::abs(coefficients[i]));
  }
  radius = 1.0 + radius;  // Cauchy bound
  std::vector<linalg::Complex> roots(degree);
  for (std::size_t i = 0; i < degree; ++i) {
    const double angle =
        rf::kTwoPi * static_cast<double>(i) / static_cast<double>(degree) +
        0.4;
    roots[i] = std::polar(radius * 0.8, angle);
  }

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    double worst_move = 0.0;
    for (std::size_t i = 0; i < degree; ++i) {
      linalg::Complex denom{1.0, 0.0};
      for (std::size_t j = 0; j < degree; ++j) {
        if (j != i) denom *= roots[i] - roots[j];
      }
      if (std::abs(denom) < 1e-300) {
        // Perturb coincident estimates apart.
        roots[i] += linalg::Complex{1e-8, 1e-8};
        continue;
      }
      const linalg::Complex delta =
          evaluate_polynomial(coefficients, roots[i]) / denom;
      roots[i] -= delta;
      worst_move = std::max(worst_move, std::abs(delta));
    }
    if (worst_move < options.tolerance) return roots;
  }
  throw std::runtime_error("find_roots: Durand-Kerner did not converge");
}

}  // namespace dwatch::core
