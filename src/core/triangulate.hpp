// Explicit ray triangulation with outlier rejection (paper Section 4.3).
//
// When a target blocks a reflection path BEFORE the reflector, the
// dropped peak's angle points at the reflector, not the target ("wrong
// angle", Fig. 1(b) path 3). The paper's argument: a single target
// cannot block two paths of the same reader, so when a reader shows
// several drops only one angle is true; candidate intersections from
// wrong angles scatter (often outside the monitored area) while true
// angles agree. We enumerate candidate angle pairs across readers,
// intersect their bearing rays, and keep the densest in-bounds cluster.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/localizer.hpp"
#include "rf/array.hpp"
#include "rf/geometry.hpp"

namespace dwatch::core {

/// A bearing ray in the floor plane: origin + unit direction.
struct BearingRay {
  rf::Vec2 origin;
  rf::Vec2 direction;
};

/// Both in-plane rays consistent with arrival angle theta at a ULA (the
/// linear-array front/back ambiguity: axis rotated by +/- theta).
[[nodiscard]] std::vector<BearingRay> rays_for_angle(
    const rf::UniformLinearArray& array, double theta);

/// Intersection point of two rays if they meet at positive parameters.
[[nodiscard]] std::optional<rf::Vec2> intersect_rays(const BearingRay& a,
                                                     const BearingRay& b);

struct TriangulationOptions {
  /// Candidates outside the bounds are rejected outright.
  SearchBounds bounds;
  /// Cluster radius: candidates within this distance of each other are
  /// mutually consistent [m].
  double cluster_radius = 0.5;
};

struct TriangulationResult {
  rf::Vec2 position;          ///< centroid of the winning cluster
  std::size_t support = 0;    ///< candidates in the cluster
  std::size_t rejected = 0;   ///< candidates discarded as outliers
  bool valid = false;
};

/// Triangulate from per-array drop evidence: every (drop from array i,
/// drop from array j != i) pair contributes up to 4 ray intersections;
/// in-bounds candidates are clustered greedily and the densest cluster's
/// centroid wins. Evidence size must match arrays size.
[[nodiscard]] TriangulationResult triangulate_with_outlier_rejection(
    std::span<const rf::UniformLinearArray> arrays,
    std::span<const AngularEvidence> evidence,
    const TriangulationOptions& options);

}  // namespace dwatch::core
