#include "core/tracker.hpp"

#include <stdexcept>

namespace dwatch::core {

AlphaBetaTracker::AlphaBetaTracker(TrackerOptions options)
    : options_(options) {
  if (options_.alpha <= 0.0 || options_.alpha > 1.0 || options_.beta < 0.0 ||
      options_.beta > 1.0 || options_.dt <= 0.0) {
    throw std::invalid_argument("AlphaBetaTracker: bad gains/dt");
  }
}

rf::Vec2 AlphaBetaTracker::update(rf::Vec2 measurement) {
  if (!initialized_) {
    position_ = measurement;
    velocity_ = {0.0, 0.0};
    initialized_ = true;
    misses_ = 0;
    return position_;
  }
  const rf::Vec2 predicted = position_ + velocity_ * options_.dt;
  if (options_.gate_distance > 0.0 &&
      rf::distance(predicted, measurement) > options_.gate_distance) {
    // Outlier: treat as a miss.
    auto coasted = coast();
    return coasted.value_or(position_);
  }
  const rf::Vec2 residual = measurement - predicted;
  position_ = predicted + residual * options_.alpha;
  velocity_ = velocity_ + residual * (options_.beta / options_.dt);
  misses_ = 0;
  return position_;
}

std::optional<rf::Vec2> AlphaBetaTracker::coast() {
  if (!initialized_) return std::nullopt;
  ++misses_;
  if (misses_ > options_.max_coast) {
    reset();
    return std::nullopt;
  }
  position_ = position_ + velocity_ * options_.dt;
  return position_;
}

void AlphaBetaTracker::reset() {
  initialized_ = false;
  misses_ = 0;
  position_ = {0.0, 0.0};
  velocity_ = {0.0, 0.0};
}

std::vector<std::optional<rf::Vec2>> smooth_trajectory(
    const std::vector<std::optional<rf::Vec2>>& fixes,
    const TrackerOptions& options) {
  AlphaBetaTracker tracker(options);
  std::vector<std::optional<rf::Vec2>> out;
  out.reserve(fixes.size());
  for (const auto& fix : fixes) {
    if (fix) {
      out.push_back(tracker.update(*fix));
    } else {
      out.push_back(tracker.coast());
    }
  }
  return out;
}

}  // namespace dwatch::core
