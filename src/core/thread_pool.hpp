// A small fixed-size worker pool for the per-fix hot path.
//
// The pipeline's epoch work is embarrassingly parallel (one P-MUSIC
// spectrum per (array, tag) observation; one likelihood-grid row per
// task) but latency-critical: a fix must finish well inside the 0.1 s
// read interval (paper Section 8). Workers are started once and reused
// across epochs — no per-epoch thread spawn cost.
//
// Determinism contract: the pool only schedules; callers own result
// placement. parallel_for partitions [0, n) into contiguous chunks and
// every index writes only its own slot, so results are bit-identical
// for any worker count.
//
// Exceptions thrown by tasks are captured and rethrown to the caller:
// submit() via the returned future, parallel_for() directly (the first
// failing chunk's exception, remaining chunks still run to completion).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dwatch::core {

class ThreadPool {
 public:
  /// Starts `num_workers` worker threads; 0 = one per hardware thread
  /// (at least 1).
  explicit ThreadPool(std::size_t num_workers = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }

  /// True when the calling thread is a pool worker (of ANY ThreadPool in
  /// the process). parallel_for uses this to run nested fan-outs inline:
  /// a pooled task that fans out again must not block a worker waiting
  /// on chunks that can only run on the workers already occupied —
  /// with every worker parked in that wait the pool deadlocks. The
  /// serving layer relies on this when zone epochs (themselves pool
  /// tasks) drive pipeline internals that parallel_for over the same
  /// shared pool.
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// Enqueue one task. The future rethrows any exception the task threw.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for every i in [0, n), blocking until all complete.
  /// Indices are split into num_workers() contiguous chunks; the calling
  /// thread executes the first chunk itself. Rethrows the first chunk
  /// exception (by ascending chunk index) after all chunks finish.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace dwatch::core
