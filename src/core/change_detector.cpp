#include "core/change_detector.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"

namespace dwatch::core {

SpectrumChangeDetector::SpectrumChangeDetector(ChangeDetectorOptions options)
    : options_(options) {
  if (options_.min_drop_fraction < 0.0 || options_.min_drop_fraction > 1.0) {
    throw std::invalid_argument(
        "SpectrumChangeDetector: min_drop_fraction outside [0,1]");
  }
  if (!(options_.angle_window >= 0.0)) {  // also rejects NaN
    throw std::invalid_argument(
        "SpectrumChangeDetector: angle_window must be >= 0");
  }
}

double SpectrumChangeDetector::windowed_power(const AngularSpectrum& spectrum,
                                              double theta) const {
  // Clamp the window onto the grid and keep the bounds ordered whatever
  // index_of returns for off-grid angles. The bin nearest theta is
  // ALWAYS part of the window: an empty window would leave `best` at
  // 0.0 and report a healthy edge-of-grid baseline peak as a spurious
  // full drop (drop_fraction == 1.0).
  std::size_t lo = spectrum.index_of(theta - options_.angle_window);
  std::size_t hi = spectrum.index_of(theta + options_.angle_window);
  if (lo > hi) std::swap(lo, hi);
  const std::size_t center = spectrum.index_of(theta);
  lo = std::min(lo, center);
  hi = std::max(hi, center);
  hi = std::min(hi, spectrum.size() - 1);
  double best = 0.0;
  for (std::size_t i = lo; i <= hi; ++i) {
    best = std::max(best, spectrum[i]);
  }
  return best;
}

std::vector<PathDrop> SpectrumChangeDetector::detect(
    const AngularSpectrum& baseline, const AngularSpectrum& online) const {
  DWATCH_SPAN("change.detect");
  if (baseline.size() != online.size()) {
    throw std::invalid_argument(
        "SpectrumChangeDetector: spectrum size mismatch");
  }
  std::vector<PathDrop> drops;
  for (const Peak& peak : find_peaks(baseline, options_.peaks)) {
    if (peak.value <= 0.0) continue;
    const double now = windowed_power(online, peak.theta);
    const double drop = (peak.value - now) / peak.value;
    if (drop >= options_.min_drop_fraction) {
      drops.push_back(PathDrop{
          .theta = peak.theta,
          .drop_fraction = std::min(drop, 1.0),
          .baseline_power = peak.value,
          .online_power = now,
      });
    }
  }
  return drops;
}

}  // namespace dwatch::core
