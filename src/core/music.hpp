// The classical MUSIC direction-of-arrival estimator (Schmidt 1986),
// with spatial smoothing for coherent backscatter multipath.
//
// B(theta) = 1 / (a(theta)^H U_N U_N^H a(theta))      (paper Eq. 8)
//
// MUSIC gives D-Watch its angles; what it canNOT give is per-path signal
// power (its peak height is a pseudo-probability) — that gap is the
// motivation for P-MUSIC (paper Section 3.2 / Fig. 4).
#pragma once

#include <cstddef>
#include <vector>

#include "core/covariance.hpp"
#include "core/source_count.hpp"
#include "core/spectrum.hpp"
#include "linalg/complex_matrix.hpp"
#include "linalg/hermitian_eig.hpp"
#include "rf/constants.hpp"

namespace dwatch::core {

struct MusicOptions {
  /// Spectrum grid resolution over [0, pi].
  std::size_t grid_points = AngularSpectrum::kDefaultPoints;
  /// Spatial-smoothing subarray size L; 0 = default_subarray(M); M = no
  /// smoothing.
  std::size_t subarray = 0;
  /// Forward-backward (true) or forward-only smoothing.
  bool forward_backward = true;
  /// 0 = dense EVD (the default, bit-stable legacy path). K > 0 caps
  /// the signal-subspace rank and switches to the truncated eigensolver
  /// (linalg/truncated_eig.hpp): only the top-K eigenpairs are
  /// extracted and the spectrum denominator comes from the complement
  /// identity ||U_N^H a||^2 = ||a||^2 - ||U_S^H a||^2. Acts as a
  /// model-order cap exactly like SourceCountOptions::max_sources; the
  /// estimator silently falls back to the dense path when K is too
  /// close to the subarray size, when the iteration stalls, or when
  /// the eigen-gap evidence suggests more than K sources.
  std::size_t max_signal_rank = 0;
  SourceCountOptions source_count;
};

struct MusicResult {
  AngularSpectrum spectrum;            ///< B(theta)
  std::size_t num_sources = 0;         ///< estimated P
  std::size_t subarray = 0;            ///< L actually used
  /// Of the (smoothed) correlation. On the truncated path entries past
  /// the extracted rank are a synthetic uniform tail reconstructed
  /// from the trace (their SUM is exact; the split is not).
  std::vector<double> eigenvalues;
  /// U_N, L x (L - P). EMPTY when `truncated` — the truncated solver
  /// never forms the noise basis (that is the point); callers needing
  /// U_N explicitly must run with max_signal_rank = 0.
  linalg::CMatrix noise_subspace;
  linalg::CMatrix signal_subspace;     ///< U_S, L x P
  /// True when the spectrum came from the truncated eigensolver via
  /// the complement identity rather than a dense EVD.
  bool truncated = false;
};

/// MUSIC estimator bound to one array geometry.
class MusicEstimator {
 public:
  /// Throws std::invalid_argument on non-positive spacing/lambda.
  MusicEstimator(double spacing, double lambda, MusicOptions options = {});

  [[nodiscard]] const MusicOptions& options() const noexcept {
    return options_;
  }

  /// Brownout knob: retarget MusicOptions::max_signal_rank at runtime
  /// (0 restores the dense EVD path). The option is read per estimate()
  /// call, so this takes effect on the next estimate with no other
  /// state to invalidate.
  void set_max_signal_rank(std::size_t rank) noexcept {
    options_.max_signal_rank = rank;
  }

  /// Full MUSIC from an M x N snapshot matrix.
  [[nodiscard]] MusicResult estimate(const linalg::CMatrix& snapshots) const;

  /// MUSIC from a precomputed M x M correlation matrix.
  [[nodiscard]] MusicResult estimate_from_correlation(
      const linalg::CMatrix& r, std::size_t num_snapshots) const;

  /// MUSIC from an externally tracked signal subspace (the streaming
  /// path: core::SubspaceTracker maintains the basis across reports, so
  /// no EVD runs here). `signal_subspace` is the L x K orthonormal
  /// basis of the SMOOTHED correlation, `eigenvalues` its K Ritz values
  /// (descending) and `trace` the smoothed matrix's trace — the missing
  /// L-K noise eigenvalues are reconstructed as the uniform trace tail,
  /// exactly like the truncated-EVD path, and the spectrum comes from
  /// the same complement identity. The result carries truncated = true
  /// and an empty noise_subspace. Throws std::invalid_argument unless
  /// 2 <= L, 1 <= K < L and eigenvalues.size() == K.
  [[nodiscard]] MusicResult estimate_from_subspace(
      const linalg::CMatrix& signal_subspace,
      const std::vector<double>& eigenvalues, double trace,
      std::size_t num_snapshots) const;

  /// Spectrum value B(theta) for a given noise subspace (exposed for the
  /// calibration objective, which evaluates a(theta)^H Gamma^H U_N).
  /// Regenerates a(theta) per call; the estimate path instead uses the
  /// cached steering manifold via noise_spectrum().
  [[nodiscard]] double spectrum_value(const linalg::CMatrix& noise_subspace,
                                      double theta) const;

  /// Full spectrum B over the grid for a given noise subspace, computed
  /// through the cached steering manifold as one U_N^H A projection.
  /// Numerically identical to calling spectrum_value at every grid
  /// angle.
  [[nodiscard]] AngularSpectrum noise_spectrum(
      const linalg::CMatrix& noise_subspace) const;

 private:
  /// Truncated-EVD estimate (options_.max_signal_rank > 0). Returns
  /// false — leaving `out` untouched — whenever the dense path should
  /// run instead: rank too close to L, iteration stalled, or the
  /// solver already fell back internally.
  bool try_truncated_estimate(const linalg::CMatrix& smoothed,
                              std::size_t num_snapshots,
                              MusicResult& out) const;

  /// B(theta) from the SIGNAL subspace via the complement identity
  /// ||U_N^H a||^2 = ||a||^2 - ||U_S^H a||^2 (manifold column norms
  /// are cached, so U_N is never formed).
  [[nodiscard]] AngularSpectrum complement_spectrum(
      const linalg::CMatrix& signal_subspace) const;

  double spacing_;
  double lambda_;
  MusicOptions options_;
};

}  // namespace dwatch::core
