// The classical MUSIC direction-of-arrival estimator (Schmidt 1986),
// with spatial smoothing for coherent backscatter multipath.
//
// B(theta) = 1 / (a(theta)^H U_N U_N^H a(theta))      (paper Eq. 8)
//
// MUSIC gives D-Watch its angles; what it canNOT give is per-path signal
// power (its peak height is a pseudo-probability) — that gap is the
// motivation for P-MUSIC (paper Section 3.2 / Fig. 4).
#pragma once

#include <cstddef>
#include <vector>

#include "core/covariance.hpp"
#include "core/source_count.hpp"
#include "core/spectrum.hpp"
#include "linalg/complex_matrix.hpp"
#include "linalg/hermitian_eig.hpp"
#include "rf/constants.hpp"

namespace dwatch::core {

struct MusicOptions {
  /// Spectrum grid resolution over [0, pi].
  std::size_t grid_points = AngularSpectrum::kDefaultPoints;
  /// Spatial-smoothing subarray size L; 0 = default_subarray(M); M = no
  /// smoothing.
  std::size_t subarray = 0;
  /// Forward-backward (true) or forward-only smoothing.
  bool forward_backward = true;
  SourceCountOptions source_count;
};

struct MusicResult {
  AngularSpectrum spectrum;            ///< B(theta)
  std::size_t num_sources = 0;         ///< estimated P
  std::size_t subarray = 0;            ///< L actually used
  std::vector<double> eigenvalues;     ///< of the (smoothed) correlation
  linalg::CMatrix noise_subspace;      ///< U_N, L x (L - P)
  linalg::CMatrix signal_subspace;     ///< U_S, L x P
};

/// MUSIC estimator bound to one array geometry.
class MusicEstimator {
 public:
  /// Throws std::invalid_argument on non-positive spacing/lambda.
  MusicEstimator(double spacing, double lambda, MusicOptions options = {});

  [[nodiscard]] const MusicOptions& options() const noexcept {
    return options_;
  }

  /// Full MUSIC from an M x N snapshot matrix.
  [[nodiscard]] MusicResult estimate(const linalg::CMatrix& snapshots) const;

  /// MUSIC from a precomputed M x M correlation matrix.
  [[nodiscard]] MusicResult estimate_from_correlation(
      const linalg::CMatrix& r, std::size_t num_snapshots) const;

  /// Spectrum value B(theta) for a given noise subspace (exposed for the
  /// calibration objective, which evaluates a(theta)^H Gamma^H U_N).
  /// Regenerates a(theta) per call; the estimate path instead uses the
  /// cached steering manifold via noise_spectrum().
  [[nodiscard]] double spectrum_value(const linalg::CMatrix& noise_subspace,
                                      double theta) const;

  /// Full spectrum B over the grid for a given noise subspace, computed
  /// through the cached steering manifold as one U_N^H A projection.
  /// Numerically identical to calling spectrum_value at every grid
  /// angle.
  [[nodiscard]] AngularSpectrum noise_spectrum(
      const linalg::CMatrix& noise_subspace) const;

 private:
  double spacing_;
  double lambda_;
  MusicOptions options_;
};

}  // namespace dwatch::core
