// Complex polynomial root finding (Durand-Kerner / Weierstrass), used by
// the root-MUSIC estimator. Degrees here are tiny (2(L-1) <= 14), where
// the simultaneous iteration is simple and dependable.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/complex_matrix.hpp"

namespace dwatch::core {

struct RootFindOptions {
  std::size_t max_iterations = 500;
  double tolerance = 1e-12;  ///< max per-root movement to declare done
};

/// All complex roots of  c[0] + c[1] z + ... + c[n] z^n.
///
/// Leading zero coefficients are trimmed; throws std::invalid_argument if
/// the polynomial is constant (no roots), std::runtime_error if the
/// iteration fails to converge (not observed for the well-conditioned
/// MUSIC polynomials this is used on).
[[nodiscard]] std::vector<linalg::Complex> find_roots(
    std::vector<linalg::Complex> coefficients,
    const RootFindOptions& options = {});

/// Evaluate the polynomial at z (Horner).
[[nodiscard]] linalg::Complex evaluate_polynomial(
    const std::vector<linalg::Complex>& coefficients, linalg::Complex z);

}  // namespace dwatch::core
