#include "core/covariance.hpp"

#include <stdexcept>

#include "linalg/simd_kernels.hpp"
#include "linalg/soa_complex.hpp"

namespace dwatch::core {

linalg::CMatrix sample_correlation(const linalg::CMatrix& x) {
  if (x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument("sample_correlation: empty snapshot matrix");
  }
  namespace simd = linalg::simd;
  if (simd::active_backend() != simd::Backend::kScalar) {
    // Transposed SoA: snapshot k becomes a contiguous row, so the
    // kernel vector-loads across array elements. Bit-identical to the
    // scalar loop below (the parity contract in simd_kernels.hpp).
    return simd::sample_correlation(
        linalg::SplitComplexMatrix::from_matrix_transposed(x));
  }
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  linalg::CMatrix r(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      linalg::Complex sum{};
      for (std::size_t k = 0; k < n; ++k) {
        sum += x(i, k) * std::conj(x(j, k));
      }
      r(i, j) = sum / static_cast<double>(n);
    }
  }
  return r;
}

linalg::CMatrix forward_smooth(const linalg::CMatrix& r,
                               std::size_t subarray) {
  const std::size_t m = r.rows();
  if (r.rows() != r.cols()) {
    throw std::invalid_argument("forward_smooth: R not square");
  }
  if (subarray < 2 || subarray > m) {
    throw std::invalid_argument("forward_smooth: bad subarray size");
  }
  const std::size_t count = m - subarray + 1;
  linalg::CMatrix out(subarray, subarray);
  for (std::size_t s = 0; s < count; ++s) {
    out += r.block(s, s, subarray, subarray);
  }
  out *= linalg::Complex{1.0 / static_cast<double>(count), 0.0};
  return out;
}

linalg::CMatrix forward_backward_smooth(const linalg::CMatrix& r,
                                        std::size_t subarray) {
  linalg::CMatrix fwd = forward_smooth(r, subarray);
  const std::size_t l = fwd.rows();
  // Backward: J conj(R_f) J where J is the exchange matrix.
  linalg::CMatrix bwd(l, l);
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      bwd(i, j) = std::conj(fwd(l - 1 - i, l - 1 - j));
    }
  }
  linalg::CMatrix out = fwd;
  out += bwd;
  out *= linalg::Complex{0.5, 0.0};
  return out;
}

std::size_t default_subarray(std::size_t num_elements) noexcept {
  // Keep >= 3 forward subarrays (6 after forward-backward) when the array
  // is large enough; for small arrays fall back to M-1.
  if (num_elements >= 6) return num_elements - 2;
  if (num_elements >= 3) return num_elements - 1;
  return num_elements;
}

}  // namespace dwatch::core
