// Snapshot-to-trajectory tracking (paper Sections 6.8 and 8).
//
// D-Watch fixes arrive every ~0.1 s; a walking human moves 10-20 cm
// between fixes and a writing fist ~5 cm. An alpha-beta filter smooths
// the per-fix estimates into a trajectory, coasts through missed fixes
// (the paper's "deadzone" mitigation via target mobility), and gates
// away wild outliers.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "rf/geometry.hpp"

namespace dwatch::core {

struct TrackerOptions {
  double alpha = 0.5;  ///< position correction gain
  double beta = 0.2;   ///< velocity correction gain
  double dt = 0.1;     ///< fix interval [s] (paper: 0.1 s transmissions)
  /// Reject measurements farther than this from the prediction [m];
  /// <= 0 disables gating.
  double gate_distance = 0.8;
  /// Coast at most this many consecutive misses before the track resets.
  std::size_t max_coast = 5;
};

/// The tracker's long-lived state, exported for checkpoint/restore.
struct AlphaBetaState {
  rf::Vec2 position{};
  rf::Vec2 velocity{};
  bool initialized = false;
  std::size_t misses = 0;
};

/// Alpha-beta tracker over 2-D positions.
class AlphaBetaTracker {
 public:
  explicit AlphaBetaTracker(TrackerOptions options = {});

  /// Feed one fix; returns the smoothed position. The first accepted
  /// measurement initializes the track. Gated-out measurements count as
  /// misses (the prediction is returned).
  rf::Vec2 update(rf::Vec2 measurement);

  /// Feed a missed fix (deadzone): the track coasts on its velocity.
  /// Returns the prediction, or nullopt if the track is not initialized
  /// or has exceeded max_coast and reset.
  std::optional<rf::Vec2> coast();

  [[nodiscard]] bool initialized() const noexcept { return initialized_; }
  [[nodiscard]] rf::Vec2 position() const noexcept { return position_; }
  [[nodiscard]] rf::Vec2 velocity() const noexcept { return velocity_; }
  [[nodiscard]] std::size_t consecutive_misses() const noexcept {
    return misses_;
  }

  void reset();

  /// Checkpoint/restore of the track (options are construction-time).
  [[nodiscard]] AlphaBetaState state() const noexcept {
    return {position_, velocity_, initialized_, misses_};
  }
  void restore(const AlphaBetaState& s) noexcept {
    position_ = s.position;
    velocity_ = s.velocity;
    initialized_ = s.initialized;
    misses_ = s.misses;
  }

 private:
  TrackerOptions options_;
  rf::Vec2 position_;
  rf::Vec2 velocity_;
  bool initialized_ = false;
  std::size_t misses_ = 0;
};

/// Smooth a whole trajectory of (possibly missing) fixes. Output has one
/// entry per input; missing fixes are filled by coasting where possible.
[[nodiscard]] std::vector<std::optional<rf::Vec2>> smooth_trajectory(
    const std::vector<std::optional<rf::Vec2>>& fixes,
    const TrackerOptions& options = {});

}  // namespace dwatch::core
