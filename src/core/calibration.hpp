// Wireless phase calibration (paper Section 4.1).
//
// Each RF chain adds a random phase offset beta_m; with offsets the array
// model becomes X = Gamma A S + n, Gamma = diag(1, e^{j db_2}, ...,
// e^{j db_M}). ArrayTrack removes Gamma with a wired splitter (requires
// unplugging antennas); D-Watch instead deploys K tags with KNOWN direct
// path angles and exploits subspace orthogonality: when Gamma is removed
// correctly, a(theta_LoS)^H Gamma^H U_N ~ 0. The offsets are found by
// minimizing
//
//   sum_k || a(theta_LoS^(k))^H Gamma^H U_N^(k) ||^2      (Eq. 11)
//
// with a hybrid GA + gradient-descent optimizer. Measurements are taken
// during NORMAL tag traffic — no link interruption, no human in the loop.
//
// Note the paper's footnote: tag locations are needed ONLY here, never
// for localization.
#pragma once

#include <span>
#include <vector>

#include "core/optimizer.hpp"
#include "core/source_count.hpp"
#include "linalg/complex_matrix.hpp"
#include "rf/noise.hpp"

namespace dwatch::core {

/// One calibration tag's data: snapshots + its known LoS angle.
struct CalibrationMeasurement {
  linalg::CMatrix snapshots;  ///< M x N, uncalibrated
  double los_angle = 0.0;     ///< true direct-path AoA [rad]
};

struct CalibrationOptions {
  /// Model-order rule for extracting U_N per measurement. Calibration
  /// tags are placed with a dominant LoS (paper footnote 1), so the
  /// signal subspace is usually 1-dimensional.
  SourceCountOptions source_count;
  HybridOptions optimizer;
};

struct CalibrationResult {
  /// Estimated offsets beta_m [rad], size M; element 0 is 0 (reference).
  std::vector<double> offsets;
  /// Objective value at the solution (residual subspace leakage).
  double residual = 0.0;
  std::size_t evaluations = 0;
};

/// Per-measurement noise subspaces and LoS steering vectors, extracted
/// once from a set of anchor-tag measurements and reusable across many
/// residual evaluations. The drift watchdog re-scores the SAME anchors
/// every epoch and a recalibration compares the incumbent and candidate
/// offsets on ONE probe, so the eigendecompositions are hoisted out of
/// the scoring path.
struct CalibrationProbe {
  std::vector<linalg::CMatrix> noise_subspaces;  ///< U_N per measurement
  std::vector<linalg::CVector> steerings;        ///< a(theta_LoS) per meas.
};

/// The calibrator for one array geometry.
class WirelessCalibrator {
 public:
  /// Throws std::invalid_argument on bad spacing/lambda.
  WirelessCalibrator(double spacing, double lambda,
                     CalibrationOptions options = {});

  /// Estimate offsets from >= 1 measurements (more tags => better, paper
  /// Fig. 9). All snapshot matrices must share the same M >= 2. Throws
  /// std::invalid_argument otherwise.
  [[nodiscard]] CalibrationResult calibrate(
      std::span<const CalibrationMeasurement> measurements,
      rf::Rng& rng) const;

  /// Extract the noise subspaces + LoS steering vectors of a measurement
  /// set (the expensive half of calibrate(), shared with residual
  /// scoring). Same validation rules as calibrate().
  [[nodiscard]] CalibrationProbe make_probe(
      std::span<const CalibrationMeasurement> measurements) const;

  /// The Eq. 11 residual of a FULL size-M offset vector against a probe
  /// — the calibration-drift score `sum_k ||a^H Gamma^H U_N^(k)||^2`
  /// tracked by the recovery watchdog. Only offset differences to the
  /// reference element matter, so absolute (reader-supplied) and
  /// relative (calibrate()-estimated) offset vectors score identically.
  [[nodiscard]] double residual(const CalibrationProbe& probe,
                                std::span<const double> offsets) const;

  /// The calibration objective (Eq. 11) for externally-supplied noise
  /// subspaces; exposed for testing and for the Phaser-comparison bench.
  /// Regenerates a(theta_LoS) per call; the calibrate() hot loop instead
  /// precomputes the steering vectors once per solve and uses
  /// objective_precomputed().
  [[nodiscard]] double objective(
      std::span<const linalg::CMatrix> noise_subspaces,
      std::span<const double> los_angles,
      std::span<const double> offsets_tail) const;

  /// objective() with the K LoS steering vectors already evaluated
  /// (steerings[k] = a(theta_LoS^(k))). The optimizer probes this
  /// thousands of times per solve, so the trigonometric steering
  /// generation is hoisted out of the probe path.
  [[nodiscard]] double objective_precomputed(
      std::span<const linalg::CMatrix> noise_subspaces,
      std::span<const linalg::CVector> steerings,
      std::span<const double> offsets_tail) const;

 private:
  double spacing_;
  double lambda_;
  CalibrationOptions options_;
};

/// Apply a phase correction to snapshots in place: row m of `x` is
/// multiplied by e^{-j offsets[m]} (undoing Gamma). Throws
/// std::invalid_argument on size mismatch.
void apply_phase_correction(linalg::CMatrix& x,
                            std::span<const double> offsets);

/// Mean absolute wrapped phase error between two offset vectors,
/// ignoring the reference element 0. Sizes must match.
[[nodiscard]] double mean_phase_error(std::span<const double> estimated,
                                      std::span<const double> truth);

}  // namespace dwatch::core
