#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "linalg/simd_kernels.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dwatch::core {

namespace {

/// Process-wide mirrors of the pipeline lifetime counters, registered
/// once and cached as references (registry metrics never move). Only
/// touched inside `if (obs::enabled())` blocks, so a disabled build
/// never even registers them.
struct PipelineCounters {
  obs::Counter& epochs;
  obs::Counter& observations;
  obs::Counter& observations_skipped;
  obs::Counter& drops_detected;
  obs::Counter& stale_observations;
  obs::Counter& low_snapshot_observations;
  obs::Counter& malformed_observations;
  obs::Counter& reports_dropped;
  obs::Counter& transport_retries;
  obs::Counter& transport_timeouts;

  static PipelineCounters& get() {
    auto& reg = obs::MetricsRegistry::global();
    static PipelineCounters counters{
        reg.counter("dwatch_pipeline_epochs_total"),
        reg.counter("dwatch_pipeline_observations_total"),
        reg.counter("dwatch_pipeline_observations_skipped_total"),
        reg.counter("dwatch_pipeline_drops_detected_total"),
        reg.counter("dwatch_pipeline_stale_observations_total"),
        reg.counter("dwatch_pipeline_low_snapshot_observations_total"),
        reg.counter("dwatch_pipeline_malformed_observations_total"),
        reg.counter("dwatch_pipeline_reports_dropped_total"),
        reg.counter("dwatch_pipeline_transport_retries_total"),
        reg.counter("dwatch_pipeline_transport_timeouts_total")};
    return counters;
  }
};

/// Plan-view array centers for the RSS localizer.
std::vector<rf::Vec2> array_centers_xy(
    const std::vector<rf::UniformLinearArray>& arrays) {
  std::vector<rf::Vec2> centers;
  centers.reserve(arrays.size());
  for (const auto& array : arrays) centers.push_back(array.center().xy());
  return centers;
}

/// Mean per-sample power of a snapshot matrix (the RSS observable).
double mean_power(const linalg::CMatrix& x) {
  if (x.rows() == 0 || x.cols() == 0) return 0.0;
  double total = 0.0;
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      total += std::norm(x(m, n));
    }
  }
  return total / static_cast<double>(x.rows() * x.cols());
}

}  // namespace

linalg::CMatrix observation_to_snapshots(const rfid::TagObservation& obs,
                                         std::size_t num_elements) {
  if (num_elements == 0) {
    throw std::invalid_argument("observation_to_snapshots: M == 0");
  }
  // Group samples by round.
  std::map<std::uint32_t, std::vector<std::optional<linalg::Complex>>> rounds;
  for (const rfid::PhaseSample& s : obs.samples) {
    if (s.element_id == 0 || s.element_id > num_elements) {
      throw std::invalid_argument(
          "observation_to_snapshots: element id out of range");
    }
    auto& row = rounds[s.round];
    if (row.empty()) row.resize(num_elements);
    row[s.element_id - 1] = s.as_complex();
  }
  // Keep complete rounds only.
  std::vector<const std::vector<std::optional<linalg::Complex>>*> complete;
  for (const auto& [round, row] : rounds) {
    bool full = true;
    for (const auto& v : row) {
      if (!v) {
        full = false;
        break;
      }
    }
    if (full) complete.push_back(&row);
  }
  if (complete.empty()) {
    throw std::invalid_argument(
        "observation_to_snapshots: no complete round");
  }
  linalg::CMatrix x(num_elements, complete.size());
  for (std::size_t n = 0; n < complete.size(); ++n) {
    for (std::size_t m = 0; m < num_elements; ++m) {
      x(m, n) = *(*complete[n])[m];
    }
  }
  return x;
}

DWatchPipeline::DWatchPipeline(std::vector<rf::UniformLinearArray> arrays,
                               SearchBounds bounds, PipelineOptions options)
    : arrays_(std::move(arrays)),
      options_(options),
      localizer_(arrays_, bounds, options.localizer),
      rss_localizer_(array_centers_xy(arrays_), bounds,
                     options.localizer.grid_step, options.rss_only),
      detector_(options.change),
      calibration_(arrays_.size()),
      baselines_(arrays_.size()),
      rss_baselines_(arrays_.size()),
      evidence_(arrays_.size()) {
  // A single-element array has no angular aperture: default_subarray(1)
  // returns 1 and every spectral consumer downstream throws. Reject at
  // construction so the contract surfaces here, not mid-epoch.
  for (const auto& array : arrays_) {
    if (array.num_elements() < 2) {
      throw std::invalid_argument(
          "DWatchPipeline: arrays need >= 2 elements");
    }
  }
  pmusic_.reserve(arrays_.size());
  for (const auto& array : arrays_) {
    pmusic_.emplace_back(array.spacing(), array.lambda(), options_.pmusic);
  }
  streams_.resize(arrays_.size());
  stream_reports_.resize(arrays_.size(), 0);
  // Record which kernel path will serve this pipeline's fixes (gauge
  // dwatch_simd_backend + one simd.dispatch event; no-op with obs off).
  linalg::simd::publish_backend();
  const std::size_t workers =
      options_.num_workers == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : options_.num_workers;
  if (workers > 1) {
    pool_ = std::make_shared<ThreadPool>(workers);
    localizer_.set_thread_pool(pool_);
  }
}

void DWatchPipeline::set_brownout(const BrownoutProfile& profile) {
  brownout_ = profile;
  if (brownout_.grid_stride < 1) brownout_.grid_stride = 1;
  localizer_.set_grid_stride(brownout_.grid_stride);
  // Effective rank: 0 in the profile keeps the configured rank; both
  // set -> the smaller (coarser, cheaper) one wins. Clearing the
  // profile therefore restores the configured value exactly.
  const std::size_t configured = options_.pmusic.music.max_signal_rank;
  std::size_t effective = configured;
  if (brownout_.max_signal_rank > 0) {
    effective = configured == 0
                    ? brownout_.max_signal_rank
                    : std::min(configured, brownout_.max_signal_rank);
  }
  for (auto& estimator : pmusic_) estimator.set_max_signal_rank(effective);
}

void DWatchPipeline::check_array(std::size_t array_idx) const {
  if (array_idx >= arrays_.size()) {
    throw std::out_of_range("DWatchPipeline: bad array index");
  }
}

void DWatchPipeline::set_calibration(std::size_t array_idx,
                                     std::vector<double> offsets) {
  check_array(array_idx);
  if (offsets.size() != arrays_[array_idx].num_elements()) {
    throw std::invalid_argument("set_calibration: offset count mismatch");
  }
  calibration_[array_idx] = std::move(offsets);
}

const std::optional<std::vector<double>>& DWatchPipeline::calibration(
    std::size_t array_idx) const {
  check_array(array_idx);
  return calibration_[array_idx];
}

void DWatchPipeline::clear_baselines(std::size_t array_idx) {
  check_array(array_idx);
  baselines_[array_idx].clear();
  rss_baselines_[array_idx].clear();
}

void DWatchPipeline::set_tag_position(const rfid::Epc96& epc,
                                      rf::Vec2 position) {
  tag_positions_[epc] = position;
}

double DWatchPipeline::phase_health() const noexcept {
  return epoch_.coherence_count == 0
             ? 1.0
             : epoch_.coherence_sum /
                   static_cast<double>(epoch_.coherence_count);
}

bool DWatchPipeline::rss_active() const noexcept {
  if (options_.rss_only.force) return true;
  if (options_.rss_only.auto_health_threshold <= 0.0) return false;
  return epoch_.coherence_count > 0 &&
         phase_health() < options_.rss_only.auto_health_threshold;
}

void DWatchPipeline::accumulate_rss(std::size_t array_idx,
                                    const rfid::Epc96& epc, double coherence,
                                    double online_power) {
  epoch_.coherence_sum += coherence;
  ++epoch_.coherence_count;
  const auto pos = tag_positions_.find(epc);
  if (pos == tag_positions_.end()) return;
  const auto base = rss_baselines_[array_idx].find(epc);
  if (base == rss_baselines_[array_idx].end() || base->second <= 0.0) return;
  const double drop = 1.0 - online_power / base->second;
  if (drop <= 0.0) return;
  epoch_.rss_links.push_back(RssLink{
      .array_idx = array_idx,
      .tag_position = pos->second,
      .drop_fraction = std::min(drop, 1.0),
  });
}

std::vector<std::uint8_t> DWatchPipeline::excluded_flags() const {
  std::vector<std::uint8_t> flags;
  flags.reserve(evidence_.size());
  for (const AngularEvidence& e : evidence_) {
    flags.push_back(e.excluded ? 1 : 0);
  }
  return flags;
}

PipelineState DWatchPipeline::export_state() const {
  PipelineState state;
  state.calibration = calibration_;
  state.baselines = baselines_;
  state.excluded.reserve(evidence_.size());
  for (const AngularEvidence& e : evidence_) {
    state.excluded.push_back(e.excluded ? 1 : 0);
  }
  state.stats = stats_;
  state.watermark_us = epoch_.watermark_us;
  return state;
}

void DWatchPipeline::restore(const PipelineState& state) {
  if (state.calibration.size() != arrays_.size() ||
      state.baselines.size() != arrays_.size() ||
      state.excluded.size() != arrays_.size()) {
    throw std::invalid_argument("restore: array count mismatch");
  }
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    if (state.calibration[a] &&
        state.calibration[a]->size() != arrays_[a].num_elements()) {
      throw std::invalid_argument("restore: calibration size mismatch");
    }
  }
  calibration_ = state.calibration;
  baselines_ = state.baselines;
  // The RSS fallback's references are not checkpointed (frozen DWCP v1
  // layout): drop any in-memory remnants so a restored pipeline never
  // pairs old link powers with the reinstalled spectral baselines. The
  // phase path is bit-identical; RSS re-arms on the next re-baseline.
  rss_baselines_.assign(arrays_.size(), {});
  tag_positions_.clear();
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    evidence_[a].drops.clear();
    evidence_[a].excluded = state.excluded[a] != 0;
  }
  stats_ = state.stats;
  epoch_ = EpochState{};
  epoch_.watermark_us = state.watermark_us;
  max_seen_us_ = state.watermark_us;
  // Streaming state is in-memory only (the DWCP v1 layout is frozen):
  // drop accumulated covariances and tracked bases; trackers rebuild
  // from the dense oracle on the first post-restore observation.
  for (auto& per_array : streams_) per_array.clear();
  std::fill(stream_reports_.begin(), stream_reports_.end(), 0);
  last_estimate_ = LocationEstimate{};
  stable_checks_ = 0;
  converged_ = false;
}

AngularSpectrum DWatchPipeline::compute_omega(
    std::size_t array_idx, const linalg::CMatrix& snapshots) const {
  const auto& array = arrays_[array_idx];
  if (snapshots.rows() != array.num_elements()) {
    throw std::invalid_argument("DWatchPipeline: snapshot row mismatch");
  }
  linalg::CMatrix x = snapshots;
  if (calibration_[array_idx]) {
    apply_phase_correction(x, *calibration_[array_idx]);
  }
  return pmusic_[array_idx].estimate(x).omega;
}

AngularSpectrum DWatchPipeline::compute_online_power(
    std::size_t array_idx, const linalg::CMatrix& snapshots) const {
  const auto& array = arrays_[array_idx];
  if (snapshots.rows() != array.num_elements()) {
    throw std::invalid_argument("DWatchPipeline: snapshot row mismatch");
  }
  linalg::CMatrix x = snapshots;
  if (calibration_[array_idx]) {
    apply_phase_correction(x, *calibration_[array_idx]);
  }
  return pmusic_[array_idx].power_spectrum(sample_correlation(x));
}

void DWatchPipeline::add_baseline(std::size_t array_idx,
                                  const rfid::Epc96& epc,
                                  const linalg::CMatrix& snapshots) {
  check_array(array_idx);
  auto [it, inserted] = baselines_[array_idx].insert_or_assign(
      epc, compute_omega(array_idx, snapshots));
  if (inserted) ++stats_.baselines;
  // Calibration is phase-only, so the uncorrected magnitudes double as
  // the RSS fallback's per-link reference power.
  rss_baselines_[array_idx].insert_or_assign(epc, mean_power(snapshots));
}

void DWatchPipeline::add_baseline(std::size_t array_idx,
                                  const rfid::TagObservation& obs) {
  check_array(array_idx);
  add_baseline(array_idx, obs.epc,
               observation_to_snapshots(
                   obs, arrays_[array_idx].num_elements()));
}

void DWatchPipeline::begin_epoch(std::uint64_t watermark_us) {
  for (auto& e : evidence_) e.drops.clear();  // health flags persist
  // Default watermark: carry the highest timestamp accepted so far. A
  // caller that never supplies watermarks (0) used to run with stale
  // rejection silently disabled — the `watermark_us > 0` guard in the
  // staleness gate never fired — so retransmissions of a previous
  // epoch's reports polluted the new epoch. Explicit watermarks (the
  // serving layer's widen-epoch path keeps the FIRST one) still win.
  if (watermark_us == 0 && options_.degraded.reject_stale) {
    watermark_us = max_seen_us_;
  }
  epoch_ = EpochState{};
  epoch_.watermark_us = watermark_us;
  // Streaming per-epoch state: covariances restart (the epoch is the
  // averaging window); trackers keep their basis across epochs — the
  // warm start is the point of tracking.
  if (options_.streaming.enabled) {
    for (auto& per_array : streams_) {
      for (auto& [epc, stream] : per_array) stream.cov.reset();
    }
  }
  std::fill(stream_reports_.begin(), stream_reports_.end(), 0);
  last_estimate_ = LocationEstimate{};
  stable_checks_ = 0;
  converged_ = false;
  ++stats_.epochs;
  if (obs::enabled()) PipelineCounters::get().epochs.inc();
}

void DWatchPipeline::set_array_health(std::size_t array_idx, bool healthy) {
  check_array(array_idx);
  const bool was_excluded = evidence_[array_idx].excluded;
  evidence_[array_idx].excluded = !healthy;
  // K-of-N exclusion changes are rare, discrete and operationally
  // important — exactly what the event log is for.
  if (obs::enabled() && was_excluded == healthy) {
    obs::EventLog::global().emit(
        obs::Event(healthy ? "pipeline.array_restored"
                           : "pipeline.array_excluded")
            .field("array", array_idx)
            .field("arrays_total", arrays_.size()));
  }
}

bool DWatchPipeline::array_healthy(std::size_t array_idx) const {
  check_array(array_idx);
  return !evidence_[array_idx].excluded;
}

void DWatchPipeline::note_transport(std::size_t retries,
                                    std::size_t timeouts) {
  epoch_.transport_retries += retries;
  epoch_.transport_timeouts += timeouts;
  stats_.transport_retries += retries;
  stats_.transport_timeouts += timeouts;
  if (obs::enabled()) {
    PipelineCounters::get().transport_retries.inc(retries);
    PipelineCounters::get().transport_timeouts.inc(timeouts);
  }
}

void DWatchPipeline::note_reports_dropped(std::size_t count) {
  epoch_.reports_dropped += count;
  stats_.reports_dropped += count;
  if (obs::enabled()) PipelineCounters::get().reports_dropped.inc(count);
}

std::vector<PathDrop> DWatchPipeline::detect_drops(
    std::size_t array_idx, const rfid::Epc96& epc,
    const AngularSpectrum& baseline, const linalg::CMatrix& snapshots) const {
  // Baseline peak positions come from the P-MUSIC spectrum; the ONLINE
  // power at those positions is read from the beamforming power spectrum
  // PB, which is free of MUSIC's model-order jitter (a vanished weak
  // MUSIC peak must not masquerade as a physical power drop). At a peak
  // the two spectra share the same scale: Omega = PB * Nor(B) with
  // Nor(B) == 1 there.
  const AngularSpectrum online_power =
      compute_online_power(array_idx, snapshots);
  std::vector<PathDrop> drops = detector_.detect(baseline, online_power);
  // Degraded mode: a spectrum computed from too few snapshots carries a
  // less trustworthy peak angle — widen its localization kernel.
  const bool low_snapshots =
      snapshots.cols() < options_.degraded.min_snapshots;
  for (PathDrop& d : drops) {
    d.source_id = epc.serial();
    if (low_snapshots) d.sigma_scale = options_.degraded.sigma_widen;
  }
  return drops;
}

std::vector<PathDrop> DWatchPipeline::detect_drops_streaming(
    std::size_t array_idx, const rfid::Epc96& epc,
    const AngularSpectrum& baseline, const linalg::CMatrix& snapshots) {
  DWATCH_SPAN("pipeline.streaming_observe");
  const auto& array = arrays_[array_idx];
  if (snapshots.rows() != array.num_elements()) {
    throw std::invalid_argument("DWatchPipeline: snapshot row mismatch");
  }
  linalg::CMatrix x = snapshots;
  if (calibration_[array_idx]) {
    apply_phase_correction(x, *calibration_[array_idx]);
  }

  const std::size_t m = array.num_elements();
  auto [it, inserted] = streams_[array_idx].try_emplace(
      epc, StreamState{IncrementalCovariance(m),
                       SubspaceTracker(options_.streaming.tracker)});
  StreamState& stream = it->second;
  stream.cov.accumulate(x);
  ++stream_reports_[array_idx];
  streaming_stats_.rank1_updates += x.cols();

  // The EPOCH-accumulated correlation, not this report's: every new
  // report sharpens the spectrum instead of standing alone, which is
  // why the drops below REPLACE the tag's earlier evidence.
  const linalg::CMatrix r = stream.cov.correlation();
  // Mirror the batch smoothing choice (music.cpp): subarray 0 resolves
  // to the default; L == M skips the smoother.
  std::size_t l = options_.pmusic.music.subarray;
  if (l == 0) l = default_subarray(m);
  const linalg::CMatrix smoothed = l == m ? r : forward_backward_smooth(r, l);
  const SubspaceUpdateResult upd = stream.tracker.update(smoothed);
  if (upd.reset) ++streaming_stats_.tracker_resets;

  // Full Omega = PB(R) * Nor(B) from the TRACKED basis — no dense EVD
  // on the warm path. This is the streamed spectral product (parity
  // contract vs the batch EVD lives in the tracker tests).
  PMusicResult pm = pmusic_[array_idx].compose(
      r, pmusic_[array_idx].music().estimate_from_subspace(
             stream.tracker.subspace(), stream.tracker.eigenvalues(),
             stream.tracker.trace(), stream.cov.num_snapshots()));
  ++streaming_stats_.streamed_spectra;

  // Drop detection mirrors the batch contract EXACTLY: the online
  // power at the baseline peaks is read from the beamforming spectrum
  // PB, never from Omega. Nor(B) < 1 wherever the ONLINE MUSIC peaks
  // have shifted away from a baseline peak, so reading Omega there
  // manufactures phantom drops out of model-order jitter — with thin
  // evidence (few tags) those phantoms outvote the real drops and the
  // likelihood argmax pins at the grid edge.
  std::vector<PathDrop> drops = detector_.detect(baseline, pm.power);
  // Degraded widening keys on the ACCUMULATED snapshot count: once the
  // epoch has gathered enough columns for this tag, its angle is as
  // trustworthy as a batch spectrum over the same data.
  const bool low_snapshots =
      stream.cov.num_snapshots() < options_.degraded.min_snapshots;
  for (PathDrop& d : drops) {
    d.source_id = epc.serial();
    if (low_snapshots) d.sigma_scale = options_.degraded.sigma_widen;
  }
  return drops;
}

void DWatchPipeline::check_convergence() {
  if (!options_.streaming.early_seal || converged_) return;
  // Every healthy array must have (a) contributed min_reports streamed
  // observations and (b) at least one drop on file. One array's
  // evidence alone gives a likelihood ridge whose argmax can pin
  // spuriously, and an array that has BARELY reported can stabilize a
  // partial-evidence ghost (collinear deployments are the worst case:
  // the mirror ambiguity only resolves with the late array's tags).
  for (std::size_t a = 0; a < evidence_.size(); ++a) {
    if (evidence_[a].excluded) continue;
    if (stream_reports_[a] < options_.streaming.min_reports) return;
    if (evidence_[a].drops.empty()) return;
  }
  ++streaming_stats_.convergence_checks;
  // The stability probe runs on a COARSE grid (see StreamingOptions):
  // only the seal-time fix needs full resolution. Never undercut an
  // active brownout stride.
  const std::size_t prev_stride = localizer_.grid_stride();
  localizer_.set_grid_stride(std::max<std::size_t>(
      {1, prev_stride, options_.streaming.convergence_grid_stride}));
  const LocationEstimate est = localize_best_effort();
  localizer_.set_grid_stride(prev_stride);
  if (!est.valid) {
    stable_checks_ = 0;
    last_estimate_ = est;
    return;
  }
  bool stable = false;
  if (last_estimate_.valid) {
    const double dx = est.position.x - last_estimate_.position.x;
    const double dy = est.position.y - last_estimate_.position.y;
    const double denom = std::max(std::abs(last_estimate_.likelihood), 1e-12);
    const double rel =
        std::abs(est.likelihood - last_estimate_.likelihood) / denom;
    stable = std::sqrt(dx * dx + dy * dy) <=
                 options_.streaming.position_tolerance_m &&
             rel <= options_.streaming.likelihood_tolerance;
  }
  stable_checks_ = stable ? stable_checks_ + 1 : 0;
  last_estimate_ = est;
  if (stable_checks_ >= options_.streaming.convergence_window) {
    converged_ = true;
    ++streaming_stats_.early_seals;
    if (obs::enabled()) {
      obs::EventLog::global().emit(
          obs::Event("pipeline.early_seal")
              .field("observations", epoch_.observations)
              .field("x", est.position.x)
              .field("y", est.position.y)
              .field("likelihood", est.likelihood));
    }
  }
}

std::size_t DWatchPipeline::observe(std::size_t array_idx,
                                    const rfid::Epc96& epc,
                                    const linalg::CMatrix& snapshots) {
  DWATCH_SPAN("pipeline.observe");
  check_array(array_idx);
  const auto it = baselines_[array_idx].find(epc);
  if (it == baselines_[array_idx].end()) {
    ++stats_.observations_skipped;
    ++epoch_.observations_skipped;
    if (obs::enabled()) PipelineCounters::get().observations_skipped.inc();
    return 0;
  }
  ++stats_.observations;
  ++epoch_.observations;
  if (obs::enabled()) PipelineCounters::get().observations.inc();
  if (snapshots.cols() < options_.degraded.min_snapshots) {
    ++stats_.low_snapshot_observations;
    ++epoch_.low_snapshot_observations;
    if (obs::enabled()) {
      PipelineCounters::get().low_snapshot_observations.inc();
    }
  }
  accumulate_rss(array_idx, epc, phase_coherence(snapshots),
                 mean_power(snapshots));
  const bool streaming = options_.streaming.enabled;
  if (streaming && converged_) {
    ++streaming_stats_.post_convergence_observations;
  }
  std::vector<PathDrop> drops =
      streaming ? detect_drops_streaming(array_idx, epc, it->second, snapshots)
                : detect_drops(array_idx, epc, it->second, snapshots);
  stats_.drops_detected += drops.size();
  epoch_.drops_detected += drops.size();
  if (obs::enabled()) {
    PipelineCounters::get().drops_detected.inc(drops.size());
  }
  auto& sink = evidence_[array_idx].drops;
  if (streaming) {
    // The streamed spectrum covers ALL of this tag's snapshots so far,
    // so its drops supersede — not add to — the tag's earlier evidence.
    std::erase_if(sink, [&](const PathDrop& d) {
      return d.source_id == epc.serial();
    });
  }
  sink.insert(sink.end(), drops.begin(), drops.end());
  if (streaming) check_convergence();
  return drops.size();
}

std::size_t DWatchPipeline::observe_batch(
    std::span<const BatchObservation> batch) {
  DWATCH_SPAN("pipeline.observe_batch");
  for (const BatchObservation& item : batch) check_array(item.array_idx);

  // Deterministic merge order: by array index, then EPC, then input
  // position. The order never depends on worker scheduling, so an
  // epoch's evidence is bit-identical for every num_workers setting.
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&batch](std::size_t a, std::size_t b) {
                     return std::tie(batch[a].array_idx, batch[a].epc) <
                            std::tie(batch[b].array_idx, batch[b].epc);
                   });

  if (options_.streaming.enabled) {
    // The streaming path is stateful per (array, tag) — fanning it out
    // would race on the incremental covariances. Honour the documented
    // "observe() in sorted order" contract by literally running it.
    std::size_t total = 0;
    for (const std::size_t idx : order) {
      const BatchObservation& item = batch[idx];
      total += observe(item.array_idx, item.epc, item.snapshots);
    }
    return total;
  }

  // Fan the spectra out: every slot is written by exactly one task, all
  // shared pipeline state (arrays, calibration, baselines, estimators)
  // is read-only during the scan.
  struct ItemResult {
    bool has_baseline = false;
    std::vector<PathDrop> drops;
    double coherence = 0.0;
    double online_power = 0.0;
  };
  std::vector<ItemResult> results(batch.size());
  const auto process = [&](std::size_t slot) {
    const BatchObservation& item = batch[order[slot]];
    const auto it = baselines_[item.array_idx].find(item.epc);
    if (it == baselines_[item.array_idx].end()) return;
    results[slot].has_baseline = true;
    results[slot].coherence = phase_coherence(item.snapshots);
    results[slot].online_power = mean_power(item.snapshots);
    results[slot].drops =
        detect_drops(item.array_idx, item.epc, it->second, item.snapshots);
  };
  if (pool_ && pool_->num_workers() > 1) {
    pool_->parallel_for(batch.size(), process);
  } else {
    for (std::size_t slot = 0; slot < batch.size(); ++slot) process(slot);
  }

  // Serial merge in the sorted order.
  std::size_t total = 0;
  for (std::size_t slot = 0; slot < batch.size(); ++slot) {
    const ItemResult& r = results[slot];
    const BatchObservation& item = batch[order[slot]];
    if (!r.has_baseline) {
      ++stats_.observations_skipped;
      ++epoch_.observations_skipped;
      if (obs::enabled()) PipelineCounters::get().observations_skipped.inc();
      continue;
    }
    ++stats_.observations;
    ++epoch_.observations;
    if (obs::enabled()) PipelineCounters::get().observations.inc();
    if (item.snapshots.cols() < options_.degraded.min_snapshots) {
      ++stats_.low_snapshot_observations;
      ++epoch_.low_snapshot_observations;
      if (obs::enabled()) {
        PipelineCounters::get().low_snapshot_observations.inc();
      }
    }
    // Same call site the serial observe() loop hits, in the same sorted
    // order, so RSS links and phase health are bit-identical too.
    accumulate_rss(item.array_idx, item.epc, r.coherence, r.online_power);
    stats_.drops_detected += r.drops.size();
    epoch_.drops_detected += r.drops.size();
    if (obs::enabled()) {
      PipelineCounters::get().drops_detected.inc(r.drops.size());
    }
    auto& sink = evidence_[item.array_idx].drops;
    sink.insert(sink.end(), r.drops.begin(), r.drops.end());
    total += r.drops.size();
  }
  return total;
}

std::size_t DWatchPipeline::observe(std::size_t array_idx,
                                    const rfid::TagObservation& obs) {
  check_array(array_idx);
  // Staleness gate: a retransmission of a pre-epoch observation must
  // not pollute this epoch's evidence (quarantined, counted, no abort).
  if (options_.degraded.reject_stale && epoch_.watermark_us > 0 &&
      obs.first_seen_us < epoch_.watermark_us) {
    ++stats_.stale_observations;
    ++epoch_.stale_observations;
    if (dwatch::obs::enabled()) {
      PipelineCounters::get().stale_observations.inc();
      dwatch::obs::EventLog::global().emit(
          dwatch::obs::Event("pipeline.stale_observation")
              .field("array", array_idx)
              .field_bytes("epc", obs.epc.bytes())
              .field("first_seen_us", obs.first_seen_us)
              .field("watermark_us", epoch_.watermark_us));
    }
    return 0;
  }
  // Track the frontier of accepted timestamps: begin_epoch(0) carries
  // it forward as the next epoch's default watermark.
  if (obs.first_seen_us > max_seen_us_) max_seen_us_ = obs.first_seen_us;
  linalg::CMatrix snapshots;
  try {
    snapshots =
        observation_to_snapshots(obs, arrays_[array_idx].num_elements());
  } catch (const std::invalid_argument&) {
    // No complete inventory round survived (dead element, sample loss):
    // quarantine the observation instead of aborting the epoch.
    ++stats_.malformed_observations;
    ++epoch_.malformed_observations;
    if (dwatch::obs::enabled()) {
      PipelineCounters::get().malformed_observations.inc();
      dwatch::obs::EventLog::global().emit(
          dwatch::obs::Event("pipeline.malformed_observation")
              .field("array", array_idx)
              .field_bytes("epc", obs.epc.bytes())
              .field("samples", obs.samples.size()));
    }
    return 0;
  }
  return observe(array_idx, obs.epc, snapshots);
}

std::vector<AngularEvidence> DWatchPipeline::filtered_evidence() const {
  if (!options_.ghost_filtering) return evidence_;
  // How many USABLE arrays each tag dropped at. An excluded array's
  // drops never reach localization, so they must not vote here either:
  // counting them would let a dead array's garbage flip `multi_array`
  // and make the filter reject a healthy array's only (uncorroborated)
  // drop — exactly the K-of-N epochs where every drop matters.
  std::map<std::uint32_t, std::size_t> arrays_per_tag;
  for (const auto& e : evidence_) {
    if (e.excluded) continue;
    std::set<std::uint32_t> tags_here;
    for (const PathDrop& d : e.drops) tags_here.insert(d.source_id);
    for (const std::uint32_t t : tags_here) ++arrays_per_tag[t];
  }
  const double tol = 2.0 * options_.localizer.kernel_sigma;
  std::vector<AngularEvidence> out(evidence_.size());
  for (std::size_t a = 0; a < evidence_.size(); ++a) {
    out[a].excluded = evidence_[a].excluded;
    const auto& drops = evidence_[a].drops;
    for (const PathDrop& d : drops) {
      const bool multi_array = arrays_per_tag[d.source_id] >= 2;
      bool corroborated = false;
      for (const PathDrop& other : drops) {
        if (other.source_id != d.source_id &&
            std::abs(other.theta - d.theta) <= tol) {
          corroborated = true;
          break;
        }
      }
      if (multi_array && !corroborated) {
        // Section 4.3 outlier rejection fired: record WHICH angle was
        // thrown away and why, the evidence the paper's accuracy
        // argument rests on. filtered_evidence() runs once per
        // localize/triangulate call, so repeated fixes over one epoch
        // re-emit their rejections (each fix really did reject them).
        if (obs::enabled()) {
          obs::EventLog::global().emit(
              obs::Event("pipeline.ghost_rejected")
                  .field("array", a)
                  .field("theta_rad", d.theta)
                  .field("tag_serial", d.source_id)
                  .field("baseline_power", d.baseline_power)
                  .field("online_power", d.online_power));
        }
        continue;  // wrong-angle ghost
      }
      out[a].drops.push_back(d);
    }
  }
  return out;
}

LocationEstimate DWatchPipeline::localize() const {
  if (rss_active()) {
    return rss_localizer_.localize(epoch_.rss_links, excluded_flags());
  }
  return localizer_.localize(filtered_evidence());
}

ConfidenceReport DWatchPipeline::confidence_report() const {
  ConfidenceReport r;
  r.arrays_total = arrays_.size();
  for (const AngularEvidence& e : evidence_) {
    if (e.excluded) {
      ++r.arrays_excluded;
    } else if (!e.drops.empty()) {
      ++r.arrays_with_evidence;
    }
  }
  r.observations = epoch_.observations;
  r.observations_skipped = epoch_.observations_skipped;
  r.stale_observations = epoch_.stale_observations;
  r.low_snapshot_observations = epoch_.low_snapshot_observations;
  r.malformed_observations = epoch_.malformed_observations;
  r.drops_detected = epoch_.drops_detected;
  r.reports_dropped = epoch_.reports_dropped;
  r.transport_retries = epoch_.transport_retries;
  r.transport_timeouts = epoch_.transport_timeouts;
  r.rss_mode = rss_active();
  r.phase_health = phase_health();
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.gauge("dwatch_pipeline_arrays_excluded")
        .set(static_cast<double>(r.arrays_excluded));
    reg.gauge("dwatch_pipeline_arrays_with_evidence")
        .set(static_cast<double>(r.arrays_with_evidence));
  }
  return r;
}

ConfidentEstimate DWatchPipeline::localize_with_confidence(
    bool best_effort) const {
  ConfidentEstimate out;
  out.estimate = best_effort ? localize_best_effort() : localize();
  out.confidence = confidence_report();
  if (obs::enabled()) {
    const ConfidenceReport& c = out.confidence;
    obs::EventLog::global().emit(
        obs::Event("pipeline.confidence")
            .field("x", out.estimate.position.x)
            .field("y", out.estimate.position.y)
            .field("valid", out.estimate.valid)
            .field("consensus", out.estimate.consensus)
            .field("arrays_total", c.arrays_total)
            .field("arrays_with_evidence", c.arrays_with_evidence)
            .field("arrays_excluded", c.arrays_excluded)
            .field("observations", c.observations)
            .field("observations_skipped", c.observations_skipped)
            .field("stale_observations", c.stale_observations)
            .field("low_snapshot_observations", c.low_snapshot_observations)
            .field("malformed_observations", c.malformed_observations)
            .field("drops_detected", c.drops_detected)
            .field("reports_dropped", c.reports_dropped)
            .field("transport_retries", c.transport_retries)
            .field("transport_timeouts", c.transport_timeouts)
            .field("rss_mode", c.rss_mode)
            .field("phase_health", c.phase_health)
            .field("degraded", c.degraded()));
  }
  return out;
}

LocationEstimate DWatchPipeline::localize_best_effort() const {
  if (rss_active()) {
    return rss_localizer_.localize_best_effort(epoch_.rss_links,
                                               excluded_flags());
  }
  return localizer_.localize_best_effort(filtered_evidence());
}

std::vector<LocationEstimate> DWatchPipeline::localize_multi(
    std::size_t max_targets, double min_separation,
    double relative_floor) const {
  if (rss_active()) {
    return rss_localizer_.localize_multi(epoch_.rss_links, excluded_flags(),
                                         max_targets, min_separation,
                                         relative_floor);
  }
  return localizer_.localize_multi(filtered_evidence(), max_targets,
                                   min_separation, relative_floor);
}

TriangulationResult DWatchPipeline::triangulate(double cluster_radius) const {
  TriangulationOptions opts;
  opts.bounds = localizer_.bounds();
  opts.cluster_radius = cluster_radius;
  return triangulate_with_outlier_rejection(arrays_, filtered_evidence(),
                                            opts);
}

LikelihoodGrid DWatchPipeline::likelihood_grid() const {
  if (rss_active()) {
    return rss_localizer_.likelihood_grid(epoch_.rss_links,
                                          excluded_flags());
  }
  return localizer_.likelihood_grid(filtered_evidence());
}

const AngularSpectrum* DWatchPipeline::baseline_spectrum(
    std::size_t array_idx, const rfid::Epc96& epc) const {
  check_array(array_idx);
  const auto it = baselines_[array_idx].find(epc);
  return it == baselines_[array_idx].end() ? nullptr : &it->second;
}

}  // namespace dwatch::core
