// Angular spectra: sampled functions over theta in [0, pi] plus peak
// machinery shared by MUSIC, P-MUSIC and the change detector.
#pragma once

#include <cstddef>
#include <vector>

#include "rf/constants.hpp"

namespace dwatch::core {

/// A spectrum sampled uniformly over [0, pi] (inclusive endpoints).
class AngularSpectrum {
 public:
  /// Zero spectrum with `num_points` samples (>= 2).
  explicit AngularSpectrum(std::size_t num_points = kDefaultPoints);

  /// Wrap existing sample values (size >= 2) spanning [0, pi].
  explicit AngularSpectrum(std::vector<double> values);

  static constexpr std::size_t kDefaultPoints = 361;  ///< 0.5 deg grid

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] double theta_at(std::size_t i) const noexcept {
    return rf::kPi * static_cast<double>(i) /
           static_cast<double>(values_.size() - 1);
  }
  [[nodiscard]] double& operator[](std::size_t i) noexcept {
    return values_[i];
  }
  [[nodiscard]] double operator[](std::size_t i) const noexcept {
    return values_[i];
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// Linear interpolation at an arbitrary theta (clamped to [0, pi]).
  [[nodiscard]] double value_at(double theta) const noexcept;

  /// Index of the sample nearest to theta (clamped).
  [[nodiscard]] std::size_t index_of(double theta) const noexcept;

  [[nodiscard]] double max_value() const noexcept;
  [[nodiscard]] double min_value() const noexcept;

  AngularSpectrum& operator*=(double s) noexcept;

 private:
  std::vector<double> values_;
};

/// One detected spectrum peak.
struct Peak {
  double theta = 0.0;   ///< refined angle [rad]
  double value = 0.0;   ///< spectrum value at the peak
  std::size_t index = 0;  ///< grid index of the local maximum
};

/// Peak detection options.
struct PeakOptions {
  /// Keep only peaks whose value is >= this fraction of the global max.
  double min_relative_height = 0.05;
  /// Maximum number of peaks returned (strongest first); 0 = unlimited.
  std::size_t max_peaks = 0;
  /// Minimum angular separation between reported peaks [rad].
  double min_separation = rf::deg2rad(3.0);
};

/// Local maxima of `spectrum`, strongest first, with 3-point parabolic
/// refinement of the angle.
[[nodiscard]] std::vector<Peak> find_peaks(const AngularSpectrum& spectrum,
                                           const PeakOptions& options = {});

/// The P-MUSIC normalization Nor(B): rescales the spectrum so EVERY peak
/// has height exactly 1 (paper Section 4.2) — peak positions and shapes
/// are kept, amplitudes (which are pseudo-probabilities for MUSIC) are
/// discarded. Each inter-peak valley bounds a region that is divided by
/// its own peak value; a peakless spectrum is divided by its max.
[[nodiscard]] AngularSpectrum normalize_peaks(const AngularSpectrum& spectrum,
                                              const PeakOptions& options = {});

}  // namespace dwatch::core
