// Sample correlation matrices and spatial smoothing.
//
// Backscatter multipath is COHERENT (all paths carry the same tag
// symbol), so the source covariance is rank-1 and plain MUSIC cannot
// resolve individual paths. The paper adopts spatial smoothing (Shan,
// Wax & Kailath 1985) to restore rank; we implement forward-backward
// smoothing: average the covariances of overlapping subarrays and their
// conjugate-flipped counterparts.
#pragma once

#include <cstddef>

#include "linalg/complex_matrix.hpp"

namespace dwatch::core {

/// Sample correlation R = X X^H / N from an M x N snapshot matrix.
/// Throws std::invalid_argument on an empty matrix.
[[nodiscard]] linalg::CMatrix sample_correlation(const linalg::CMatrix& x);

/// Forward-only spatial smoothing: average the (M - L + 1) leading
/// principal L x L submatrices of R. Throws std::invalid_argument unless
/// 2 <= L <= M.
[[nodiscard]] linalg::CMatrix forward_smooth(const linalg::CMatrix& r,
                                             std::size_t subarray);

/// Forward-backward spatial smoothing: forward smoothing averaged with
/// the exchange-conjugated version (J R* J), doubling the effective
/// subarray count and decorrelating up to ~2(M-L+1) coherent sources.
[[nodiscard]] linalg::CMatrix forward_backward_smooth(const linalg::CMatrix& r,
                                                      std::size_t subarray);

/// Default subarray size for M elements: enough subarrays to decorrelate
/// the <= 5 dominant indoor paths while keeping aperture (paper §4.1).
/// Edge contract (tested in tests/core/covariance_test.cpp): M >= 3
/// returns a smoothable L in [2, M]; M == 2 returns 2 == M, which the
/// MUSIC path treats as "no smoothing" (L == M skips the smoother, so
/// forward_smooth's L >= 2 requirement is never violated); M == 1
/// returns 1, which forward_smooth — and every spectral consumer —
/// REJECTS by throwing: a single element has no angular aperture.
/// DWatchPipeline enforces M >= 2 per array at construction for this
/// reason.
[[nodiscard]] std::size_t default_subarray(std::size_t num_elements) noexcept;

}  // namespace dwatch::core
