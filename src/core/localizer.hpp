// Likelihood localization (paper Section 4.3).
//
// Each array i contributes an angular evidence function
//   dOmega_i(theta) = sum over detected drops of
//                     drop_fraction * gaussian(theta - theta_drop)
// and the target likelihood at a candidate position O is
//   L(O) = prod_i (epsilon + dOmega_i(theta_i(O)))            (Eq. 15)
// maximized over a grid (5x5 cm rooms, 2x2 cm table) either exhaustively
// or with the paper's multi-start hill climbing. "Wrong angles" from
// pre-reflection blockage simply fail to accumulate consensus across
// readers; an explicit ray-triangulation outlier rejector is provided in
// triangulate.hpp for the paper's single-target argument.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/change_detector.hpp"
#include "core/thread_pool.hpp"
#include "rf/array.hpp"
#include "rf/geometry.hpp"

namespace dwatch::core {

/// The drops one array detected during an epoch (aggregated over all its
/// tags' spectra).
struct AngularEvidence {
  std::vector<PathDrop> drops;
  /// Degraded mode: this array's evidence is unusable (reader lost,
  /// reports flagged stale). An excluded array contributes nothing to
  /// the likelihood product AND does not count toward min_arrays — the
  /// K-of-N semantics that keep 3 healthy arrays localizing when the
  /// 4th dies, instead of the whole fix aborting.
  bool excluded = false;

  [[nodiscard]] bool empty() const noexcept { return drops.empty(); }
  /// Usable for localization: present and not excluded.
  [[nodiscard]] bool usable() const noexcept {
    return !excluded && !drops.empty();
  }
};

/// Rectangular search region.
struct SearchBounds {
  rf::Vec2 min;
  rf::Vec2 max;

  [[nodiscard]] bool contains(rf::Vec2 p) const noexcept {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
};

struct LocalizerOptions {
  /// Grid step [m] (paper: 0.05 for rooms, 0.02 for the table).
  double grid_step = 0.05;
  /// Angular kernel sigma for evidence smoothing [rad].
  double kernel_sigma = rf::deg2rad(5.0);
  /// Exponent on the normalized ABSOLUTE power drop used as a drop's
  /// evidence weight (paper Eq. 15 uses the spectrum CHANGE, not the
  /// fractional change): direct-path drops carry far more power than
  /// reflection-path drops, which suppresses mirror-image ghosts from
  /// pre-reflection blockage. 0.5 compresses the dynamic range.
  double power_exponent = 1.0;
  /// Likelihood floor per reader so a silent reader attenuates rather
  /// than annihilates (deadzone handling).
  double epsilon = 0.12;
  /// Minimum number of arrays with evidence for a valid fix.
  std::size_t min_arrays = 2;
  /// A candidate peak only counts an array as SUPPORTING it when that
  /// array's evidence at the candidate's bearing is at least this
  /// (normalized) value; candidates supported by fewer than min_arrays
  /// arrays are rejected — the paper's outlier rejection applied to the
  /// likelihood search (wrong-angle rays rarely agree at two readers).
  double consensus_floor = 0.3;
  /// Use multi-start hill climbing instead of exhaustive grid search.
  bool hill_climbing = false;
  std::size_t hill_climb_starts = 16;
};

struct LocationEstimate {
  rf::Vec2 position;
  double likelihood = 0.0;
  /// Number of arrays whose evidence supports this position.
  std::size_t consensus = 0;
  bool valid = false;  ///< false => not covered (deadzone / < min arrays)
};

/// Dense likelihood map (for the paper's Fig. 19 heatmaps).
struct LikelihoodGrid {
  rf::Vec2 origin;
  double step = 0.0;
  std::size_t nx = 0;
  std::size_t ny = 0;
  std::vector<double> values;  ///< row-major, y-major rows

  [[nodiscard]] double at(std::size_t ix, std::size_t iy) const {
    return values.at(iy * nx + ix);
  }
  [[nodiscard]] rf::Vec2 point(std::size_t ix, std::size_t iy) const {
    return {origin.x + step * static_cast<double>(ix),
            origin.y + step * static_cast<double>(iy)};
  }
};

/// Likelihood localizer over a fixed set of arrays.
class Localizer {
 public:
  /// `arrays` must outlive the localizer? No — copied. Throws
  /// std::invalid_argument on empty arrays or degenerate bounds.
  Localizer(std::vector<rf::UniformLinearArray> arrays, SearchBounds bounds,
            LocalizerOptions options = {});

  [[nodiscard]] const LocalizerOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const SearchBounds& bounds() const noexcept { return bounds_; }
  [[nodiscard]] std::size_t num_arrays() const noexcept {
    return arrays_.size();
  }

  /// Largest absolute power drop across ALL evidence (the weight
  /// normalizer); 0 when there are no drops.
  [[nodiscard]] static double global_drop_norm(
      std::span<const AngularEvidence> evidence);

  /// Evidence value dOmega_i(theta) for array i; `norm` is the global
  /// drop normalizer from global_drop_norm().
  [[nodiscard]] double evidence_at(const AngularEvidence& evidence,
                                   double theta, double norm) const;

  /// L(O) for a candidate point (evidence indexed like the arrays;
  /// throws std::invalid_argument on count mismatch). Recomputes the
  /// global drop norm; search loops use the `norm` overload below so the
  /// O(total drops) scan runs once per search, not once per probe.
  [[nodiscard]] double likelihood_at(
      rf::Vec2 point, std::span<const AngularEvidence> evidence) const;

  /// L(O) with the global drop norm already computed (the hot-path
  /// variant probed by hill climbing and grid search).
  [[nodiscard]] double likelihood_at(rf::Vec2 point,
                                     std::span<const AngularEvidence> evidence,
                                     double norm) const;

  /// Attach a worker pool; likelihood_grid() then computes its rows in
  /// parallel. Results are bit-identical with or without a pool (rows
  /// are independent and write disjoint slots). Pass nullptr to go back
  /// to serial.
  void set_thread_pool(std::shared_ptr<ThreadPool> pool) noexcept {
    pool_ = std::move(pool);
  }

  /// Brownout knob: multiply the configured grid_step by `stride`
  /// (clamped up to 1) for every subsequent search — grid, hill climb,
  /// and candidate dedupe all use the widened step, so a stride-2
  /// search costs ~1/4 of the probes. Stride 1 restores the EXACT
  /// construction-time behaviour (effective step is computed as
  /// step * stride, so stride 1 is bit-identical, not merely close).
  void set_grid_stride(std::size_t stride) noexcept {
    grid_stride_ = stride < 1 ? 1 : stride;
  }
  [[nodiscard]] std::size_t grid_stride() const noexcept {
    return grid_stride_;
  }
  /// options().grid_step * grid_stride() — the step every search uses.
  [[nodiscard]] double effective_grid_step() const noexcept;

  /// Strict total order on candidates: likelihood descending, ties
  /// broken by position (y ascending, then x ascending — the grid's
  /// own scan order, so tied ridge peaks resolve exactly as the
  /// exhaustive search always has). Because the tie-break depends only
  /// on the candidate's VALUE, sorting by it is invariant under any
  /// permutation of the input list — the property the localize()
  /// candidate cap needs to be order-independent.
  [[nodiscard]] static bool candidate_order(
      const LocationEstimate& a, const LocationEstimate& b) noexcept;

  /// The maximum candidate under candidate_order(), found by a full
  /// scan — never assumes the list is sorted. Returns a default
  /// (zero-likelihood) estimate for an empty list. Exposed for the
  /// best-effort fallback's unsorted-candidate regression test.
  [[nodiscard]] static LocationEstimate select_max_likelihood(
      std::span<const LocationEstimate> candidates) noexcept;

  /// Consensus selection over an arbitrary candidate list: re-sorts
  /// into candidate_order(), caps at kMaxCandidates, scores each
  /// survivor's consensus and picks the highest-consensus (then
  /// highest-likelihood, then position tie-break) candidate. The
  /// result is identical under any permutation of `candidates` —
  /// asserted by the localizer permutation test. `min_arrays` is the
  /// effective (K-of-N adjusted) validity threshold.
  [[nodiscard]] LocationEstimate consensus_select(
      std::vector<LocationEstimate> candidates,
      std::span<const AngularEvidence> evidence, double norm,
      std::size_t min_arrays) const;

  /// Hard cap on how many candidates consensus selection scores per
  /// fix; candidates are ranked by candidate_order() first, so the cap
  /// always keeps the strongest ones regardless of production order.
  static constexpr std::size_t kMaxCandidates = 24;

  /// Best single-target estimate. Invalid (valid == false) when fewer
  /// than min_arrays arrays support any candidate.
  [[nodiscard]] LocationEstimate localize(
      std::span<const AngularEvidence> evidence) const;

  /// Like localize(), but always returns a positioned estimate when any
  /// evidence exists at all: if no candidate reaches consensus, the
  /// highest-likelihood peak is returned with valid == false. This is
  /// the "always report a fix" mode of the paper's Fig. 14 evaluation;
  /// sparse-evidence environments degrade gracefully instead of
  /// abstaining.
  [[nodiscard]] LocationEstimate localize_best_effort(
      std::span<const AngularEvidence> evidence) const;

  /// Up to `max_targets` estimates, local maxima separated by at least
  /// `min_separation` metres and at least `relative_floor` of the best
  /// peak's likelihood (multi-target, paper Section 6.7).
  [[nodiscard]] std::vector<LocationEstimate> localize_multi(
      std::span<const AngularEvidence> evidence, std::size_t max_targets,
      double min_separation = 0.25, double relative_floor = 0.35) const;

  /// Dense likelihood map for visualization.
  [[nodiscard]] LikelihoodGrid likelihood_grid(
      std::span<const AngularEvidence> evidence) const;

 private:
  [[nodiscard]] std::size_t arrays_with_evidence(
      std::span<const AngularEvidence> evidence) const;
  /// min_arrays shrunk to the surviving array count when some arrays
  /// are excluded (K-of-N degraded localization); equals
  /// options().min_arrays when nothing is excluded.
  [[nodiscard]] std::size_t effective_min_arrays(
      std::span<const AngularEvidence> evidence) const;
  [[nodiscard]] bool too_close_to_array(rf::Vec2 point) const;
  /// Number of arrays whose evidence at `point`'s bearing clears the
  /// consensus floor.
  [[nodiscard]] std::size_t consensus_at(
      rf::Vec2 point, std::span<const AngularEvidence> evidence,
      double norm) const;
  /// Local maxima of the likelihood grid. Ordering contract (shared
  /// with hill_climb_candidates): the returned list is sorted by
  /// candidate_order() — strictly ranked even through likelihood ties,
  /// so downstream caps and front() reads are deterministic.
  [[nodiscard]] std::vector<LocationEstimate> grid_candidates(
      std::span<const AngularEvidence> evidence) const;
  /// Multi-start ascent candidates; same candidate_order() contract as
  /// grid_candidates().
  [[nodiscard]] std::vector<LocationEstimate> hill_climb_candidates(
      std::span<const AngularEvidence> evidence, double norm) const;

  std::vector<rf::UniformLinearArray> arrays_;
  SearchBounds bounds_;
  LocalizerOptions options_;
  /// Runtime grid coarsening multiplier (brownout tier 2); 1 = exact
  /// configured resolution.
  std::size_t grid_stride_ = 1;
  /// Precomputed Gaussian kernel reciprocal 1/(2 sigma^2), fixed per
  /// localizer since kernel_sigma is set at construction.
  double inv_2s2_ = 0.0;
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace dwatch::core
