// Root-MUSIC: search-free AoA estimation for uniform linear arrays.
//
// An extension beyond the paper (which sweeps a grid): the MUSIC null
// spectrum along the ULA manifold is a polynomial in z = e^{-j 2pi d/λ
// cos(theta)},
//
//   p(z) = a(z)^H U_N U_N^H a(z),   a(z) = [1, z, ..., z^{L-1}]^T,
//
// whose roots nearest the unit circle are the arrival angles — no grid,
// no resolution limit from the grid step. Useful as a cross-check of the
// grid MUSIC used by the pipeline and as a faster estimator when only
// angles (not the full spectrum) are needed.
#pragma once

#include <cstddef>
#include <vector>

#include "core/covariance.hpp"
#include "core/source_count.hpp"
#include "linalg/complex_matrix.hpp"

namespace dwatch::core {

struct RootMusicOptions {
  /// Spatial-smoothing subarray size (0 = default_subarray(M)).
  std::size_t subarray = 0;
  bool forward_backward = true;
  SourceCountOptions source_count;
};

struct RootMusicResult {
  /// Estimated arrival angles [rad, 0..pi], strongest-fit first (roots
  /// sorted by closeness to the unit circle).
  std::vector<double> angles;
  /// |1 - |z|| of each reported root (fit quality; smaller = better).
  std::vector<double> circle_distances;
  std::size_t num_sources = 0;
};

/// Root-MUSIC estimator for one ULA geometry.
class RootMusicEstimator {
 public:
  /// Throws std::invalid_argument on non-positive spacing/lambda.
  RootMusicEstimator(double spacing, double lambda,
                     RootMusicOptions options = {});

  /// Estimate from an M x N snapshot matrix.
  [[nodiscard]] RootMusicResult estimate(
      const linalg::CMatrix& snapshots) const;

  /// Estimate from a precomputed correlation matrix.
  [[nodiscard]] RootMusicResult estimate_from_correlation(
      const linalg::CMatrix& r, std::size_t num_snapshots) const;

 private:
  double spacing_;
  double lambda_;
  RootMusicOptions options_;
};

}  // namespace dwatch::core
