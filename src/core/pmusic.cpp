#include "core/pmusic.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/steering_cache.hpp"
#include "linalg/simd_kernels.hpp"
#include "obs/trace.hpp"
#include "rf/array.hpp"

namespace dwatch::core {

PMusicEstimator::PMusicEstimator(double spacing, double lambda,
                                 PMusicOptions options)
    : spacing_(spacing),
      lambda_(lambda),
      options_(options),
      music_(spacing, lambda, options.music) {
  if (spacing_ <= 0.0 || lambda_ <= 0.0) {
    throw std::invalid_argument("PMusicEstimator: bad spacing/lambda");
  }
}

AngularSpectrum PMusicEstimator::power_spectrum(
    const linalg::CMatrix& r) const {
  DWATCH_SPAN("pmusic.power");
  if (r.rows() != r.cols() || r.rows() < 2) {
    throw std::invalid_argument("power_spectrum: bad correlation matrix");
  }
  const std::size_t m = r.rows();
  const std::shared_ptr<const SteeringManifold> manifold =
      SteeringCache::instance().get(m, spacing_, lambda_,
                                    options_.music.grid_points);
  // a^H R a / M^2 == E[ |sum_m x_m e^{+j omega}|^2 ] / M^2: the
  // alignment weight e^{+j omega(m,theta)} is conj(a_m), so the sum is
  // a^H x and its mean square is a^H R a. Batched over all grid columns
  // of the cached manifold; vector backends take the bit-identical SoA
  // kernel (delay-and-sum is the hottest kernel in the fix path).
  namespace simd = linalg::simd;
  const std::vector<double> quad =
      simd::active_backend() == simd::Backend::kScalar
          ? linalg::batched_quadratic_form(r, manifold->matrix())
          : simd::batched_quadratic_form(r, manifold->soa());
  AngularSpectrum pb(options_.music.grid_points);
  for (std::size_t i = 0; i < pb.size(); ++i) {
    pb[i] = std::max(quad[i], 0.0) / static_cast<double>(m * m);
  }
  return pb;
}

PMusicResult PMusicEstimator::estimate(
    const linalg::CMatrix& snapshots) const {
  DWATCH_SPAN("pmusic.spectrum");
  return estimate_from_correlation(sample_correlation(snapshots),
                                   snapshots.cols());
}

PMusicResult PMusicEstimator::estimate_from_correlation(
    const linalg::CMatrix& r, std::size_t num_snapshots) const {
  return compose(r, music_.estimate_from_correlation(r, num_snapshots));
}

PMusicResult PMusicEstimator::compose(const linalg::CMatrix& r,
                                      MusicResult music) const {
  PMusicResult result;
  result.music = std::move(music);
  result.power = power_spectrum(r);
  result.music_nor = normalize_peaks(result.music.spectrum, options_.peaks);

  result.omega = AngularSpectrum(options_.music.grid_points);
  for (std::size_t i = 0; i < result.omega.size(); ++i) {
    result.omega[i] = result.power[i] * result.music_nor[i];
  }
  return result;
}

}  // namespace dwatch::core
