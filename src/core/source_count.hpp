// Source-count (model-order) estimation from correlation eigenvalues.
//
// MUSIC needs P, the number of incoming signals, to split eigenvectors
// into signal and noise subspaces. The paper chooses "how many
// eigenvalues are larger than a threshold"; we implement that plus the
// classical MDL and AIC information criteria (Wax & Kailath 1985) as
// alternatives, and use the threshold rule by default to match the paper.
#pragma once

#include <cstddef>
#include <span>

namespace dwatch::core {

enum class SourceCountMethod {
  kThreshold,  ///< eigenvalue > factor * noise floor (paper's rule)
  kMdl,        ///< minimum description length
  kAic,        ///< Akaike information criterion
};

struct SourceCountOptions {
  SourceCountMethod method = SourceCountMethod::kThreshold;
  /// Threshold rule: an eigenvalue is "signal" if it exceeds
  /// `threshold_factor` times the mean of the smallest `noise_tail`
  /// eigenvalues (noise-floor estimate).
  double threshold_factor = 8.0;
  std::size_t noise_tail = 2;
  /// Number of temporal snapshots N (needed by MDL/AIC).
  std::size_t num_snapshots = 16;
  /// Never report more than this many sources (must leave >= 1 noise
  /// eigenvector); 0 = M - 1.
  std::size_t max_sources = 0;
};

/// Estimate P from eigenvalues sorted in DESCENDING order.
/// Throws std::invalid_argument if eigenvalues is empty or unsorted.
[[nodiscard]] std::size_t estimate_source_count(
    std::span<const double> eigenvalues, const SourceCountOptions& options);

}  // namespace dwatch::core
