#include "core/streaming.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "linalg/hermitian_eig.hpp"
#include "linalg/simd_kernels.hpp"

namespace dwatch::core {

namespace {

double frobenius_norm(const linalg::CMatrix& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      sum += std::norm(a(i, j));
    }
  }
  return std::sqrt(sum);
}

double real_trace(const linalg::CMatrix& a) {
  double t = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) t += a(i, i).real();
  return t;
}

/// In-place modified Gram-Schmidt on the columns of `z`. Returns false
/// when a column collapses below the degeneracy floor (the iterate lost
/// rank — the caller falls back to the dense oracle).
bool orthonormalize_columns(linalg::CMatrix& z) {
  constexpr double kDegenerate = 1e-14;
  const std::size_t l = z.rows();
  const std::size_t k = z.cols();
  for (std::size_t q = 0; q < k; ++q) {
    for (std::size_t p = 0; p < q; ++p) {
      linalg::Complex dot{};
      for (std::size_t i = 0; i < l; ++i) {
        dot += std::conj(z(i, p)) * z(i, q);
      }
      for (std::size_t i = 0; i < l; ++i) z(i, q) -= dot * z(i, p);
    }
    double norm = 0.0;
    for (std::size_t i = 0; i < l; ++i) norm += std::norm(z(i, q));
    norm = std::sqrt(norm);
    if (norm < kDegenerate) return false;
    const linalg::Complex inv{1.0 / norm, 0.0};
    for (std::size_t i = 0; i < l; ++i) z(i, q) *= inv;
  }
  return true;
}

}  // namespace

IncrementalCovariance::IncrementalCovariance(std::size_t num_elements)
    : m_(num_elements), sum_(num_elements, num_elements) {
  if (num_elements == 0) {
    throw std::invalid_argument("IncrementalCovariance: M == 0");
  }
}

void IncrementalCovariance::accumulate(const linalg::CMatrix& snapshots) {
  if (snapshots.rows() != m_) {
    throw std::invalid_argument(
        "IncrementalCovariance: snapshot row mismatch");
  }
  if (snapshots.cols() == 0) {
    throw std::invalid_argument("IncrementalCovariance: empty chunk");
  }
  namespace simd = linalg::simd;
  if (simd::active_backend() != simd::Backend::kScalar) {
    simd::accumulate_outer_products(
        linalg::SplitComplexMatrix::from_matrix_transposed(snapshots), sum_);
  } else {
    // Scalar backend: replay the legacy complex-op chain of
    // core::sample_correlation, resuming each (i, j) partial sum from
    // the accumulator (x * conj(w) rounds identically to the SoA
    // kernel's decomposition; see simd_detail.hpp).
    const std::size_t n = snapshots.cols();
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j < m_; ++j) {
        linalg::Complex sum = sum_.at(i, j);
        for (std::size_t k = 0; k < n; ++k) {
          sum += snapshots(i, k) * std::conj(snapshots(j, k));
        }
        sum_.set(i, j, sum);
      }
    }
  }
  num_snapshots_ += snapshots.cols();
}

linalg::CMatrix IncrementalCovariance::correlation() const {
  if (num_snapshots_ == 0) {
    throw std::logic_error(
        "IncrementalCovariance: correlation() before accumulate()");
  }
  const double n_d = static_cast<double>(num_snapshots_);
  linalg::CMatrix r(m_, m_);
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < m_; ++j) {
      r(i, j) = sum_.at(i, j) / n_d;
    }
  }
  return r;
}

void IncrementalCovariance::reset() {
  sum_ = linalg::SplitComplexMatrix(m_, m_);
  num_snapshots_ = 0;
}

SubspaceTracker::SubspaceTracker(SubspaceTrackerOptions options)
    : options_(options) {
  if (options_.rank == 0) {
    throw std::invalid_argument("SubspaceTracker: rank == 0");
  }
  if (!(options_.divergence_tolerance > 0.0)) {
    throw std::invalid_argument(
        "SubspaceTracker: divergence_tolerance must be positive");
  }
}

void SubspaceTracker::dense_reset(const linalg::CMatrix& a, std::size_t k) {
  const linalg::EigenDecomposition eig = linalg::hermitian_eig(a);
  u_ = eig.eigenvectors.block(0, 0, a.rows(), k);
  eigenvalues_.assign(eig.eigenvalues.begin(),
                      eig.eigenvalues.begin() + static_cast<long>(k));
  ++resets_;
  invalidated_ = false;
}

SubspaceUpdateResult SubspaceTracker::update(const linalg::CMatrix& a) {
  if (a.rows() != a.cols() || a.rows() < 2) {
    throw std::invalid_argument("SubspaceTracker: bad correlation matrix");
  }
  const std::size_t l = a.rows();
  const std::size_t k = std::min(options_.rank, l - 1);
  ++updates_;
  trace_ = real_trace(a);

  SubspaceUpdateResult out;
  const bool cold =
      invalidated_ || u_.rows() != l || u_.cols() != k;
  if (!cold) {
    // Warm path: a few rounds of subspace iteration keep the basis
    // locked onto the dominant eigenspace as A drifts between reports.
    linalg::CMatrix u = u_;
    bool degenerate = false;
    for (std::size_t it = 0; it < options_.refine_iterations; ++it) {
      linalg::CMatrix z = a * u;
      if (!orthonormalize_columns(z)) {
        degenerate = true;
        break;
      }
      u = std::move(z);
    }
    if (!degenerate) {
      // Rayleigh-Ritz: rotate the iterate into Ritz vectors so the
      // basis columns pair with descending Ritz values (symmetrized —
      // U^H A U is Hermitian only up to rounding).
      linalg::CMatrix h = (u.hermitian() * a) * u;
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = i; j < k; ++j) {
          const linalg::Complex avg =
              0.5 * (h(i, j) + std::conj(h(j, i)));
          h(i, j) = avg;
          h(j, i) = std::conj(avg);
        }
      }
      const linalg::EigenDecomposition ritz = linalg::hermitian_eig(h);
      u = u * ritz.eigenvectors;

      // Divergence contract: relative Ritz residual against the
      // batch-oracle bound.
      linalg::CMatrix resid = a * u;
      for (std::size_t j = 0; j < k; ++j) {
        const linalg::Complex lambda{ritz.eigenvalues[j], 0.0};
        for (std::size_t i = 0; i < l; ++i) {
          resid(i, j) -= lambda * u(i, j);
        }
      }
      const double a_norm = frobenius_norm(a);
      const double rel =
          a_norm > 0.0 ? frobenius_norm(resid) / a_norm : 0.0;
      if (a_norm > 0.0 && rel <= options_.divergence_tolerance) {
        u_ = std::move(u);
        eigenvalues_ = ritz.eigenvalues;
        out.residual = rel;
        return out;
      }
      out.residual = rel;
    }
  }

  dense_reset(a, k);
  out.reset = true;
  out.residual = 0.0;
  return out;
}

}  // namespace dwatch::core
