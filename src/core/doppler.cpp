#include "core/doppler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "rf/constants.hpp"

namespace dwatch::core {

std::vector<double> unwrap_phases(std::span<const double> wrapped) {
  std::vector<double> out(wrapped.begin(), wrapped.end());
  for (std::size_t i = 1; i < out.size(); ++i) {
    double delta = out[i] - out[i - 1];
    while (delta > rf::kPi) {
      out[i] -= rf::kTwoPi;
      delta = out[i] - out[i - 1];
    }
    while (delta < -rf::kPi) {
      out[i] += rf::kTwoPi;
      delta = out[i] - out[i - 1];
    }
  }
  return out;
}

DopplerEstimate estimate_doppler(std::span<const linalg::Complex> series,
                                 const DopplerOptions& options) {
  if (options.dt <= 0.0 || options.lambda <= 0.0) {
    throw std::invalid_argument("estimate_doppler: bad dt/lambda");
  }
  DopplerEstimate result;
  if (series.size() < 3) return result;

  // Median magnitude for the fade gate.
  std::vector<double> mags;
  mags.reserve(series.size());
  for (const auto& z : series) mags.push_back(std::abs(z));
  std::vector<double> sorted = mags;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median_mag = sorted[sorted.size() / 2];
  const double floor = median_mag * options.min_relative_magnitude;

  std::vector<double> times;
  std::vector<double> phases;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (mags[i] < floor || mags[i] == 0.0) continue;
    times.push_back(static_cast<double>(i) * options.dt);
    phases.push_back(std::arg(series[i]));
  }
  if (times.size() < 3) return result;
  const std::vector<double> unwrapped = unwrap_phases(phases);

  // Least-squares slope of phase vs time.
  const double n = static_cast<double>(times.size());
  double st = 0.0;
  double sp = 0.0;
  double stt = 0.0;
  double stp = 0.0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    st += times[i];
    sp += unwrapped[i];
    stt += times[i] * times[i];
    stp += times[i] * unwrapped[i];
  }
  const double denom = n * stt - st * st;
  if (std::abs(denom) < 1e-300) return result;
  const double slope = (n * stp - st * sp) / denom;  // rad/s

  result.frequency_hz = -slope / rf::kTwoPi;
  const double path_rate = result.frequency_hz * options.lambda;
  result.speed_mps = options.two_way ? path_rate / 2.0 : path_rate;
  result.samples_used = times.size();
  result.valid = true;
  return result;
}

}  // namespace dwatch::core
