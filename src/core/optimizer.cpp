#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dwatch::core {

namespace {

struct Individual {
  std::vector<double> genes;
  double fitness = 0.0;  // objective value (lower is better)
};

void validate_bounds(std::span<const double> lo, std::span<const double> hi) {
  if (lo.empty() || lo.size() != hi.size()) {
    throw std::invalid_argument("optimizer: bad bounds");
  }
  for (std::size_t i = 0; i < lo.size(); ++i) {
    if (!(lo[i] < hi[i])) {
      throw std::invalid_argument("optimizer: lo >= hi");
    }
  }
}

double clamp_or_wrap(double v, double lo, double hi, bool periodic) {
  if (!periodic) return std::clamp(v, lo, hi);
  const double width = hi - lo;
  double t = std::fmod(v - lo, width);
  if (t < 0.0) t += width;
  return lo + t;
}

/// Run the GA and return the final population sorted best-first.
std::vector<Individual> run_ga(const Objective& f, std::span<const double> lo,
                               std::span<const double> hi,
                               const GaOptions& opt, rf::Rng& rng,
                               std::size_t& evaluations) {
  validate_bounds(lo, hi);
  if (opt.population < 4 || opt.tournament == 0 ||
      opt.elites >= opt.population) {
    throw std::invalid_argument("genetic_minimize: bad GA options");
  }
  const std::size_t n = lo.size();

  auto evaluate = [&](Individual& ind) {
    ind.fitness = f(ind.genes);
    ++evaluations;
  };

  std::vector<Individual> pop(opt.population);
  for (auto& ind : pop) {
    ind.genes.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      ind.genes[i] = rng.uniform(lo[i], hi[i]);
    }
    evaluate(ind);
  }
  auto by_fitness = [](const Individual& a, const Individual& b) {
    return a.fitness < b.fitness;
  };
  std::sort(pop.begin(), pop.end(), by_fitness);

  auto tournament_pick = [&]() -> const Individual& {
    std::size_t best = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1));
    for (std::size_t t = 1; t < opt.tournament; ++t) {
      const auto c = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1));
      if (pop[c].fitness < pop[best].fitness) best = c;
    }
    return pop[best];
  };

  for (std::size_t gen = 0; gen < opt.generations; ++gen) {
    std::vector<Individual> next;
    next.reserve(pop.size());
    // Elitism: carry the best through unchanged.
    for (std::size_t e = 0; e < opt.elites; ++e) next.push_back(pop[e]);

    while (next.size() < pop.size()) {
      const Individual& pa = tournament_pick();
      const Individual& pb = tournament_pick();
      Individual child;
      child.genes.resize(n);
      const bool crossover = rng.chance(opt.crossover_rate);
      for (std::size_t i = 0; i < n; ++i) {
        child.genes[i] =
            crossover ? (rng.chance(0.5) ? pa.genes[i] : pb.genes[i])
                      : pa.genes[i];
        if (rng.chance(opt.mutation_rate)) {
          const double width = hi[i] - lo[i];
          child.genes[i] = clamp_or_wrap(
              child.genes[i] + rng.normal(0.0, opt.mutation_sigma * width),
              lo[i], hi[i], opt.periodic);
        }
      }
      evaluate(child);
      next.push_back(std::move(child));
    }
    pop = std::move(next);
    std::sort(pop.begin(), pop.end(), by_fitness);
  }
  return pop;
}

std::vector<double> numeric_gradient(const Objective& f,
                                     std::vector<double>& x, double eps,
                                     std::size_t& evaluations) {
  std::vector<double> g(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double keep = x[i];
    x[i] = keep + eps;
    const double fp = f(x);
    x[i] = keep - eps;
    const double fm = f(x);
    x[i] = keep;
    evaluations += 2;
    g[i] = (fp - fm) / (2.0 * eps);
  }
  return g;
}

}  // namespace

OptResult genetic_minimize(const Objective& f, std::span<const double> lo,
                           std::span<const double> hi,
                           const GaOptions& options, rf::Rng& rng) {
  std::size_t evals = 0;
  auto pop = run_ga(f, lo, hi, options, rng, evals);
  OptResult result;
  result.x = std::move(pop.front().genes);
  result.value = pop.front().fitness;
  result.evaluations = evals;
  return result;
}

OptResult gradient_descent_minimize(const Objective& f,
                                    std::vector<double> x0,
                                    const GdOptions& options) {
  if (x0.empty()) {
    throw std::invalid_argument("gradient_descent_minimize: empty start");
  }
  OptResult result;
  result.x = std::move(x0);
  std::size_t evals = 0;
  double fx = f(result.x);
  ++evals;

  double step = options.initial_step;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const std::vector<double> g =
        numeric_gradient(f, result.x, options.gradient_epsilon, evals);
    double gnorm_sq = 0.0;
    for (const double gi : g) gnorm_sq += gi * gi;
    if (gnorm_sq <= options.tolerance * options.tolerance) {
      result.converged = true;
      break;
    }

    // Backtracking line search along -g.
    bool improved = false;
    double trial_step = step;
    std::vector<double> trial(result.x.size());
    for (std::size_t bt = 0; bt <= options.max_backtracks; ++bt) {
      for (std::size_t i = 0; i < trial.size(); ++i) {
        trial[i] = result.x[i] - trial_step * g[i];
      }
      const double ft = f(trial);
      ++evals;
      if (ft < fx - 1e-18) {
        result.x = trial;
        const double gain = fx - ft;
        fx = ft;
        improved = true;
        step = trial_step * 1.6;  // grow on success
        if (gain < options.tolerance) {
          result.converged = true;
          it = options.max_iterations;  // stop outer loop
        }
        break;
      }
      trial_step *= options.backtrack;
    }
    if (!improved) {
      result.converged = true;  // local minimum within line-search reach
      break;
    }
  }
  result.value = fx;
  result.evaluations = evals;
  return result;
}

OptResult hybrid_minimize(const Objective& f, std::span<const double> lo,
                          std::span<const double> hi,
                          const HybridOptions& options, rf::Rng& rng) {
  std::size_t evals = 0;
  auto pop = run_ga(f, lo, hi, options.ga, rng, evals);

  const std::size_t refine =
      std::max<std::size_t>(1, std::min(options.refine_candidates, pop.size()));
  OptResult best;
  best.value = pop.front().fitness;
  best.x = pop.front().genes;
  for (std::size_t c = 0; c < refine; ++c) {
    OptResult local =
        gradient_descent_minimize(f, pop[c].genes, options.gd);
    evals += local.evaluations;
    if (local.value < best.value) {
      best.value = local.value;
      best.x = std::move(local.x);
      best.converged = local.converged;
    }
  }
  best.evaluations = evals;
  return best;
}

}  // namespace dwatch::core
