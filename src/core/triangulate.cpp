#include "core/triangulate.hpp"

#include <cmath>
#include <stdexcept>

namespace dwatch::core {

std::vector<BearingRay> rays_for_angle(const rf::UniformLinearArray& array,
                                       double theta) {
  // arrival_angle measures against -axis (see UniformLinearArray); the
  // two in-plane directions with that cone angle are -axis rotated by
  // +/- theta.
  const rf::Vec2 u = rf::Vec2{-array.axis().x, -array.axis().y};
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  const rf::Vec2 origin = array.center().xy();
  const rf::Vec2 d1{u.x * c - u.y * s, u.x * s + u.y * c};
  const rf::Vec2 d2{u.x * c + u.y * s, -u.x * s + u.y * c};
  std::vector<BearingRay> rays{{origin, d1}};
  if (std::abs(s) > 1e-9) rays.push_back({origin, d2});
  return rays;
}

std::optional<rf::Vec2> intersect_rays(const BearingRay& a,
                                       const BearingRay& b) {
  const double denom = a.direction.cross(b.direction);
  if (std::abs(denom) < 1e-12) return std::nullopt;  // parallel
  const rf::Vec2 w = b.origin - a.origin;
  const double t = w.cross(b.direction) / denom;
  const double s = w.cross(a.direction) / denom;
  if (t <= 0.0 || s <= 0.0) return std::nullopt;  // behind an array
  return a.origin + a.direction * t;
}

TriangulationResult triangulate_with_outlier_rejection(
    std::span<const rf::UniformLinearArray> arrays,
    std::span<const AngularEvidence> evidence,
    const TriangulationOptions& options) {
  if (arrays.size() != evidence.size()) {
    throw std::invalid_argument("triangulate: evidence count mismatch");
  }
  struct Candidate {
    rf::Vec2 p;
    double weight;
  };
  std::vector<Candidate> candidates;
  std::size_t rejected = 0;

  for (std::size_t i = 0; i < arrays.size(); ++i) {
    for (const PathDrop& di : evidence[i].drops) {
      const auto rays_i = rays_for_angle(arrays[i], di.theta);
      for (std::size_t j = i + 1; j < arrays.size(); ++j) {
        for (const PathDrop& dj : evidence[j].drops) {
          const auto rays_j = rays_for_angle(arrays[j], dj.theta);
          for (const BearingRay& ri : rays_i) {
            for (const BearingRay& rj : rays_j) {
              const auto hit = intersect_rays(ri, rj);
              if (!hit) continue;
              if (!options.bounds.contains(*hit)) {
                ++rejected;  // the paper's "far outside the area" case
                continue;
              }
              candidates.push_back(
                  {*hit, di.drop_fraction * dj.drop_fraction});
            }
          }
        }
      }
    }
  }

  TriangulationResult result;
  result.rejected = rejected;
  if (candidates.empty()) return result;

  // Greedy densest cluster: for each candidate, count (and weigh)
  // neighbours within the cluster radius; the best-supported seed wins.
  double best_score = -1.0;
  std::size_t best_seed = 0;
  for (std::size_t s = 0; s < candidates.size(); ++s) {
    double score = 0.0;
    for (const Candidate& c : candidates) {
      if (rf::distance(candidates[s].p, c.p) <= options.cluster_radius) {
        score += c.weight;
      }
    }
    if (score > best_score) {
      best_score = score;
      best_seed = s;
    }
  }

  rf::Vec2 centroid{0.0, 0.0};
  double weight_sum = 0.0;
  std::size_t support = 0;
  for (const Candidate& c : candidates) {
    if (rf::distance(candidates[best_seed].p, c.p) <= options.cluster_radius) {
      centroid = centroid + c.p * c.weight;
      weight_sum += c.weight;
      ++support;
    } else {
      ++result.rejected;
    }
  }
  if (weight_sum <= 0.0) return result;
  result.position = centroid / weight_sum;
  result.support = support;
  result.valid = true;
  return result;
}

}  // namespace dwatch::core
