#include "core/root_music.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/polynomial.hpp"
#include "linalg/hermitian_eig.hpp"
#include "rf/constants.hpp"

namespace dwatch::core {

RootMusicEstimator::RootMusicEstimator(double spacing, double lambda,
                                       RootMusicOptions options)
    : spacing_(spacing), lambda_(lambda), options_(options) {
  if (spacing_ <= 0.0 || lambda_ <= 0.0) {
    throw std::invalid_argument("RootMusicEstimator: bad spacing/lambda");
  }
}

RootMusicResult RootMusicEstimator::estimate(
    const linalg::CMatrix& snapshots) const {
  return estimate_from_correlation(sample_correlation(snapshots),
                                   snapshots.cols());
}

RootMusicResult RootMusicEstimator::estimate_from_correlation(
    const linalg::CMatrix& r, std::size_t num_snapshots) const {
  if (r.rows() != r.cols() || r.rows() < 2) {
    throw std::invalid_argument("RootMusicEstimator: bad correlation");
  }
  const std::size_t m = r.rows();
  const std::size_t l =
      options_.subarray == 0 ? default_subarray(m) : options_.subarray;
  if (l < 2 || l > m) {
    throw std::invalid_argument("RootMusicEstimator: bad subarray");
  }
  const linalg::CMatrix smoothed =
      l == m ? r
             : (options_.forward_backward ? forward_backward_smooth(r, l)
                                          : forward_smooth(r, l));

  const linalg::EigenDecomposition eig = linalg::hermitian_eig(smoothed);
  SourceCountOptions sc = options_.source_count;
  sc.num_snapshots = num_snapshots;
  const std::size_t p = estimate_source_count(eig.eigenvalues, sc);
  const linalg::CMatrix un = eig.eigenvectors.block(0, p, l, l - p);

  // C = U_N U_N^H; p(z) = sum_k c_k z^{k} with c_k = sum of C's k-th
  // diagonal, k in [-(L-1), L-1]. Multiply by z^{L-1} for a plain
  // polynomial of degree 2(L-1).
  const linalg::CMatrix c = un * un.hermitian();
  const std::size_t degree = 2 * (l - 1);
  std::vector<linalg::Complex> coeffs(degree + 1);
  for (std::ptrdiff_t k = -(static_cast<std::ptrdiff_t>(l) - 1);
       k <= static_cast<std::ptrdiff_t>(l) - 1; ++k) {
    linalg::Complex sum{};
    for (std::size_t i = 0; i < l; ++i) {
      const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) + k;
      if (j >= 0 && j < static_cast<std::ptrdiff_t>(l)) {
        // a(z)^H C a(z) = sum_{i,j} conj(z^i) C(i,j) z^j: offset k = j-i.
        sum += c(i, static_cast<std::size_t>(j));
      }
    }
    coeffs[static_cast<std::size_t>(k + static_cast<std::ptrdiff_t>(l) -
                                    1)] = sum;
  }

  const std::vector<linalg::Complex> roots = find_roots(coeffs);

  // Keep roots INSIDE the unit circle (each signal root appears as a
  // conjugate-reciprocal pair), sorted by closeness to the circle.
  struct Scored {
    linalg::Complex z;
    double dist;
  };
  std::vector<Scored> inside;
  for (const linalg::Complex z : roots) {
    const double mag = std::abs(z);
    if (mag <= 1.0 + 1e-9) {
      inside.push_back({z, std::abs(1.0 - mag)});
    }
  }
  std::sort(inside.begin(), inside.end(),
            [](const Scored& a, const Scored& b) { return a.dist < b.dist; });

  RootMusicResult result;
  result.num_sources = p;
  const std::size_t take = std::min<std::size_t>(p, inside.size());
  for (std::size_t i = 0; i < take; ++i) {
    // z = e^{-j (2 pi d / lambda) cos(theta)}  =>  cos(theta) =
    // -arg(z) * lambda / (2 pi d).
    const double cos_theta = std::clamp(
        -std::arg(inside[i].z) * lambda_ / (rf::kTwoPi * spacing_), -1.0,
        1.0);
    result.angles.push_back(std::acos(cos_theta));
    result.circle_distances.push_back(inside[i].dist);
  }
  return result;
}

}  // namespace dwatch::core
