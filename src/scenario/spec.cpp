#include "scenario/spec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dwatch::scenario {

namespace {

sim::CylinderTarget make_target(const TargetSpec& spec, rf::Vec2 position,
                                RoomPreset room) {
  switch (spec.kind) {
    case TargetKind::kHuman:
      return sim::CylinderTarget::human(
          position, spec.label.empty() ? "human" : spec.label);
    case TargetKind::kBottle:
      return sim::CylinderTarget::bottle(
          position,
          room == RoomPreset::kTable ? sim::Environment::kTableHeight : 0.75,
          spec.label.empty() ? "bottle" : spec.label);
    case TargetKind::kFist:
      return sim::CylinderTarget::fist(
          position, spec.fist_z, spec.label.empty() ? "fist" : spec.label);
  }
  throw std::invalid_argument("make_target: unknown TargetKind");
}

}  // namespace

sim::Environment make_environment(RoomPreset room) {
  switch (room) {
    case RoomPreset::kLibrary:
      return sim::Environment::library();
    case RoomPreset::kLaboratory:
      return sim::Environment::laboratory();
    case RoomPreset::kHall:
      return sim::Environment::hall();
    case RoomPreset::kTable:
      return sim::Environment::table_area();
  }
  throw std::invalid_argument("make_environment: unknown RoomPreset");
}

CompiledScenario compile(const ScenarioSpec& spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("compile: scenario needs a name");
  }
  if (spec.targets.empty()) {
    throw std::invalid_argument("compile: scenario needs >= 1 target");
  }
  if (spec.epoch_dt <= 0.0) {
    throw std::invalid_argument("compile: epoch_dt must be > 0");
  }

  // Deployment and reader hardware derive from the seed alone.
  rf::Rng deploy_rng(spec.seed * 2654435761u + 1);
  rf::Rng hardware_rng(spec.seed * 40503u + 2);

  sim::Deployment deployment;
  if (spec.room == RoomPreset::kTable) {
    deployment = sim::make_table_deployment(
        spec.num_tags, spec.antennas_per_array, deploy_rng);
  } else {
    sim::DeploymentOptions dopt;
    dopt.num_arrays = spec.num_arrays;
    dopt.num_tags = spec.num_tags;
    dopt.antennas_per_array = spec.antennas_per_array;
    deployment = sim::make_room_deployment(make_environment(spec.room), dopt,
                                           deploy_rng);
  }

  sim::CaptureOptions capture;
  capture.blockage_model = spec.blockage;

  // Frame count: run until every trajectory has finished (plus settle
  // time), never fewer than min_epochs.
  double horizon = spec.extra_time;
  for (const TargetSpec& t : spec.targets) {
    horizon = std::max(horizon, t.trajectory.duration() + spec.extra_time);
  }
  std::size_t num_frames = static_cast<std::size_t>(
                               std::ceil(horizon / spec.epoch_dt)) +
                           1;
  num_frames = std::max(num_frames, spec.min_epochs);

  CompiledScenario compiled{
      spec, sim::Scene(std::move(deployment), capture, hardware_rng), {}};
  compiled.frames.reserve(num_frames);
  for (std::size_t k = 0; k < num_frames; ++k) {
    Frame frame;
    frame.t = static_cast<double>(k) * spec.epoch_dt;
    // Watermarks start past 0 so staleness rejection stays armed from
    // the very first epoch.
    frame.watermark_us =
        1'000'000 + static_cast<std::uint64_t>(frame.t * 1e6);
    for (const TargetSpec& t : spec.targets) {
      const rf::Vec2 p = t.trajectory.position_at(frame.t);
      frame.targets.push_back(make_target(t, p, spec.room));
      frame.truth.push_back(p);
    }
    compiled.frames.push_back(std::move(frame));
  }
  return compiled;
}

}  // namespace dwatch::scenario
