#include "scenario/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "rfid/llrp.hpp"
#include "scenario/assignment.hpp"

namespace dwatch::scenario {

namespace {

/// Percentile of an (unsorted) sample set; nearest-rank on a copy.
double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

/// Replace every sample's phase with uniform junk, keeping magnitudes:
/// the broken-LO condition the RSS fallback exists for.
void scramble_phase(rfid::RoAccessReport& report, rf::Rng& rng) {
  for (rfid::TagObservation& obs : report.observations) {
    for (rfid::PhaseSample& s : obs.samples) {
      s.phase_q = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    }
  }
}

/// True iff every target in the spec is a human (controls whether the
/// §6.2 width allowance applies to matched errors).
bool all_human(const ScenarioSpec& spec) {
  return std::all_of(spec.targets.begin(), spec.targets.end(),
                     [](const TargetSpec& t) {
                       return t.kind == TargetKind::kHuman;
                     });
}

}  // namespace

const char* to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kPass:
      return "PASS";
    case Outcome::kFail:
      return "FAIL";
    case Outcome::kSkip:
      return "SKIP";
    case Outcome::kPerf:
      return "PERF";
  }
  return "UNKNOWN";
}

void TrackBank::configure(std::size_t num_tracks,
                          const core::KalmanOptions& options) {
  const bool same_shape = configured_ && tracks_.size() == num_tracks &&
                          options_.dt == options.dt &&
                          options_.process_accel == options.process_accel &&
                          options_.measurement_sigma ==
                              options.measurement_sigma &&
                          options_.gate_sigmas == options.gate_sigmas &&
                          options_.max_coast == options.max_coast;
  if (same_shape) return;  // keep live state; reset() is the episode cut
  options_ = options;
  tracks_.clear();
  tracks_.reserve(num_tracks);
  for (std::size_t i = 0; i < num_tracks; ++i) {
    tracks_.emplace_back(options_);
  }
  configured_ = true;
}

void TrackBank::reset() {
  for (core::KalmanTracker& t : tracks_) t.reset();
}

std::vector<rf::Vec2> TrackBank::step(std::vector<rf::Vec2> measurements) {
  if (measurements.size() > tracks_.size()) {
    measurements.resize(tracks_.size());
  }
  std::vector<char> updated(tracks_.size(), 0);
  if (!measurements.empty()) {
    // Cost rows = measurements (<= tracks): distance to the track's
    // current position; uninitialized tracks sit at a flat high cost
    // (slightly increasing in index) so leftovers adopt them in
    // deterministic index order.
    std::vector<std::vector<double>> cost(
        measurements.size(), std::vector<double>(tracks_.size()));
    for (std::size_t r = 0; r < measurements.size(); ++r) {
      for (std::size_t c = 0; c < tracks_.size(); ++c) {
        cost[r][c] = tracks_[c].initialized()
                         ? rf::distance(measurements[r],
                                        tracks_[c].position())
                         : 1000.0 + 0.001 * static_cast<double>(c);
      }
    }
    const std::vector<std::size_t> assignment = min_cost_assignment(cost);
    for (std::size_t r = 0; r < measurements.size(); ++r) {
      const std::size_t c = assignment[r];
      (void)tracks_[c].update(measurements[r]);
      updated[c] = 1;
    }
  }
  std::vector<rf::Vec2> positions;
  for (std::size_t c = 0; c < tracks_.size(); ++c) {
    if (!updated[c] && tracks_[c].initialized()) {
      (void)tracks_[c].coast();
    }
    if (tracks_[c].initialized()) {
      positions.push_back(tracks_[c].position());
    }
  }
  return positions;
}

ScenarioRunner::ScenarioRunner(RunnerConfig config)
    : config_(std::move(config)) {}

ScenarioResult ScenarioRunner::run(const ScenarioSpec& spec) {
  ScenarioResult result;
  result.name = spec.name;

  const bool wants_rss =
      spec.rss.force || spec.rss.auto_health_threshold > 0.0;
  if (wants_rss && !spec.survey_tags) {
    result.outcome = Outcome::kSkip;
    result.detail = "RSS scenario without surveyed tag positions";
    return result;
  }

  std::optional<CompiledScenario> compiled_opt;
  try {
    compiled_opt.emplace(compile(spec));
  } catch (const std::invalid_argument& e) {
    result.outcome = Outcome::kSkip;
    result.detail = e.what();
    return result;
  }
  CompiledScenario& compiled = *compiled_opt;

  const sim::Scene& scene = compiled.scene;
  rf::Rng capture_rng(spec.seed * 7919u + 17);
  rf::Rng chaos_rng(spec.seed * 104729u + 5);

  // --- serving layer: one zone, the scenario's whole deployment ------
  serve::ServiceOptions sopts;
  sopts.num_workers = config_.service_workers;
  serve::LocalizationService service(sopts);

  const bool multi = spec.targets.size() > 1;

  serve::ZoneConfig zc;
  zc.name = spec.name;
  zc.arrays = scene.deployment().arrays;
  zc.bounds = core::SearchBounds{
      {0.0, 0.0},
      {scene.deployment().env.width, scene.deployment().env.depth}};
  zc.pipeline.localizer.grid_step =
      spec.room == RoomPreset::kTable ? 0.02 : 0.05;
  zc.pipeline.rss_only = spec.rss;
  zc.pipeline.streaming = config_.streaming;
  // Early sealing truncates the evidence backlog once ONE likelihood
  // peak stabilizes — fine for a single target, fatal for the
  // secondary peaks multi-target localization feeds on.
  if (multi) zc.pipeline.streaming.early_seal = false;
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    zc.calibration.push_back(scene.reader(a).phase_offsets());
  }
  zc.best_effort = true;
  const std::size_t zone = service.add_zone(std::move(zc));
  core::DWatchPipeline& pipeline = service.zone(zone).pipeline();

  if (spec.survey_tags) {
    for (const rfid::Tag& tag : scene.deployment().tags) {
      pipeline.set_tag_position(tag.epc, tag.position.xy());
    }
  }

  // --- baselines through the wire (empty scene) ----------------------
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    const rfid::RoAccessReport report = scene.capture_report(
        a, {}, capture_rng, static_cast<std::uint32_t>(a + 1));
    const std::vector<std::uint8_t> bytes = rfid::encode(report);
    rfid::LlrpStreamDecoder decoder;
    decoder.feed(bytes);
    const auto decoded = decoder.next_report();
    if (!decoded) continue;
    for (const rfid::TagObservation& obs : decoded->observations) {
      pipeline.add_baseline(a, obs);
    }
  }

  // --- online epochs --------------------------------------------------
  core::KalmanOptions kopts = config_.kalman;
  kopts.dt = spec.epoch_dt;
  bank_.configure(spec.targets.size(), kopts);
  bank_.reset();  // the episode boundary: no state from a previous case

  const bool use_allowance = spec.budget.human_allowance && all_human(spec);
  const double allowance = use_allowance ? 0.18 : 0.0;

  std::vector<double> epoch_times;
  std::vector<double> tracked_errors;
  std::vector<double> fix_errors;
  double match_rate_sum = 0.0;
  std::size_t match_rate_epochs = 0;
  ScenarioMetrics& m = result.metrics;

  // Streaming: converged fixes reach the track bank MID-EPOCH, on the
  // zone's task inside run_pending(), instead of after the serving tick
  // returns. With service_workers == 1 the observer runs synchronously
  // on this thread, so the bank sees exactly one step per epoch either
  // way (the frame loop skips its own step when the observer already
  // took it).
  std::optional<std::vector<rf::Vec2>> early_tracked;
  if (config_.streaming.enabled && config_.streaming.early_seal && !multi &&
      config_.service_workers == 1) {
    service.set_early_fix_observer(
        [this, &early_tracked](std::size_t, const serve::ZoneFix& zone_fix) {
          std::vector<rf::Vec2> measurements;
          if (zone_fix.result.estimate.likelihood > 0.0) {
            measurements.push_back(zone_fix.result.estimate.position);
          }
          early_tracked = bank_.step(std::move(measurements));
        });
  }

  std::uint32_t message_id = 1000;
  for (std::size_t k = 0; k < compiled.frames.size(); ++k) {
    const Frame& frame = compiled.frames[k];
    const auto t0 = std::chrono::steady_clock::now();

    service.begin_epoch(zone, frame.watermark_us);
    for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
      rfid::RoAccessReport report =
          scene.capture_report(a, frame.targets, capture_rng, ++message_id,
                               frame.watermark_us);
      if (spec.phase_fault == PhaseFault::kScramble) {
        scramble_phase(report, chaos_rng);
      }
      const std::vector<std::uint8_t> bytes = rfid::encode(report);
      rfid::LlrpStreamDecoder decoder;
      decoder.feed(bytes);
      const auto decoded = decoder.next_report();
      if (decoded) service.add_report(zone, a, *decoded);
    }
    service.seal_epoch(zone);
    service.run_pending();

    const auto t1 = std::chrono::steady_clock::now();
    const double epoch_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    epoch_times.push_back(epoch_us);

    const serve::ZoneFix fix = service.fixes(zone).back();
    ++m.epochs;
    if (fix.result.estimate.valid) ++m.valid_fixes;
    if (fix.result.confidence.rss_mode) ++m.rss_epochs;

    // Per-epoch estimates: the service fix for single-target cases,
    // the still-warm zone pipeline's multi-target peaks otherwise
    // (run_pending leaves the epoch's evidence in place).
    std::vector<core::LocationEstimate> estimates;
    if (multi) {
      estimates = pipeline.localize_multi(spec.targets.size(), 0.25);
    } else if (fix.result.estimate.likelihood > 0.0) {
      estimates.push_back(fix.result.estimate);
    }
    std::vector<rf::Vec2> measurements;
    for (const core::LocationEstimate& e : estimates) {
      measurements.push_back(e.position);
    }
    std::vector<rf::Vec2> tracked;
    if (early_tracked.has_value()) {
      tracked = std::move(*early_tracked);  // stepped mid-epoch already
      early_tracked.reset();
    } else {
      tracked = bank_.step(std::move(measurements));
    }

    if (k >= config_.warmup_epochs) {
      // Hungarian pairs within the gate are matches; pairs beyond it
      // are coverage failures and stay out of the error statistics.
      std::size_t matched = 0;
      for (const double e : matched_errors(tracked, frame.truth)) {
        if (e > config_.match_gate_m) continue;
        ++matched;
        tracked_errors.push_back(std::max(0.0, e - allowance));
      }
      if (matched > 0) ++m.scored_epochs;
      std::vector<rf::Vec2> raw;
      for (const core::LocationEstimate& e : estimates) {
        raw.push_back(e.position);
      }
      for (const double e : matched_errors(raw, frame.truth)) {
        if (e > config_.match_gate_m) continue;
        fix_errors.push_back(std::max(0.0, e - allowance));
      }
      match_rate_sum += frame.truth.empty()
                            ? 0.0
                            : static_cast<double>(matched) /
                                  static_cast<double>(frame.truth.size());
      ++match_rate_epochs;
    }

    if (config_.keep_records) {
      EpochRecord rec;
      rec.t = frame.t;
      rec.truth = frame.truth;
      rec.fix = fix;
      rec.estimates = estimates;
      rec.tracked = tracked;
      rec.epoch_us = epoch_us;
      result.records.push_back(std::move(rec));
    }
  }

  // --- metrics + outcome ----------------------------------------------
  const auto rms = [](const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    double sq = 0.0;
    for (const double e : v) sq += e * e;
    return std::sqrt(sq / static_cast<double>(v.size()));
  };
  m.rmse = rms(tracked_errors);
  m.fix_rmse = rms(fix_errors);
  if (!tracked_errors.empty()) {
    double sum = 0.0;
    double worst = 0.0;
    for (const double e : tracked_errors) {
      sum += e;
      worst = std::max(worst, e);
    }
    m.mean_error = sum / static_cast<double>(tracked_errors.size());
    m.max_error = worst;
  }
  m.match_rate = match_rate_epochs == 0
                     ? 0.0
                     : match_rate_sum /
                           static_cast<double>(match_rate_epochs);
  m.p50_epoch_us = percentile(epoch_times, 0.5);
  m.p99_epoch_us = percentile(epoch_times, 0.99);
  m.early_seals = service.zone_stats(zone).epochs_early_sealed;

  if (m.scored_epochs == 0) {
    result.outcome = Outcome::kFail;
    result.detail = "no tracked fixes survived to be scored";
  } else if (m.rmse > spec.budget.rmse_m) {
    result.outcome = Outcome::kFail;
    result.detail = "tracked RMSE " + std::to_string(m.rmse) +
                    " m over budget " + std::to_string(spec.budget.rmse_m);
  } else if (m.match_rate < spec.budget.min_match_rate) {
    result.outcome = Outcome::kFail;
    result.detail = "match rate " + std::to_string(m.match_rate) +
                    " below " + std::to_string(spec.budget.min_match_rate);
  } else if (config_.perf_budget_us > 0.0 &&
             m.p99_epoch_us > config_.perf_budget_us) {
    result.outcome = Outcome::kPerf;
    result.detail = "p99 epoch " + std::to_string(m.p99_epoch_us) +
                    " us over budget";
  } else {
    result.outcome = Outcome::kPass;
    result.detail = "within budget";
  }
  return result;
}

}  // namespace dwatch::scenario
