#include "scenario/registry.hpp"

namespace dwatch::scenario {

namespace {

TargetSpec static_human(rf::Vec2 at, const char* label = "human") {
  TargetSpec t;
  t.kind = TargetKind::kHuman;
  t.trajectory = Trajectory::stationary(at);
  t.label = label;
  return t;
}

TargetSpec walking_human(std::vector<Waypoint> waypoints,
                         const char* label = "human") {
  TargetSpec t;
  t.kind = TargetKind::kHuman;
  t.trajectory = Trajectory(std::move(waypoints));
  t.label = label;
  return t;
}

std::vector<ScenarioSpec> build_catalogue() {
  std::vector<ScenarioSpec> specs;

  // ---- static: one person per room (paper §6.2-§6.4) -----------------
  {
    ScenarioSpec s;
    s.name = "library_static_human";
    s.description = "one person standing in the high-multipath library";
    s.room = RoomPreset::kLibrary;
    s.seed = 11;
    s.targets = {static_human({3.2, 4.8})};
    s.budget.rmse_m = 0.45;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "laboratory_static_human";
    s.description = "one person standing in the laboratory";
    s.room = RoomPreset::kLaboratory;
    s.seed = 12;
    s.targets = {static_human({4.2, 6.8})};
    s.budget.rmse_m = 0.45;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "hall_static_human";
    s.description = "one person standing in the low-multipath hall";
    s.room = RoomPreset::kHall;
    s.seed = 13;
    // Off the array axes: the on-axis spot is the adversarial case.
    s.targets = {static_human({2.4, 6.4})};
    s.budget.rmse_m = 0.45;
    specs.push_back(std::move(s));
  }

  // ---- moving: waypoint walks with per-segment speeds ----------------
  {
    ScenarioSpec s;
    s.name = "library_walk_line";
    s.description = "person walks a straight line across the library";
    s.room = RoomPreset::kLibrary;
    s.seed = 21;
    s.targets = {walking_human({{{2.0, 3.0}, 0.8}, {{5.0, 7.0}, 0.8}})};
    s.extra_time = 0.8;
    s.budget.rmse_m = 0.9;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "laboratory_walk_l";
    s.description = "person walks an L with a speed change at the corner";
    s.room = RoomPreset::kLaboratory;
    s.seed = 22;
    s.targets = {walking_human(
        {{{2.5, 3.0}, 1.0}, {{2.5, 8.5}, 0.7}, {{6.0, 8.5}, 0.7}})};
    s.extra_time = 0.8;
    s.budget.rmse_m = 0.9;
    specs.push_back(std::move(s));
  }

  // ---- fist on the table (paper §6.8 letter tracing) -----------------
  {
    ScenarioSpec s;
    s.name = "table_fist_letter";
    s.description = "fist traces an N-stroke over the 2 m table";
    s.room = RoomPreset::kTable;
    s.num_tags = 10;
    s.seed = 31;
    TargetSpec fist;
    fist.kind = TargetKind::kFist;
    fist.fist_z = sim::Environment::kTableHeight + 0.12;
    fist.trajectory = Trajectory(
        {{{0.6, 0.6}, 0.25}, {{0.6, 1.4}, 0.25}, {{1.3, 0.6}, 0.25},
         {{1.3, 1.4}, 0.25}});
    fist.label = "fist";
    s.targets = {std::move(fist)};
    s.extra_time = 0.4;
    s.budget.rmse_m = 0.45;
    s.budget.human_allowance = false;
    specs.push_back(std::move(s));
  }

  // ---- multi-target --------------------------------------------------
  {
    ScenarioSpec s;
    s.name = "library_two_humans";
    s.description = "two people standing in the same zone";
    s.room = RoomPreset::kLibrary;
    s.seed = 41;
    s.targets = {static_human({2.0, 3.0}, "alice"),
                 static_human({5.0, 7.0}, "bob")};
    s.budget.rmse_m = 0.9;
    s.budget.min_match_rate = 0.5;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "library_two_humans_walk";
    s.description = "two people walking opposite lanes";
    s.room = RoomPreset::kLibrary;
    s.seed = 43;
    // Two concurrent walkers is the hardest registry case: the Eq. 15
    // product favours whichever body casts the deeper drops, so the
    // dimmer walker is only intermittently covered. 30 tags and a 0.4
    // match-rate floor encode "dominant walker tracked throughout,
    // second walker at least half the time".
    s.num_tags = 30;
    s.targets = {
        walking_human({{{1.8, 2.5}, 0.7}, {{1.8, 7.5}, 0.7}}, "alice"),
        walking_human({{{5.2, 7.5}, 0.7}, {{5.2, 2.5}, 0.7}}, "bob")};
    s.extra_time = 0.8;
    s.budget.rmse_m = 1.0;
    s.budget.min_match_rate = 0.4;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "table_two_bottles";
    s.description = "two bottles placed on the table at once";
    s.room = RoomPreset::kTable;
    s.num_tags = 26;  // the paper's §6.7 tag count
    s.seed = 43;
    TargetSpec b1;
    b1.kind = TargetKind::kBottle;
    b1.trajectory = Trajectory::stationary({0.55, 0.75});
    b1.label = "left";
    TargetSpec b2;
    b2.kind = TargetKind::kBottle;
    b2.trajectory = Trajectory::stationary({1.45, 1.25});
    b2.label = "right";
    s.targets = {std::move(b1), std::move(b2)};
    s.budget.rmse_m = 0.5;
    s.budget.human_allowance = false;
    s.budget.min_match_rate = 0.5;
    specs.push_back(std::move(s));
  }

  // ---- RSS-only degraded mode ----------------------------------------
  {
    ScenarioSpec s;
    s.name = "library_rss_forced";
    s.description = "phase path disabled outright; RSS-only localization";
    s.room = RoomPreset::kLibrary;
    s.seed = 51;
    s.targets = {static_human({3.2, 4.8})};
    s.rss.force = true;
    s.survey_tags = true;
    s.budget.rmse_m = 1.6;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "hall_rss_auto_scramble";
    s.description =
        "scrambled phases trip the health gate; auto RSS fallback";
    s.room = RoomPreset::kHall;
    s.seed = 52;
    s.targets = {static_human({3.6, 5.2})};
    s.phase_fault = PhaseFault::kScramble;
    s.rss.auto_health_threshold = 0.6;
    s.survey_tags = true;
    s.budget.rmse_m = 1.6;
    specs.push_back(std::move(s));
  }

  // ---- adversarial geometries ----------------------------------------
  {
    ScenarioSpec s;
    s.name = "library_wall_hugger";
    s.description = "person standing 0.45 m off the left wall";
    s.room = RoomPreset::kLibrary;
    s.seed = 61;
    s.targets = {static_human({0.45, 5.0})};
    s.budget.rmse_m = 0.9;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "laboratory_collinear";
    s.description =
        "person on the bottom-top array axis (degenerate bearings)";
    s.room = RoomPreset::kLaboratory;
    s.seed = 62;
    s.targets = {static_human({4.5, 4.0})};
    s.budget.rmse_m = 0.9;
    specs.push_back(std::move(s));
  }

  // ---- tag-density sweep ---------------------------------------------
  {
    ScenarioSpec s;
    s.name = "hall_sparse_tags";
    s.description = "only 6 tags deployed; evidence is thin";
    s.room = RoomPreset::kHall;
    s.seed = 71;
    s.num_tags = 6;
    s.targets = {static_human({3.6, 5.2})};
    s.budget.rmse_m = 0.9;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "library_dense_tags";
    s.description = "30 tags deployed; evidence is rich";
    s.room = RoomPreset::kLibrary;
    s.seed = 72;
    s.num_tags = 30;
    s.targets = {static_human({3.2, 4.8})};
    s.budget.rmse_m = 0.45;
    specs.push_back(std::move(s));
  }

  return specs;
}

}  // namespace

const std::vector<ScenarioSpec>& all_scenarios() {
  static const std::vector<ScenarioSpec> catalogue = build_catalogue();
  return catalogue;
}

const ScenarioSpec* find_scenario(std::string_view name) {
  for (const ScenarioSpec& spec : all_scenarios()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

}  // namespace dwatch::scenario
