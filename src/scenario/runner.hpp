// Scenario runner: drives a compiled scenario through the FULL stack —
// sim capture -> LLRP wire framing -> LocalizationService (zone
// pipeline + scheduler) -> multi-target Kalman track bank — and scores
// the result against the spec's error budget with per-case
// pass/fail/skip/perf outcomes (the filter-test-bench idiom).
//
// Determinism: everything derives from ScenarioSpec::seed; the service
// runs its zone serially per epoch and the pipeline is bit-identical
// for every worker count, so two runs of the same spec produce
// byte-equal fix sequences (asserted by tests/scenario).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/kalman.hpp"
#include "core/localizer.hpp"
#include "scenario/spec.hpp"
#include "serve/service.hpp"

namespace dwatch::scenario {

/// Per-case outcome, most severe wins.
enum class Outcome : std::uint8_t {
  kPass,
  kFail,  ///< error budget blown or no usable fixes
  kSkip,  ///< scenario not runnable as specified
  kPerf,  ///< correct but over the perf budget
};

[[nodiscard]] const char* to_string(Outcome outcome) noexcept;

/// One serving epoch's artefacts.
struct EpochRecord {
  double t = 0.0;
  std::vector<rf::Vec2> truth;
  /// The zone fix the service produced for this epoch.
  serve::ZoneFix fix;
  /// Multi-target estimates (single-target scenarios: one entry
  /// mirroring the fix).
  std::vector<core::LocationEstimate> estimates;
  /// Positions of initialized tracks after this epoch.
  std::vector<rf::Vec2> tracked;
  double epoch_us = 0.0;  ///< wall time of capture+wire+serve
};

struct ScenarioMetrics {
  std::size_t epochs = 0;         ///< total serving epochs
  std::size_t scored_epochs = 0;  ///< epochs past warmup with a match
  std::size_t valid_fixes = 0;    ///< consensus fixes from the service
  std::size_t rss_epochs = 0;     ///< fixes taken on the RSS-only path
  double rmse = 0.0;        ///< tracked-vs-truth RMSE over matched pairs
  double mean_error = 0.0;
  double max_error = 0.0;
  double fix_rmse = 0.0;    ///< raw (untracked) estimate-vs-truth RMSE
  double match_rate = 0.0;  ///< matched truths / truths, averaged
  double p50_epoch_us = 0.0;
  double p99_epoch_us = 0.0;
  /// Streaming mode: epochs whose fix was emitted before the report
  /// backlog was exhausted (always 0 with streaming off).
  std::size_t early_seals = 0;
};

struct ScenarioResult {
  std::string name;
  Outcome outcome = Outcome::kSkip;
  std::string detail;  ///< human-readable reason for the outcome
  ScenarioMetrics metrics;
  std::vector<EpochRecord> records;  ///< empty if keep_records is off
};

/// A bank of per-target Kalman trackers with Hungarian data
/// association. The bank OUTLIVES individual scenario episodes (the
/// compliance runner reuses one bank across its whole case list), so
/// reset() between episodes is load-bearing: without it, track state
/// from the previous scenario leaks into the next one's first fixes.
class TrackBank {
 public:
  /// Resize/retune the bank. Existing tracker STATE survives when the
  /// shape and options already match — reset() is the episode boundary,
  /// not configure().
  void configure(std::size_t num_tracks, const core::KalmanOptions& options);

  /// Clear every track (fresh episode).
  void reset();

  [[nodiscard]] std::size_t size() const noexcept { return tracks_.size(); }
  [[nodiscard]] const core::KalmanTracker& track(std::size_t i) const {
    return tracks_.at(i);
  }

  /// Feed one epoch of position measurements: measurements are matched
  /// to tracks by min-cost assignment on distance to the predicted
  /// track positions (uninitialized tracks adopt leftovers
  /// deterministically), matched tracks update, unmatched tracks coast.
  /// Returns the post-update position of every INITIALIZED track.
  std::vector<rf::Vec2> step(std::vector<rf::Vec2> measurements);

 private:
  std::vector<core::KalmanTracker> tracks_;
  core::KalmanOptions options_;
  bool configured_ = false;
};

struct RunnerConfig {
  /// Epochs at the start excluded from scoring (tracker warm-up).
  std::size_t warmup_epochs = 2;
  /// Hungarian pairs farther apart than this [m] count as UNMATCHED
  /// (they lower match_rate instead of polluting the RMSE) — a ghost
  /// track sitting meters away is a coverage failure, not a 5 m error.
  double match_gate_m = 0.75;
  /// p99 epoch budget [us]; 0 disables the perf gate (compliance tests
  /// keep it off — wall time is not deterministic).
  double perf_budget_us = 0.0;
  /// Keep per-epoch records in the result (examples/benches want them;
  /// large sweeps can turn them off).
  bool keep_records = true;
  /// Worker threads for the LocalizationService pool (1 = serial).
  /// Results are bit-identical for every setting.
  std::size_t service_workers = 1;
  /// Streaming spectral path for the zone pipeline (off = the batch
  /// path, byte for byte). Early sealing is forced OFF for
  /// multi-target specs: truncating the backlog on single-peak
  /// convergence would starve the secondary peaks the multi-target
  /// localizer needs. Early fixes stream into the TrackBank mid-epoch
  /// via the service's early-fix observer.
  core::StreamingOptions streaming;
  /// Tracker tuning; dt is overridden by each spec's epoch_dt. Wider
  /// than the core defaults: raw fixes carry occasional meter-level
  /// outliers, and a 4-sigma gate on a 0.15 m sigma locks the filter
  /// onto a runaway velocity after one bad init (it then rejects every
  /// good measurement while it coasts away).
  core::KalmanOptions kalman{.measurement_sigma = 0.25, .gate_sigmas = 6.0};
};

/// Runs scenarios; owns the TrackBank shared across episodes.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(RunnerConfig config = {});

  [[nodiscard]] const RunnerConfig& config() const noexcept {
    return config_;
  }

  /// Compile + drive + score one scenario.
  [[nodiscard]] ScenarioResult run(const ScenarioSpec& spec);

 private:
  RunnerConfig config_;
  TrackBank bank_;
};

}  // namespace dwatch::scenario
