#include "scenario/trajectory.hpp"

#include <stdexcept>

namespace dwatch::scenario {

Trajectory::Trajectory(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  if (waypoints_.empty()) {
    throw std::invalid_argument("Trajectory: no waypoints");
  }
  arrival_.reserve(waypoints_.size());
  arrival_.push_back(0.0);
  for (std::size_t i = 0; i + 1 < waypoints_.size(); ++i) {
    const double len =
        rf::distance(waypoints_[i].position, waypoints_[i + 1].position);
    double leg_time = 0.0;
    if (len > 0.0) {
      if (waypoints_[i].speed_mps <= 0.0) {
        throw std::invalid_argument(
            "Trajectory: non-positive speed on a moving segment");
      }
      leg_time = len / waypoints_[i].speed_mps;
    }
    arrival_.push_back(arrival_.back() + leg_time);
  }
  duration_ = arrival_.back();
}

Trajectory Trajectory::stationary(rf::Vec2 position) {
  return Trajectory({Waypoint{position, 0.0}});
}

rf::Vec2 Trajectory::position_at(double t) const {
  if (t <= 0.0 || waypoints_.size() == 1) {
    return waypoints_.front().position;
  }
  if (t >= duration_) return waypoints_.back().position;
  // Find the segment containing t; arrival_ is nondecreasing.
  std::size_t seg = 0;
  while (seg + 1 < arrival_.size() && arrival_[seg + 1] < t) ++seg;
  const double span = arrival_[seg + 1] - arrival_[seg];
  if (span <= 0.0) return waypoints_[seg + 1].position;
  const double frac = (t - arrival_[seg]) / span;
  const rf::Vec2 a = waypoints_[seg].position;
  const rf::Vec2 b = waypoints_[seg + 1].position;
  return a + (b - a) * frac;
}

}  // namespace dwatch::scenario
