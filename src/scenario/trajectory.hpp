// Waypoint trajectories with per-segment speeds.
//
// A trajectory is a polyline in the floor plane: the target departs
// waypoint i toward waypoint i+1 at waypoint i's `speed_mps`, so an
// L-shaped walk can slow into the corner and accelerate out of it.
// Sampling is exact (piecewise-linear in time) and clamps to the
// endpoints, which makes a single-waypoint trajectory a static target.
#pragma once

#include <vector>

#include "rf/geometry.hpp"

namespace dwatch::scenario {

/// One corner of a walk. `speed_mps` is the speed of the SEGMENT
/// LEAVING this waypoint (ignored on the last waypoint).
struct Waypoint {
  rf::Vec2 position;
  double speed_mps = 1.0;
};

class Trajectory {
 public:
  /// Throws std::invalid_argument on an empty waypoint list or a
  /// non-positive speed on a segment of nonzero length.
  explicit Trajectory(std::vector<Waypoint> waypoints);

  /// A target that never moves.
  [[nodiscard]] static Trajectory stationary(rf::Vec2 position);

  /// Total walk time [s]; 0 for a stationary trajectory.
  [[nodiscard]] double duration() const noexcept { return duration_; }

  [[nodiscard]] const std::vector<Waypoint>& waypoints() const noexcept {
    return waypoints_;
  }

  /// Position at time t [s]; clamped to the first/last waypoint outside
  /// [0, duration()].
  [[nodiscard]] rf::Vec2 position_at(double t) const;

 private:
  std::vector<Waypoint> waypoints_;
  /// arrival_[i]: time the target reaches waypoint i (arrival_[0] = 0).
  std::vector<double> arrival_;
  double duration_ = 0.0;
};

}  // namespace dwatch::scenario
