#include "scenario/assignment.hpp"

#include <limits>
#include <stdexcept>

namespace dwatch::scenario {

std::vector<std::size_t> min_cost_assignment(
    const std::vector<std::vector<double>>& cost) {
  const std::size_t n = cost.size();
  if (n == 0) return {};
  const std::size_t m = cost[0].size();
  if (m < n) {
    throw std::invalid_argument(
        "min_cost_assignment: need rows <= cols (transpose first)");
  }
  for (const auto& row : cost) {
    if (row.size() != m) {
      throw std::invalid_argument("min_cost_assignment: ragged matrix");
    }
  }

  // Hungarian algorithm with potentials, 1-based sentinel arrays.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0);   // row potentials
  std::vector<double> v(m + 1, 0.0);   // column potentials
  std::vector<std::size_t> match(m + 1, 0);  // match[c] = row owning c
  std::vector<std::size_t> way(m + 1, 0);

  for (std::size_t r = 1; r <= n; ++r) {
    match[0] = r;
    std::size_t col0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[col0] = 1;
      const std::size_t row0 = match[col0];
      double delta = kInf;
      std::size_t col1 = 0;
      for (std::size_t c = 1; c <= m; ++c) {
        if (used[c]) continue;
        const double reduced = cost[row0 - 1][c - 1] - u[row0] - v[c];
        if (reduced < minv[c]) {
          minv[c] = reduced;
          way[c] = col0;
        }
        if (minv[c] < delta) {
          delta = minv[c];
          col1 = c;
        }
      }
      for (std::size_t c = 0; c <= m; ++c) {
        if (used[c]) {
          u[match[c]] += delta;
          v[c] -= delta;
        } else {
          minv[c] -= delta;
        }
      }
      col0 = col1;
    } while (match[col0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t col1 = way[col0];
      match[col0] = match[col1];
      col0 = col1;
    } while (col0 != 0);
  }

  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t c = 1; c <= m; ++c) {
    if (match[c] != 0) assignment[match[c] - 1] = c - 1;
  }
  return assignment;
}

double assignment_cost(const std::vector<std::vector<double>>& cost,
                       const std::vector<std::size_t>& assignment) {
  double total = 0.0;
  for (std::size_t r = 0; r < assignment.size(); ++r) {
    total += cost[r][assignment[r]];
  }
  return total;
}

std::vector<double> matched_errors(const std::vector<rf::Vec2>& estimates,
                                   const std::vector<rf::Vec2>& truths) {
  if (estimates.empty() || truths.empty()) return {};
  // Rows = the smaller set so the solver's rows <= cols precondition
  // always holds; each matched pair's distance is symmetric anyway.
  const bool est_rows = estimates.size() <= truths.size();
  const auto& rows = est_rows ? estimates : truths;
  const auto& cols = est_rows ? truths : estimates;
  std::vector<std::vector<double>> cost(rows.size(),
                                        std::vector<double>(cols.size()));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      cost[r][c] = rf::distance(rows[r], cols[c]);
    }
  }
  const std::vector<std::size_t> assignment = min_cost_assignment(cost);
  std::vector<double> errors;
  errors.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    errors.push_back(cost[r][assignment[r]]);
  }
  return errors;
}

}  // namespace dwatch::scenario
