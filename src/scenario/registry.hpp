// The built-in scenario catalogue: the compliance suite's case list.
//
// Families (tests/scenario asserts coverage of each):
//   static      — one person standing in each of the paper's three rooms
//   moving      — waypoint walks with per-segment speeds (§6.2 cadence)
//   fist        — fine-grained table tracking (§6.7/§6.8)
//   multi       — two concurrent targets, Hungarian-matched scoring
//   rss         — RSS-only degraded mode, forced and auto-triggered
//   adversarial — wall-hugging and array-collinear geometries
//   density     — sparse/dense tag sweeps
#pragma once

#include <string_view>
#include <vector>

#include "scenario/spec.hpp"

namespace dwatch::scenario {

/// Every built-in scenario, in a stable order.
[[nodiscard]] const std::vector<ScenarioSpec>& all_scenarios();

/// Lookup by ScenarioSpec::name; nullptr when absent.
[[nodiscard]] const ScenarioSpec* find_scenario(std::string_view name);

}  // namespace dwatch::scenario
