// Declarative scenario DSL (ROADMAP item 4).
//
// A ScenarioSpec names a room preset, a set of targets with waypoint
// trajectories, tag density, fault injection (phase scrambling for the
// RSS-degraded family) and an error budget. compile() turns it into a
// Scene plus a timestamped sequence of frames — each frame is the
// target configuration one serving epoch sees — ready for the
// ScenarioRunner to drive through the full wire + pipeline + tracker +
// service stack. Everything derives deterministically from `seed`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/rss.hpp"
#include "rf/geometry.hpp"
#include "scenario/trajectory.hpp"
#include "sim/scene.hpp"
#include "sim/target.hpp"

namespace dwatch::scenario {

/// The paper's three rooms plus the 2 m x 2 m table (§6.7/§6.8).
enum class RoomPreset : std::uint8_t {
  kLibrary,     ///< 7 x 10 m, high multipath
  kLaboratory,  ///< 9 x 12 m, medium multipath
  kHall,        ///< 7.2 x 10.4 m, low multipath
  kTable,       ///< 2 x 2 m table, 2 small arrays
};

enum class TargetKind : std::uint8_t { kHuman, kBottle, kFist };

/// Wire-level fault injected into every online report.
enum class PhaseFault : std::uint8_t {
  kNone,
  /// Replace every sample's phase_q with uniform noise (broken LO /
  /// firmware): magnitudes survive, phase is garbage. This is the
  /// condition the RSS-only auto fallback exists for.
  kScramble,
};

/// One target: what it is and where it goes.
struct TargetSpec {
  TargetKind kind = TargetKind::kHuman;
  Trajectory trajectory = Trajectory::stationary({0.0, 0.0});
  /// kFist only: hover height of the fist centre [m].
  double fist_z = 0.9;
  std::string label;
};

/// Pass/fail thresholds for the compliance runner.
struct ErrorBudget {
  /// Tracked-error bound [m]: mean error for static scenarios would be
  /// near zero under the allowance, so one RMSE bound covers both the
  /// static (<= grid-resolution scale) and moving (per-scenario RMSE)
  /// cases.
  double rmse_m = 0.5;
  /// Score humans with the paper's §6.2 width allowance (0.18 m).
  bool human_allowance = true;
  /// Multi-target: minimum fraction of ground-truth targets that must
  /// be matched to a live track per scored epoch, averaged.
  double min_match_rate = 0.0;
};

struct ScenarioSpec {
  std::string name;         ///< registry key; plain identifier chars
  std::string description;  ///< one line, shown by the runner
  RoomPreset room = RoomPreset::kLibrary;
  std::size_t num_arrays = 4;  ///< room presets only (table fixes 2)
  std::size_t num_tags = 21;   ///< the paper's "21+ tags" density
  std::size_t antennas_per_array = 8;
  std::uint64_t seed = 1;
  /// Serving-epoch cadence [s]; one frame is compiled per epoch.
  double epoch_dt = 0.4;
  /// Frames appended after every trajectory has finished (settling).
  double extra_time = 0.0;
  /// Lower bound on compiled frames (static scenarios need > 1 epoch
  /// for the tracker and statistics to mean anything).
  std::size_t min_epochs = 8;
  std::vector<TargetSpec> targets;
  /// Occlusion model for the online captures. The scenario engine
  /// defaults to the EM-shaped Fresnel profile; kBinary reproduces the
  /// legacy goldens' physics.
  sim::BlockageModel blockage = sim::BlockageModel::kFresnel;
  PhaseFault phase_fault = PhaseFault::kNone;
  /// Forwarded into PipelineOptions::rss_only.
  core::RssOnlyOptions rss;
  /// Install surveyed tag positions into the pipeline (required for
  /// any RSS scenario; harmless otherwise).
  bool survey_tags = false;
  ErrorBudget budget;
};

/// One serving epoch's ground truth.
struct Frame {
  double t = 0.0;                  ///< scenario clock [s]
  std::uint64_t watermark_us = 0;  ///< reader-clock epoch watermark
  std::vector<sim::CylinderTarget> targets;
  std::vector<rf::Vec2> truth;     ///< plan positions, aligned to targets
};

/// A spec bound to a concrete Scene and its frame sequence.
struct CompiledScenario {
  ScenarioSpec spec;
  sim::Scene scene;
  std::vector<Frame> frames;
};

/// The environment a room preset names.
[[nodiscard]] sim::Environment make_environment(RoomPreset room);

/// Materialize the spec: build the deployment (seeded), trace the
/// trajectories at epoch cadence and emit the frame list. Throws
/// std::invalid_argument on an empty name or no targets.
[[nodiscard]] CompiledScenario compile(const ScenarioSpec& spec);

}  // namespace dwatch::scenario
