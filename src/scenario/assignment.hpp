// Min-cost bipartite assignment (Hungarian algorithm, O(n^3)).
//
// Multi-target scoring needs estimates matched to ground-truth targets
// before errors mean anything: greedy nearest-neighbour matching can
// double-count one estimate and charge a perfectly-localized pair for a
// swap. The potentials formulation here handles rectangular problems
// (rows <= cols) directly.
#pragma once

#include <cstddef>
#include <vector>

#include "rf/geometry.hpp"

namespace dwatch::scenario {

/// Minimum-cost assignment of rows to distinct columns. `cost[r][c]` is
/// the cost of giving row r column c; requires rows <= cols and a
/// rectangular matrix (throws std::invalid_argument otherwise). Returns
/// assignment[r] = the column matched to row r.
[[nodiscard]] std::vector<std::size_t> min_cost_assignment(
    const std::vector<std::vector<double>>& cost);

/// Total cost of an assignment produced by min_cost_assignment.
[[nodiscard]] double assignment_cost(
    const std::vector<std::vector<double>>& cost,
    const std::vector<std::size_t>& assignment);

/// Convenience for scenario scoring: match estimates to truths by
/// Euclidean distance (the smaller side becomes the rows) and return
/// the per-matched-pair distances. min(n_est, n_truth) pairs come back;
/// unmatched members of the larger side are simply uncovered.
[[nodiscard]] std::vector<double> matched_errors(
    const std::vector<rf::Vec2>& estimates,
    const std::vector<rf::Vec2>& truths);

}  // namespace dwatch::scenario
