#!/usr/bin/env bash
# One-command pre-merge gate: everything CI runs, in the order a failure
# is cheapest to see.
#
#   1. tier-1: configure + build + full ctest of the default tree;
#   2. recovery: the self-healing label on the same tree (fast re-run,
#      isolates a recovery regression from an unrelated tier-1 one);
#   3. bench trajectory: every bench_*_json target runs and its
#      BENCH_*.json is staged at the repo root (committed per PR);
#      a bench that emits no JSON fails the gate;
#   4. asan_check: fault + obs + recovery labels under ASan/UBSan;
#   5. tsan_check: the concurrency label under TSan;
#   6. obs_off_check: configure+build+test a DWATCH_OBS=OFF tree.
#
# Usage: scripts/check.sh [jobs]   (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run() {
  echo
  echo "==> $*"
  "$@"
}

# --- 1. tier-1: default tree, full suite --------------------------------
run cmake -S . -B build
run cmake --build build --parallel "$JOBS"
run ctest --test-dir build --output-on-failure

# --- 2. recovery label, explicitly --------------------------------------
run ctest --test-dir build -L recovery --output-on-failure

# --- 3. bench trajectory: run every bench_*_json, stage at repo root ----
# Target discovery is from the build system itself, so a new
# bench_X_json target joins the gate without touching this script.
BENCH_TARGETS="$(cmake --build build --target help \
  | grep -oE 'bench_[a-z0-9_]+_json' | sort -u)"
if [ -z "${BENCH_TARGETS}" ]; then
  echo "check.sh: no bench_*_json targets found" >&2
  exit 1
fi
for target in ${BENCH_TARGETS}; do
  json="BENCH_${target#bench_}"
  json="${json%_json}.json"
  rm -f "build/${json}"
  run cmake --build build --target "${target}"
  if [ ! -s "build/${json}" ]; then
    echo "check.sh: ${target} emitted no JSON (build/${json} missing or empty)" >&2
    exit 1
  fi
  run cp "build/${json}" "${json}"
done

# --- 4. AddressSanitizer tree: stress|obs|recovery ----------------------
run cmake -S . -B build-asan -DDWATCH_SANITIZE=address \
  -DDWATCH_BUILD_BENCH=OFF -DDWATCH_BUILD_EXAMPLES=OFF
run cmake --build build-asan --parallel "$JOBS"
run cmake --build build-asan --target asan_check

# --- 5. ThreadSanitizer tree: tsan label --------------------------------
run cmake -S . -B build-tsan -DDWATCH_SANITIZE=thread \
  -DDWATCH_BUILD_BENCH=OFF -DDWATCH_BUILD_EXAMPLES=OFF
run cmake --build build-tsan --parallel "$JOBS"
run cmake --build build-tsan --target tsan_check

# --- 6. uninstrumented tree must stay green -----------------------------
run cmake --build build --target obs_off_check

echo
echo "check.sh: all gates passed"
