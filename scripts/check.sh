#!/usr/bin/env bash
# One-command pre-merge gate: everything CI runs, in the order a failure
# is cheapest to see.
#
#   1. tier-1: configure + build + full ctest of the default tree;
#   2. recovery: the self-healing label on the same tree (fast re-run,
#      isolates a recovery regression from an unrelated tier-1 one);
#      then the scenario label (the compliance suite) the same way,
#      then the streaming label (incremental-vs-batch parity + early
#      sealing through the serve layer);
#   3. bench trajectory: a PINNED Release(+LTO) tree is configured just
#      for benches, every bench_*_json target runs there, and its
#      BENCH_*.json is staged at the repo root (committed per PR).
#      A bench that emits no JSON fails the gate, and so does JSON whose
#      context reports a debug build or active CPU frequency scaling —
#      debug numbers must never enter the trajectory;
#   4. telemetry endpoint: the example self-scrapes every endpoint over
#      a real socket (strict JSON validation), then an external curl
#      scrapes /metrics and /healthz from outside the process — any
#      non-200 or invalid body fails the gate;
#   5. asan_check: fault + obs + recovery labels under ASan/UBSan;
#   6. tsan_check: the concurrency label under TSan;
#   7. obs_off_check: configure+build+test a DWATCH_OBS=OFF tree;
#   8. simd_off_check: configure+build+test a DWATCH_SIMD=OFF tree.
#
# Usage: scripts/check.sh [jobs]   (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run() {
  echo
  echo "==> $*"
  "$@"
}

# --- 1. tier-1: default tree, full suite --------------------------------
run cmake -S . -B build
run cmake --build build --parallel "$JOBS"
run ctest --test-dir build --output-on-failure

# --- 2. recovery label, explicitly --------------------------------------
run ctest --test-dir build -L recovery --output-on-failure

# --- 2b. scenario compliance suite, explicitly ---------------------------
# Every registered scenario through the full stack; isolates a scenario
# regression from an unrelated tier-1 one.
run ctest --test-dir build -L scenario --output-on-failure

# --- 2c. streaming parity suite, explicitly ------------------------------
# The incremental spectral path against the batch oracle over every
# registered scenario, plus the early-seal serve tests. The label is
# hyphenated (streaming-stress-tsan) so the same binaries also join the
# stress and tsan gates; -L matches on substrings of the label list.
run ctest --test-dir build -L streaming --output-on-failure

# --- 3. bench trajectory: pinned Release(+LTO) tree ---------------------
# Benches run in their own tree so the trajectory numbers are always
# optimized builds, whatever CMAKE_BUILD_TYPE the default tree uses.
# Target discovery is from the build system itself, so a new
# bench_X_json target joins the gate without touching this script.
run cmake -S . -B build-bench -DCMAKE_BUILD_TYPE=Release -DDWATCH_LTO=ON \
  -DDWATCH_BUILD_TESTS=OFF -DDWATCH_BUILD_EXAMPLES=OFF
run cmake --build build-bench --parallel "$JOBS"
BENCH_TARGETS="$(cmake --build build-bench --target help \
  | grep -oE 'bench_[a-z0-9_]+_json' | sort -u)"
if [ -z "${BENCH_TARGETS}" ]; then
  echo "check.sh: no bench_*_json targets found" >&2
  exit 1
fi
for target in ${BENCH_TARGETS}; do
  json="BENCH_${target#bench_}"
  json="${json%_json}.json"
  rm -f "build-bench/${json}"
  run cmake --build build-bench --target "${target}"
  if [ ! -s "build-bench/${json}" ]; then
    echo "check.sh: ${target} emitted no JSON (build-bench/${json} missing or empty)" >&2
    exit 1
  fi
  # Refuse to stage numbers from a debug build or a throttling CPU: the
  # context block is stamped by bench_reporter.hpp from the binary's own
  # build configuration, so these greps are authoritative.
  if grep -q '"library_build_type": "debug"' "build-bench/${json}"; then
    echo "check.sh: ${json} was produced by a DEBUG build; not staging" >&2
    exit 1
  fi
  if grep -q '"cpu_scaling_enabled": true' "build-bench/${json}"; then
    echo "check.sh: ${json} was produced with CPU frequency scaling on; not staging" >&2
    exit 1
  fi
  run cp "build-bench/${json}" "${json}"
done

# The streaming bench is ALSO a gate binary (it exits 1 on a violated
# invariant), but belt-and-braces: refuse to merge a BENCH_streaming.json
# whose counters admit a TTFF or scaling regression, even one produced
# by hand outside this script.
if grep -Eq '"ttff_regressed":\s*[1-9]' BENCH_streaming.json; then
  echo "check.sh: BENCH_streaming.json reports early-seal TTFF >= epoch-boundary TTFF" >&2
  exit 1
fi
if grep -Eq '"scaling_regressed":\s*[1-9]' BENCH_streaming.json; then
  echo "check.sh: BENCH_streaming.json reports super-linear fleet-epoch scaling" >&2
  exit 1
fi

# --- 3b. fleet overload smoke: anchors survive a 4x storm ---------------
# One seeded 64-zone / 4x-capacity pass through the admission
# controller (~seconds, already-built Release tree). The binary itself
# exits non-zero if ANY anchor-class epoch was shed or the tier ladder
# misbehaves below capacity — the invariant the brownout design hangs
# on, checked on every merge, not just when the full sweep is rerun.
if [ -x build-bench/bench/bench_fleet ]; then
  run ./build-bench/bench/bench_fleet --benchmark_filter=BM_FleetSmoke
else
  echo "check.sh: bench_fleet missing from the bench tree" >&2
  exit 1
fi

# --- 4. telemetry endpoint: self-scrape, then an external curl ----------
# The example's --selfcheck mode is the strict gate (real loopback
# socket, strict JSON validation, non-zero exit on any violation).
run ./build/examples/telemetry_endpoint --selfcheck
# Then prove an EXTERNAL client sees the same thing: serve for a few
# seconds and curl /metrics and /healthz from outside the process.
PORT_FILE="$(mktemp)"
./build/examples/telemetry_endpoint --selfcheck --serve-seconds 5 \
  --port-file "${PORT_FILE}" &
TELEMETRY_PID=$!
for _ in $(seq 1 50); do
  [ -s "${PORT_FILE}" ] && break
  sleep 0.1
done
TELEMETRY_PORT="$(cat "${PORT_FILE}")"
if [ -z "${TELEMETRY_PORT}" ]; then
  echo "check.sh: telemetry endpoint never wrote its port" >&2
  kill "${TELEMETRY_PID}" 2>/dev/null || true
  exit 1
fi
echo "==> curl 127.0.0.1:${TELEMETRY_PORT}/metrics + /healthz"
curl -fsS "http://127.0.0.1:${TELEMETRY_PORT}/metrics" \
  | grep -q '^dwatch_slo_budget_remaining' \
  || { echo "check.sh: /metrics scrape missing SLO gauges" >&2; exit 1; }
HEALTHZ_CODE="$(curl -s -o /dev/null -w '%{http_code}' \
  "http://127.0.0.1:${TELEMETRY_PORT}/healthz")"
case "${HEALTHZ_CODE}" in
  200|503) ;;  # both are well-formed health verdicts
  *) echo "check.sh: /healthz answered ${HEALTHZ_CODE}" >&2; exit 1 ;;
esac
wait "${TELEMETRY_PID}"
rm -f "${PORT_FILE}"

# --- 5. AddressSanitizer tree: stress|obs|recovery ----------------------
run cmake -S . -B build-asan -DDWATCH_SANITIZE=address \
  -DDWATCH_BUILD_BENCH=OFF -DDWATCH_BUILD_EXAMPLES=OFF
run cmake --build build-asan --parallel "$JOBS"
run cmake --build build-asan --target asan_check

# --- 6. ThreadSanitizer tree: tsan label --------------------------------
run cmake -S . -B build-tsan -DDWATCH_SANITIZE=thread \
  -DDWATCH_BUILD_BENCH=OFF -DDWATCH_BUILD_EXAMPLES=OFF
run cmake --build build-tsan --parallel "$JOBS"
run cmake --build build-tsan --target tsan_check

# --- 7. uninstrumented tree must stay green -----------------------------
run cmake --build build --target obs_off_check

# --- 8. scalar-only tree must stay green --------------------------------
run cmake --build build --target simd_off_check

echo
echo "check.sh: all gates passed"
