// Multi-target localization on the 2 m x 2 m table (paper Section 6.7):
// two small arrays + 26 tags watch three water bottles at once. Prints a
// likelihood heatmap with the estimates and ground truth.
#include <algorithm>
#include <cstdio>

#include "harness/experiment.hpp"
#include "sim/scene.hpp"

namespace {

using namespace dwatch;

void render(const core::LikelihoodGrid& grid,
            const std::vector<core::LocationEstimate>& hits,
            const std::vector<rf::Vec2>& truth) {
  const double max_v =
      *std::max_element(grid.values.begin(), grid.values.end());
  const std::size_t cx = std::max<std::size_t>(grid.nx / 48, 1);
  const std::size_t cy = std::max<std::size_t>(grid.ny / 24, 1);
  for (std::size_t iy = grid.ny; iy-- > 0;) {
    if (iy % cy != 0) continue;
    std::printf("  ");
    for (std::size_t ix = 0; ix < grid.nx; ix += cx) {
      const rf::Vec2 p = grid.point(ix, iy);
      char c = ' ';
      if (max_v > 0.0) {
        const double v = grid.at(ix, iy) / max_v;
        c = v > 0.8 ? '#' : v > 0.5 ? '+' : v > 0.25 ? '.' : ' ';
      }
      for (const rf::Vec2 t : truth) {
        if (rf::distance(p, t) < 0.05) c = 'X';  // ground truth
      }
      for (const auto& h : hits) {
        if (rf::distance(p, h.position) < 0.05) c = 'O';  // estimate
      }
      std::putchar(c);
    }
    std::putchar('\n');
  }
  std::printf("  (X = true bottle, O = estimate, #/+/. = likelihood)\n");
}

}  // namespace

int main() {
  rf::Rng deploy_rng(42);
  rf::Rng hardware_rng(9);
  auto deployment = sim::make_table_deployment(26, 8, deploy_rng);
  sim::Scene scene(std::move(deployment), sim::CaptureOptions{},
                   hardware_rng);

  harness::RunnerOptions options;
  options.pipeline.localizer.grid_step = 0.02;  // paper's 2x2 cm grid
  harness::ExperimentRunner runner(scene, options);
  rf::Rng rng(1);
  // Table arrays ship factory-calibrated in this demo.
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    runner.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
  }
  runner.collect_baselines(rng);

  const double z = sim::Environment::kTableHeight;
  const std::vector<rf::Vec2> spots{{0.5, 0.7}, {1.0, 1.5}, {1.5, 0.7}};
  std::vector<sim::CylinderTarget> bottles;
  for (const rf::Vec2 s : spots) {
    bottles.push_back(sim::CylinderTarget::bottle(s, z));
  }

  const auto hits = runner.run_fix_multi(bottles, 3, 0.3, rng);
  std::printf("three bottles on the table; %zu localized:\n", hits.size());
  for (const auto& hit : hits) {
    double best = 1e9;
    for (const rf::Vec2 s : spots) {
      best = std::min(best, rf::distance(hit.position, s));
    }
    std::printf("  bottle at (%.2f, %.2f), %.1f cm from truth "
                "(%zu arrays agree)\n",
                hit.position.x, hit.position.y, 100.0 * best,
                hit.consensus);
  }
  render(runner.pipeline().likelihood_grid(), hits, spots);
  return 0;
}
