// Scenario walkthrough: replay the registry's fist-tracking case and
// print the tracked position against ground truth, epoch by epoch.
//
//   $ ./scenario_walkthrough [scenario_name]
//
// Defaults to table_fist_letter (§6.8 letter tracing). Any registry
// name works — see `all_scenarios()` in src/scenario/registry.hpp.
#include <cstdio>
#include <string>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

int main(int argc, char** argv) {
  using namespace dwatch;

  const std::string name = argc > 1 ? argv[1] : "table_fist_letter";
  const scenario::ScenarioSpec* spec = scenario::find_scenario(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'; registry has:\n",
                 name.c_str());
    for (const scenario::ScenarioSpec& s : scenario::all_scenarios()) {
      std::fprintf(stderr, "  %-28s %s\n", s.name.c_str(),
                   s.description.c_str());
    }
    return 2;
  }

  std::printf("scenario : %s\n", spec->name.c_str());
  std::printf("about    : %s\n", spec->description.c_str());

  scenario::ScenarioRunner runner;
  const scenario::ScenarioResult result = runner.run(*spec);

  std::printf("\n  t[s]   truth (x, y)      tracked (x, y)    err[m]\n");
  for (const scenario::EpochRecord& rec : result.records) {
    if (rec.truth.empty()) continue;
    const rf::Vec2 truth = rec.truth.front();
    if (rec.tracked.empty()) {
      std::printf("  %4.1f   (%5.2f, %5.2f)   (  --- ,  --- )      ---\n",
                  rec.t, truth.x, truth.y);
      continue;
    }
    const rf::Vec2 got = rec.tracked.front();
    std::printf("  %4.1f   (%5.2f, %5.2f)   (%5.2f, %5.2f)    %5.3f\n",
                rec.t, truth.x, truth.y, got.x, got.y,
                rf::distance(got, truth));
  }

  const scenario::ScenarioMetrics& m = result.metrics;
  std::printf("\noutcome  : %s (%s)\n", scenario::to_string(result.outcome),
              result.detail.c_str());
  std::printf("epochs   : %zu (%zu scored, %zu valid fixes, %zu rss)\n",
              m.epochs, m.scored_epochs, m.valid_fixes, m.rss_epochs);
  std::printf("error    : rmse %.3f m, mean %.3f m, max %.3f m (budget %.2f)\n",
              m.rmse, m.mean_error, m.max_error, spec->budget.rmse_m);
  std::printf("latency  : p50 %.0f us, p99 %.0f us per epoch\n",
              m.p50_epoch_us, m.p99_epoch_us);
  return result.outcome == scenario::Outcome::kPass ? 0 : 1;
}
