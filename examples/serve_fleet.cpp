// Serving-layer walkthrough: one process, many rooms.
//
//   1. build a LocalizationService with three zones (each its own
//      arrays, bounds, calibration, and DWatchPipeline) sharing one
//      thread pool;
//   2. bind reader identities to (zone, array) slots in the
//      SessionRouter and stream RoAccessReports through it — the
//      router demultiplexes the fleet's traffic with no per-zone code;
//   3. run four epochs and print every zone's fixes — each answer is
//      bit-identical to a standalone pipeline fed the same reports;
//   4. overload the scheduler (more sealed epochs than the per-zone
//      queue cap) to show bounded backpressure: the OLDEST epochs are
//      shed and counted, the newest are served.
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"
#include "serve/service.hpp"

namespace {

using namespace dwatch;

std::vector<rf::UniformLinearArray> zone_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
  };
}

/// Each zone watches a different spot so cross-zone leakage would be
/// visible immediately.
rf::Vec2 zone_target(std::size_t zone) {
  return {2.0 + 0.5 * static_cast<double>(zone),
          3.0 + 0.7 * static_cast<double>(zone)};
}

linalg::CMatrix synth(const rf::UniformLinearArray& array, double angle_rad,
                      double scale, std::uint64_t seed) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1.25}, array.center()};
  p.length = 10.0;
  p.aoa = angle_rad;
  p.gain = {0.01, 0.0};
  const std::vector<rf::PropagationPath> paths{p};
  rf::SnapshotOptions opts;
  opts.num_snapshots = 16;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  rf::Rng rng(seed);
  const std::vector<double> path_scale{scale};
  return rf::synthesize_snapshots(array, paths, path_scale, opts, rng);
}

rfid::TagObservation wire_obs(const linalg::CMatrix& x,
                              const rfid::Epc96& epc) {
  rfid::TagObservation obs;
  obs.epc = epc;
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(x(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }
  return obs;
}

/// Reader identity convention for this fleet: reader 100*(zone+1)+array.
std::uint32_t reader_id(std::size_t zone, std::size_t array) {
  return static_cast<std::uint32_t>(100 * (zone + 1) + array);
}

rfid::RoAccessReport epoch_report(std::size_t zone, std::size_t array,
                                  std::uint64_t epoch) {
  const auto arrays = zone_arrays();
  const double angle = arrays[array].arrival_angle_planar(zone_target(zone));
  const std::uint64_t seed = 1000 * zone + 10 * epoch + array + 1;
  rfid::RoAccessReport report;
  report.message_id = static_cast<std::uint32_t>(seed);
  report.observations.push_back(
      wire_obs(synth(arrays[array], angle, 0.2, seed),
               rfid::Epc96::for_tag_index(
                   static_cast<std::uint32_t>(10 * zone + array + 1))));
  return report;
}

}  // namespace

int main() {
  constexpr std::size_t kZones = 3;
  constexpr std::uint64_t kEpochs = 4;

  // --- 1. the fleet -------------------------------------------------
  serve::ServiceOptions opts;
  opts.num_workers = 0;       // hardware concurrency
  opts.max_queue_per_zone = 4;
  serve::LocalizationService service(opts);
  for (std::size_t z = 0; z < kZones; ++z) {
    serve::ZoneConfig cfg;
    cfg.name = "zone" + std::to_string(z);
    cfg.arrays = zone_arrays();
    cfg.bounds = core::SearchBounds{{0.0, 0.0}, {7.0, 10.0}};
    const std::size_t id = service.add_zone(std::move(cfg));

    // Per-zone state: baselines for this room's tags, reader bindings.
    for (std::size_t a = 0; a < 2; ++a) {
      const double angle =
          zone_arrays()[a].arrival_angle_planar(zone_target(z));
      service.zone(id).pipeline().add_baseline(
          a,
          rfid::Epc96::for_tag_index(
              static_cast<std::uint32_t>(10 * z + a + 1)),
          synth(zone_arrays()[a], angle, 1.0, 500 + 10 * z + a));
      service.bind_reader(reader_id(z, a), id, a);
    }
  }
  std::printf("fleet: %zu zones on one pool, reader->zone routing bound\n",
              service.num_zones());

  // --- 2+3. stream epochs through the router ------------------------
  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    for (std::size_t z = 0; z < kZones; ++z) service.begin_epoch(z);
    for (std::size_t z = 0; z < kZones; ++z) {
      for (std::size_t a = 0; a < 2; ++a) {
        (void)service.router().route(reader_id(z, a), epoch_report(z, a, e));
      }
    }
    (void)service.run_pending();
  }
  for (std::size_t z = 0; z < kZones; ++z) {
    const rf::Vec2 want = zone_target(z);
    std::printf("zone%zu fixes (target %.2f, %.2f):\n", z, want.x, want.y);
    for (const serve::ZoneFix& fix : service.fixes(z)) {
      std::printf("  epoch %llu: (%.3f, %.3f) valid=%d err=%.2fm\n",
                  static_cast<unsigned long long>(fix.seq),
                  fix.result.estimate.position.x,
                  fix.result.estimate.position.y,
                  fix.result.estimate.valid ? 1 : 0,
                  rf::distance(fix.result.estimate.position, want));
    }
  }

  // --- 4. bounded backpressure --------------------------------------
  // Seal 7 epochs for zone 0 without draining: cap is 4, so the three
  // OLDEST are shed (counted, never silent) and the four newest served.
  for (std::uint64_t e = 0; e < 7; ++e) {
    service.begin_epoch(0);
    (void)service.router().route(reader_id(0, 0), epoch_report(0, 0, e));
    (void)service.router().route(reader_id(0, 1), epoch_report(0, 1, e));
  }
  const std::size_t processed = service.run_pending();
  const serve::ZoneServingStats& z0 = service.zone_stats(0);
  std::printf(
      "overload: sealed 7, served %zu, shed %llu oldest "
      "(queue never past %zu)\n",
      processed, static_cast<unsigned long long>(z0.epochs_shed),
      opts.max_queue_per_zone);

  const serve::ServiceStats stats = service.stats();
  std::printf(
      "fleet totals: submitted=%llu processed=%llu shed=%llu "
      "reports=%llu valid=%llu\n",
      static_cast<unsigned long long>(stats.epochs_submitted),
      static_cast<unsigned long long>(stats.epochs_processed),
      static_cast<unsigned long long>(stats.epochs_shed),
      static_cast<unsigned long long>(stats.reports_routed),
      static_cast<unsigned long long>(stats.fixes_valid));
  return 0;
}
