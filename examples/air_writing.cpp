// Air writing ("virtual screen touch", paper Section 6.8): track a fist
// writing the letter O above the table and render the recovered
// trajectory next to the template.
#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

#include "core/tracker.hpp"
#include "harness/experiment.hpp"
#include "harness/stats.hpp"
#include "sim/scene.hpp"

namespace {

using namespace dwatch;

void render_trajectories(const std::vector<rf::Vec2>& truth,
                         const std::vector<std::optional<rf::Vec2>>& est) {
  constexpr int kW = 40;
  constexpr int kH = 20;
  std::vector<std::string> canvas(kH, std::string(kW, ' '));
  auto plot = [&](rf::Vec2 p, char c) {
    const int x = static_cast<int>(p.x / 2.0 * (kW - 1));
    const int y = static_cast<int>(p.y / 2.0 * (kH - 1));
    if (x >= 0 && x < kW && y >= 0 && y < kH) {
      char& cell = canvas[kH - 1 - y][x];
      if (cell == ' ' || c == 'o') cell = c;
    }
  };
  for (const rf::Vec2 p : truth) plot(p, '.');
  for (const auto& p : est) {
    if (p) plot(*p, 'o');
  }
  for (const auto& row : canvas) std::printf("  |%s|\n", row.c_str());
  std::printf("  ('.' = pen template, 'o' = recovered trajectory)\n");
}

}  // namespace

int main() {
  rf::Rng deploy_rng(42);
  rf::Rng hardware_rng(9);
  auto deployment = sim::make_table_deployment(26, 8, deploy_rng);
  sim::Scene scene(std::move(deployment), sim::CaptureOptions{},
                   hardware_rng);

  harness::RunnerOptions options;
  options.pipeline.localizer.grid_step = 0.02;
  harness::ExperimentRunner runner(scene, options);
  rf::Rng rng(1);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    runner.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
  }
  runner.collect_baselines(rng);

  // The letter "O": a 35 cm radius circle written at ~0.5 m/s.
  std::vector<rf::Vec2> pen;
  for (double a = 90.0; a <= 450.0; a += 15.0) {
    const double rad = rf::deg2rad(a);
    pen.push_back({1.0 + 0.35 * std::cos(rad), 1.0 + 0.35 * std::sin(rad)});
  }

  core::TrackerOptions topt;
  topt.dt = 0.1;
  topt.gate_distance = 0.4;
  core::AlphaBetaTracker tracker(topt);

  std::vector<std::optional<rf::Vec2>> recovered;
  std::vector<double> errors;
  for (const rf::Vec2 wp : pen) {
    const sim::CylinderTarget fist = sim::CylinderTarget::fist(
        wp, sim::Environment::kTableHeight + 0.15);
    const std::vector<sim::CylinderTarget> targets{fist};
    const auto fix = runner.run_fix_best_effort(targets, rng);
    std::optional<rf::Vec2> smoothed;
    if (fix.valid) {
      smoothed = tracker.update(fix.position);
    } else {
      smoothed = tracker.coast();
    }
    recovered.push_back(smoothed);
    if (smoothed) {
      errors.push_back(harness::point_error(*smoothed, wp));
    }
  }

  std::printf("air-writing 'O' with %zu pen samples, %zu tracked:\n\n",
              pen.size(), errors.size());
  render_trajectories(pen, recovered);
  if (!errors.empty()) {
    std::printf("\nmedian tracking error: %.1f cm (paper: 5.8 cm with 26 "
                "tags)\n",
                100.0 * harness::median(errors));
  }
  return 0;
}
