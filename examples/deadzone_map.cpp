// Deadzone map (paper Section 8): where can this deployment NOT see a
// person? Prints an ASCII map of how many arrays observe a blockage at
// each spot and shows the paper's mitigation — adding cheap tags —
// shrinking the deadzones.
#include <cstdio>

#include "harness/deadzone.hpp"

namespace {

using namespace dwatch;

void render(const harness::DeadzoneMap& map, const sim::Scene& scene) {
  for (std::size_t iy = map.ny; iy-- > 0;) {
    std::printf("  ");
    for (std::size_t ix = 0; ix < map.nx; ++ix) {
      const rf::Vec2 p = map.point(ix, iy);
      bool is_tag = false;
      for (const auto& tag : scene.deployment().tags) {
        if (rf::distance(p, tag.position.xy()) < map.step / 2) {
          is_tag = true;
        }
      }
      const std::uint8_t n = map.at(ix, iy);
      std::putchar(is_tag ? 'T' : (n == 0 ? '.' : static_cast<char>('0' + n)));
    }
    std::putchar('\n');
  }
}

sim::Scene make_scene(std::size_t tags) {
  rf::Rng rng(42);
  rf::Rng hw(7);
  sim::DeploymentOptions dopt;
  dopt.num_tags = tags;
  auto dep =
      sim::make_room_deployment(sim::Environment::library(), dopt, rng);
  return sim::Scene(std::move(dep), sim::CaptureOptions{}, hw);
}

}  // namespace

int main() {
  for (const std::size_t tags : {10u, 21u, 40u}) {
    const sim::Scene scene = make_scene(tags);
    const harness::DeadzoneMap map = harness::compute_deadzone_map(scene, 0.4);
    std::printf(
        "\nlibrary with %zu tags — arrays observing each spot "
        "(T = tag, '.' = DEADZONE):\n",
        tags);
    render(map, scene);
    std::printf("  localizable (>=2 arrays): %.0f%% of the room\n",
                100.0 * map.coverage_fraction(2));
  }
  std::printf(
      "\npaper Section 8: \"the tags are very cheap so we can increase\n"
      "the number of tags to reduce the amount of deadzones.\"\n");
  return 0;
}
