// Intrusion detection: continuous monitoring of a room with a tracker.
//
// A person enters the laboratory, walks a diagonal path and leaves.
// Every 0.1 s epoch the pipeline produces (or abstains from) a fix; the
// alpha-beta tracker smooths fixes and coasts through deadzones. An
// "alarm" is raised when a track is first established — the paper's
// headline application (device-free: the intruder carries nothing).
#include <cstdio>

#include "core/tracker.hpp"
#include "harness/experiment.hpp"
#include "sim/scene.hpp"

int main() {
  using namespace dwatch;

  rf::Rng deploy_rng(42);
  rf::Rng hardware_rng(7);
  sim::DeploymentOptions layout;
  auto deployment = sim::make_room_deployment(
      sim::Environment::laboratory(), layout, deploy_rng);
  sim::Scene scene(std::move(deployment), sim::CaptureOptions{},
                   hardware_rng);

  harness::RunnerOptions options;
  harness::ExperimentRunner runner(scene, options);
  rf::Rng rng(1);
  runner.calibrate(rng);
  runner.collect_baselines(rng);
  std::printf("monitoring the %.0fx%.0f m laboratory...\n",
              scene.deployment().env.width, scene.deployment().env.depth);

  core::TrackerOptions topt;
  topt.dt = 0.1;            // paper: 0.1 s transmission interval
  topt.gate_distance = 1.0;  // ~max walking distance per epoch + margin
  core::AlphaBetaTracker tracker(topt);

  bool alarmed = false;
  // Walk from (1.5, 2) to (7, 9.5) at ~1.3 m/s, one epoch per 0.1 s.
  const int steps = 24;
  for (int k = 0; k <= steps; ++k) {
    const double t = static_cast<double>(k) / steps;
    const rf::Vec2 truth{1.5 + 5.5 * t, 2.0 + 7.5 * t};
    const sim::CylinderTarget person = sim::CylinderTarget::human(truth);
    const std::vector<sim::CylinderTarget> targets{person};
    const auto fix = runner.run_fix(targets, rng);

    std::optional<rf::Vec2> track;
    if (fix.valid && fix.consensus >= 2) {
      track = tracker.update(fix.position);
      if (!alarmed) {
        std::printf("[t=%4.1fs] ALARM: presence detected at (%.1f, %.1f)\n",
                    0.1 * k, track->x, track->y);
        alarmed = true;
      }
    } else {
      track = tracker.coast();
    }

    if (track) {
      std::printf("[t=%4.1fs] track (%.2f, %.2f)  truth (%.2f, %.2f)  "
                  "err %.2f m%s\n",
                  0.1 * k, track->x, track->y, truth.x, truth.y,
                  harness::human_error(*track, truth),
                  fix.valid ? "" : "  (coasting)");
    } else {
      std::printf("[t=%4.1fs] searching... truth (%.2f, %.2f)\n", 0.1 * k,
                  truth.x, truth.y);
    }
  }
  std::printf(alarmed ? "\nintruder tracked across the room.\n"
                      : "\nno alarm raised (increase tags/reflectors).\n");
  return 0;
}
