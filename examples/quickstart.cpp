// Quickstart: the whole D-Watch workflow in one file.
//
//   1. deploy 4 reader arrays + 21 tags in the paper's library room;
//   2. wirelessly calibrate each array's random RF-port phase offsets
//      from normal tag traffic (no link interruption);
//   3. collect the empty-room P-MUSIC baselines;
//   4. a person walks in: per-tag spectra drop where paths are blocked,
//      and the drops from several arrays triangulate the person.
//
// Everything runs on the built-in simulator — no hardware needed. The
// same DWatchPipeline consumes real LLRP tag reports unchanged.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "harness/experiment.hpp"
#include "recovery/self_healing.hpp"
#include "sim/scene.hpp"

int main() {
  using namespace dwatch;

  // --- deployment --------------------------------------------------------
  rf::Rng deploy_rng(42);   // tag placement
  rf::Rng hardware_rng(7);  // per-port phase offsets (the Fig. 3 problem)
  sim::DeploymentOptions layout;  // 4 arrays x 8 antennas, 21 tags
  sim::Deployment deployment = sim::make_room_deployment(
      sim::Environment::library(), layout, deploy_rng);
  sim::Scene scene(std::move(deployment), sim::CaptureOptions{},
                   hardware_rng);
  std::printf("deployed %zu arrays and %zu tags in a %.0fx%.0f m library\n",
              scene.num_arrays(), scene.num_tags(),
              scene.deployment().env.width, scene.deployment().env.depth);

  // --- pipeline ----------------------------------------------------------
  harness::RunnerOptions options;  // defaults follow the paper
  harness::ExperimentRunner runner(scene, options);
  rf::Rng rng(1);

  runner.calibrate(rng);  // Section 4.1: GA+GD subspace calibration
  for (std::size_t a = 0; a < runner.calibration_reports().size(); ++a) {
    std::printf("array %zu calibrated, residual phase error %.3f rad\n", a,
                runner.calibration_reports()[a].mean_error_rad);
  }

  const std::size_t baselines = runner.collect_baselines(rng);
  std::printf("collected %zu empty-room baselines (a few seconds of tag "
              "traffic, not hours of fingerprinting)\n",
              baselines);

  // --- an intruder appears ------------------------------------------------
  const rf::Vec2 intruder{3.0, 4.0};
  const sim::CylinderTarget person = sim::CylinderTarget::human(intruder);
  const std::vector<sim::CylinderTarget> targets{person};
  const core::LocationEstimate fix = runner.run_fix(targets, rng);

  if (fix.valid) {
    std::printf(
        "\nintruder detected at (%.2f, %.2f) m — truth (%.2f, %.2f), "
        "error %.1f cm, %zu arrays agree\n",
        fix.position.x, fix.position.y, intruder.x, intruder.y,
        100.0 * harness::human_error(fix.position, intruder),
        fix.consensus);
  } else {
    std::printf("\nno confident fix this epoch (deadzone) — a moving "
                "target is caught on the next epochs\n");
  }

  // The drops behind the fix, per array:
  const auto& evidence = runner.pipeline().evidence();
  for (std::size_t a = 0; a < evidence.size(); ++a) {
    std::printf("array %zu saw %zu path drop(s)\n", a,
                evidence[a].drops.size());
  }

  // --- teardown: park the state for the next run --------------------------
  // A long-lived deployment wraps the pipeline in a RecoveryCoordinator
  // (drift watchdog + crash-safe checkpoints; see examples/self_healing
  // for the full loop). Here we just write one snapshot on exit.
  std::vector<core::WirelessCalibrator> calibrators;
  for (const rf::UniformLinearArray& arr : scene.deployment().arrays) {
    calibrators.emplace_back(arr.spacing(), arr.lambda());
  }
  recovery::RecoveryCoordinator coordinator(
      runner.pipeline(), std::move(calibrators),
      recovery::CheckpointStore(
          (std::filesystem::temp_directory_path() / "dwatch_quickstart.bin")
              .string()));
  (void)coordinator.end_epoch(0, {});
  const recovery::RecoveryStats& recovery_stats = coordinator.stats();
  std::printf("\nrecovery: %llu checkpoint(s) written, %llu recalibrations "
              "accepted, %llu rolled back — state survives a crash\n",
              static_cast<unsigned long long>(recovery_stats.checkpoints_written),
              static_cast<unsigned long long>(recovery_stats.recalibrations_accepted),
              static_cast<unsigned long long>(
                  recovery_stats.recalibrations_rolled_back));
  return 0;
}
