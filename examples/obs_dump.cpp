// Observability dump: replay a simulated D-Watch deployment with the
// obs layer switched on and write the three telemetry artifacts:
//
//   metrics.txt   Prometheus text exposition (counters, gauges,
//                 per-stage latency histograms)
//   trace.json    Chrome trace-event JSON — open chrome://tracing or
//                 https://ui.perfetto.dev and load the file
//   events.jsonl  structured event log (JSON Lines): calibration
//                 solves, outlier rejections, transport retries,
//                 K-of-N exclusions, per-epoch confidence reports
//
// Usage: dwatch_obs_dump [output_dir]     (default: current directory)
//
// The replay deliberately exercises every event source: a lossy LLRP
// control link (retries + timeouts), a duplicated tag report
// (quarantine), a target parked next to a tag (Section 4.3 ghost
// rejection at the other arrays), and a dead reader (K-of-N exclusion).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "rfid/llrp_session.hpp"
#include "rfid/report_stream.hpp"
#include "rfid/robust_client.hpp"
#include "sim/scene.hpp"

namespace {

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  os << contents;
  return true;
}

std::size_t count_events(const std::vector<std::string>& lines,
                         const std::string& type) {
  std::size_t n = 0;
  const std::string needle = "\"type\":\"" + type + "\"";
  for (const std::string& line : lines) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dwatch;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  obs::set_enabled(true);

  // --- deployment + calibration (emits calibration.solve events) --------
  rf::Rng deploy_rng(42);
  rf::Rng hardware_rng(7);
  sim::Deployment deployment = sim::make_room_deployment(
      sim::Environment::library(), sim::DeploymentOptions{}, deploy_rng);
  sim::Scene scene(std::move(deployment), sim::CaptureOptions{},
                   hardware_rng);

  harness::RunnerOptions options;
  options.through_wire = true;  // exercise llrp.decode_report spans
  harness::ExperimentRunner runner(scene, options);
  rf::Rng rng(1);
  runner.calibrate(rng);
  runner.collect_baselines(rng);

  // --- a lossy LLRP control link (emits transport.* events) --------------
  rfid::ReaderSession session;
  std::size_t wire_attempt = 0;
  rfid::RobustSessionClient client(
      [&session, &wire_attempt](std::span<const std::uint8_t> request)
          -> std::optional<std::vector<std::uint8_t>> {
        // Every request's FIRST wire attempt vanishes: each control
        // request costs one timeout + one retry, deterministically.
        if (wire_attempt++ % 2 == 0) return std::nullopt;
        return session.handle(request);
      });
  rfid::RoSpec rospec;
  rospec.rospec_id = 1;
  const bool connected = client.connect(rospec);
  runner.pipeline().note_transport(client.stats().retries,
                                   client.stats().timeouts);

  // --- a duplicated tag report (emits report_stream.duplicate_*) ---------
  const std::size_t m =
      scene.deployment().arrays[0].num_elements();
  rfid::SnapshotAssembler assembler(m, 4);
  const rfid::TagObservation dup_obs =
      scene.capture_observation(0, 0, {}, rng);
  (void)assembler.ingest(dup_obs);
  (void)assembler.ingest(dup_obs);  // retransmission -> quarantined
  runner.pipeline().note_reports_dropped(
      assembler.stats().duplicate_reports_quarantined);

  // --- epoch 1: clean fix (emits pipeline.confidence) --------------------
  const rf::Vec2 truth{3.0, 4.0};
  const std::vector<sim::CylinderTarget> person{
      sim::CylinderTarget::human(truth)};
  runner.run_epoch(person, rng);
  const core::ConfidentEstimate fix1 =
      runner.pipeline().localize_with_confidence(true);

  // --- epoch 2: target parked ON a tag's direct path ---------------------
  // A pre-reflection-leg blockage travels with that tag to every array,
  // so the Section 4.3 filter rejects its uncorroborated angles
  // (emits pipeline.ghost_rejected).
  const rf::Vec3 tag0 = scene.deployment().tags[0].position;
  const std::vector<sim::CylinderTarget> lurker{
      sim::CylinderTarget::human({tag0.x + 0.25, tag0.y})};
  runner.run_epoch(lurker, rng);
  const core::ConfidentEstimate fix2 =
      runner.pipeline().localize_with_confidence(true);

  // --- epoch 3: a reader dies (emits pipeline.array_excluded) ------------
  runner.pipeline().set_array_health(scene.num_arrays() - 1, false);
  runner.run_epoch(person, rng);
  const core::ConfidentEstimate fix3 =
      runner.pipeline().localize_with_confidence(true);
  runner.pipeline().set_array_health(scene.num_arrays() - 1, true);

  // --- dump --------------------------------------------------------------
  const std::vector<std::string> events = obs::EventLog::global().snapshot();
  const bool ok =
      write_file(out_dir + "/metrics.txt",
                 obs::MetricsRegistry::global().prometheus_text()) &&
      write_file(out_dir + "/trace.json",
                 obs::TraceRecorder::global().chrome_json()) &&
      write_file(out_dir + "/events.jsonl", obs::EventLog::global().text());
  if (!ok) return 1;

  std::printf("transport: connected=%d retries=%zu timeouts=%zu\n",
              connected ? 1 : 0, client.stats().retries,
              client.stats().timeouts);
  std::printf("fixes: epoch1 (%.2f, %.2f) valid=%d | epoch2 degraded=%d | "
              "epoch3 arrays_excluded=%zu\n",
              fix1.estimate.position.x, fix1.estimate.position.y,
              fix1.estimate.valid ? 1 : 0,
              fix2.confidence.degraded() ? 1 : 0,
              fix3.confidence.arrays_excluded);
  std::printf("trace: %zu spans (%llu overwritten)\n",
              obs::TraceRecorder::global().size(),
              static_cast<unsigned long long>(
                  obs::TraceRecorder::global().dropped()));
  std::printf("events: %zu total — calibration.solve=%zu "
              "ghost_rejected=%zu transport.retry=%zu "
              "duplicate_quarantined=%zu array_excluded=%zu "
              "confidence=%zu\n",
              events.size(), count_events(events, "calibration.solve"),
              count_events(events, "pipeline.ghost_rejected"),
              count_events(events, "transport.retry"),
              count_events(events, "report_stream.duplicate_quarantined"),
              count_events(events, "pipeline.array_excluded"),
              count_events(events, "pipeline.confidence"));
  std::printf("wrote %s/metrics.txt, trace.json, events.jsonl\n",
              out_dir.c_str());
  return 0;
}
