// Self-healing walkthrough: calibration drift, detection, background
// recalibration, crash-safe checkpointing, and restore.
//
//   1. deploy the library room and calibrate perfectly;
//   2. inject a slow per-element phase creep (0.1 rad/epoch) — cable
//      aging / thermal drift the paper's one-shot calibration cannot
//      survive;
//   3. a RecoveryCoordinator probes known-LoS anchor tags each epoch,
//      detects the drift with an EWMA+CUSUM watchdog, re-runs the
//      GA+GD calibration off the fix path, and hot-swaps the result;
//   4. every epoch it writes a crash-safe snapshot — one write is
//      killed halfway through to show the previous snapshot survives;
//   5. the "process" dies and a cold replacement restores the latest
//      valid snapshot and keeps localizing.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "faults/fault_injector.hpp"
#include "harness/experiment.hpp"
#include "recovery/self_healing.hpp"
#include "sim/scene.hpp"

namespace {

constexpr std::uint64_t kSeed = 20160901;
constexpr std::size_t kEpochs = 12;
constexpr double kDriftRate = 0.1;  // rad/epoch

dwatch::sim::Scene make_scene() {
  dwatch::rf::Rng rng(kSeed);
  dwatch::sim::Deployment dep = dwatch::sim::make_room_deployment(
      dwatch::sim::Environment::library(), dwatch::sim::DeploymentOptions{},
      rng);
  return dwatch::sim::Scene(std::move(dep), dwatch::sim::CaptureOptions{},
                            rng);
}

const char* state_name(dwatch::recovery::DriftState s) {
  switch (s) {
    case dwatch::recovery::DriftState::kLearning: return "learning";
    case dwatch::recovery::DriftState::kHealthy: return "healthy";
    case dwatch::recovery::DriftState::kDrifting: return "DRIFTING";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace dwatch;

  const sim::Scene scene = make_scene();
  const auto& env = scene.deployment().env;
  core::PipelineOptions popts;
  popts.localizer.grid_step = 0.1;
  core::DWatchPipeline pipe(scene.deployment().arrays,
                            core::SearchBounds{{0, 0}, {env.width, env.depth}},
                            popts);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    pipe.set_calibration(a, scene.reader(a).phase_offsets());
    rf::Rng rng(kSeed + 100 + a);
    const rfid::RoAccessReport report = scene.capture_report(a, {}, rng, 0, 1);
    for (const rfid::TagObservation& obs : report.observations) {
      pipe.add_baseline(a, obs);
    }
  }
  std::printf("calibrated %zu arrays, baselines captured\n",
              scene.num_arrays());

  // The drifting hardware.
  faults::FaultRates rates;
  rates.slow_phase_drift = kDriftRate;
  faults::FaultInjector injector(faults::FaultPlan(7, rates));

  // The healing loop around the pipeline.
  const std::string snapshot_path =
      (std::filesystem::temp_directory_path() / "dwatch_self_healing.bin")
          .string();
  recovery::RecoveryOptions ropt;
  ropt.watchdog.warmup_epochs = 2;
  ropt.watchdog.cusum_slack = 0.1;
  ropt.watchdog.cusum_threshold = 1.0;
  ropt.background = false;  // keep the walkthrough single-threaded
  ropt.checkpoint_every = 1;
  std::vector<core::WirelessCalibrator> calibrators;
  for (const rf::UniformLinearArray& arr : scene.deployment().arrays) {
    calibrators.emplace_back(arr.spacing(), arr.lambda());
  }
  recovery::RecoveryCoordinator coord(pipe, std::move(calibrators),
                                      recovery::CheckpointStore(snapshot_path),
                                      ropt);

  std::vector<std::vector<std::size_t>> anchor_tags;
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    anchor_tags.push_back(harness::nearest_tags(scene, a, 4));
  }

  std::printf("\nepoch  error[m]  watchdog(array0)  note\n");
  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    const rf::Vec2 truth{2.6 + 0.2 * static_cast<double>(epoch),
                         3.6 + 0.25 * static_cast<double>(epoch)};
    const sim::CylinderTarget targets[] = {sim::CylinderTarget::human(truth)};
    pipe.begin_epoch(1000 * (epoch + 1));

    std::vector<std::vector<core::CalibrationMeasurement>> anchors(
        scene.num_arrays());
    for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
      rf::Rng rng(kSeed + 1000 * (epoch + 1) + a);
      rfid::RoAccessReport report = scene.capture_report(
          a, targets, rng, static_cast<std::uint32_t>(epoch),
          1000 * (epoch + 1) + 10);
      injector.corrupt_report(report, epoch, a);  // the drift strikes here
      for (const rfid::TagObservation& obs : report.observations) {
        (void)pipe.observe(a, obs);
      }
      anchors[a] =
          harness::anchor_measurements(scene, a, report, anchor_tags[a]);
    }
    const core::ConfidentEstimate fix = pipe.localize_with_confidence(true);

    // Epoch 5's checkpoint dies halfway through its write: the store
    // leaves tmp wreckage, keeps the previous snapshot, and reports it.
    recovery::CheckpointStore::CrashFilter crash;
    if (epoch == 5) {
      crash = [](std::size_t bytes) {
        return std::optional<std::size_t>(bytes / 2);
      };
    }

    const auto before = coord.stats();
    const std::vector<std::size_t> invalidated =
        coord.end_epoch(epoch, anchors, crash);
    for (const std::size_t a : invalidated) {
      rf::Rng rng(kSeed + 900'000 + 1000 * (epoch + 1) + a);
      rfid::RoAccessReport report = scene.capture_report(
          a, {}, rng, static_cast<std::uint32_t>(epoch),
          1000 * (epoch + 1) + 5);
      injector.corrupt_report(report, epoch, a);
      for (const rfid::TagObservation& obs : report.observations) {
        pipe.add_baseline(a, obs);
      }
    }

    std::string note;
    const auto& after = coord.stats();
    if (after.recalibrations_accepted > before.recalibrations_accepted) {
      note = "recalibrated + hot-swapped, baselines re-captured";
    } else if (after.recalibrations_rolled_back >
               before.recalibrations_rolled_back) {
      note = "candidate worse than incumbent: rolled back";
    }
    if (after.checkpoint_crashes > before.checkpoint_crashes) {
      note += note.empty() ? "" : "; ";
      note += "checkpoint write crashed mid-file (previous kept)";
    }
    std::printf("%5zu  %8.2f  %-16s  %s\n", epoch,
                rf::distance(fix.estimate.position, truth),
                state_name(coord.watchdog().state(0)), note.c_str());
  }

  const auto& s = coord.stats();
  std::printf("\nhealing summary: %llu drift epochs, %llu recalibrations "
              "(%llu accepted, %llu rolled back), %llu checkpoints written, "
              "%llu crashed\n",
              static_cast<unsigned long long>(s.drift_epochs),
              static_cast<unsigned long long>(s.recalibrations_triggered),
              static_cast<unsigned long long>(s.recalibrations_accepted),
              static_cast<unsigned long long>(s.recalibrations_rolled_back),
              static_cast<unsigned long long>(s.checkpoints_written),
              static_cast<unsigned long long>(s.checkpoint_crashes));

  // --- the process dies; a cold replacement takes over -------------------
  core::DWatchPipeline reborn(scene.deployment().arrays,
                              core::SearchBounds{{0, 0},
                                                 {env.width, env.depth}},
                              popts);
  std::vector<core::WirelessCalibrator> calibrators2;
  for (const rf::UniformLinearArray& arr : scene.deployment().arrays) {
    calibrators2.emplace_back(arr.spacing(), arr.lambda());
  }
  recovery::RecoveryCoordinator coord2(
      reborn, std::move(calibrators2),
      recovery::CheckpointStore(snapshot_path), ropt);
  const recovery::RestoreError err = coord2.restore();
  if (err != recovery::RestoreError::kNone) {
    std::printf("restore failed: %s\n", recovery::to_string(err).data());
    return 1;
  }
  std::printf("\nrestored snapshot of epoch %llu (calibration + baselines + "
              "stats travel with it); resuming fixes:\n",
              static_cast<unsigned long long>(coord2.last_checkpoint_epoch()));

  const std::size_t resume = coord2.last_checkpoint_epoch() + 1;
  for (std::size_t epoch = resume; epoch < resume + 2; ++epoch) {
    const rf::Vec2 truth{2.6 + 0.2 * static_cast<double>(epoch),
                         3.6 + 0.25 * static_cast<double>(epoch)};
    const sim::CylinderTarget targets[] = {sim::CylinderTarget::human(truth)};
    reborn.begin_epoch(1000 * (epoch + 1));
    for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
      rf::Rng rng(kSeed + 1000 * (epoch + 1) + a);
      rfid::RoAccessReport report = scene.capture_report(
          a, targets, rng, static_cast<std::uint32_t>(epoch),
          1000 * (epoch + 1) + 10);
      injector.corrupt_report(report, epoch, a);
      for (const rfid::TagObservation& obs : report.observations) {
        (void)reborn.observe(a, obs);
      }
    }
    const core::ConfidentEstimate fix = reborn.localize_with_confidence(true);
    std::printf("%5zu  %8.2f  (after restore)\n", epoch,
                rf::distance(fix.estimate.position, truth));
  }
  return 0;
}
