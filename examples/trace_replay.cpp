// Trace record & replay: capture a measurement campaign to a file, then
// localize OFFLINE from the recorded LLRP bytes — the workflow the
// paper's C#-logger + Matlab post-processing used, with one portable
// binary format.
#include <cstdio>

#include "core/pipeline.hpp"
#include "harness/experiment.hpp"
#include "sim/scene.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace dwatch;
  const char* path = "dwatch_campaign.trace";

  // ---- capture side (this would run next to the readers) ---------------
  rf::Rng deploy_rng(42);
  rf::Rng hardware_rng(7);
  sim::DeploymentOptions layout;
  auto deployment = sim::make_room_deployment(sim::Environment::library(),
                                              layout, deploy_rng);
  sim::Scene scene(std::move(deployment), sim::CaptureOptions{},
                   hardware_rng);
  rf::Rng rng(1);

  sim::Trace trace;
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    rfid::RoAccessReport report;
    report.message_id = static_cast<std::uint32_t>(a);
    for (std::size_t t = 0; t < scene.num_tags(); ++t) {
      report.observations.push_back(
          scene.capture_observation(a, t, {}, rng));
    }
    trace.record_report(sim::EpochKind::kBaseline, "baseline",
                        static_cast<std::uint32_t>(a), report);
  }
  const rf::Vec2 truth{4.0, 6.0};
  const sim::CylinderTarget person = sim::CylinderTarget::human(truth);
  const std::vector<sim::CylinderTarget> targets{person};
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    rfid::RoAccessReport report;
    report.message_id = 100 + static_cast<std::uint32_t>(a);
    for (std::size_t t = 0; t < scene.num_tags(); ++t) {
      report.observations.push_back(
          scene.capture_observation(a, t, targets, rng));
    }
    trace.record_report(sim::EpochKind::kOnline, "fix-0001",
                        static_cast<std::uint32_t>(a), report);
  }
  trace.save_file(path);
  std::printf("recorded campaign to %s (%zu epochs)\n", path,
              trace.epochs().size());

  // ---- replay side (no scene, no readers: just the file) ---------------
  const sim::Trace replay = sim::Trace::load_file(path);
  core::DWatchPipeline pipeline(
      scene.deployment().arrays,
      core::SearchBounds{{0, 0},
                         {scene.deployment().env.width,
                          scene.deployment().env.depth}});
  // (offline analysis can use recorded calibration too; here we use the
  // known offsets for brevity)
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    pipeline.set_calibration(a, scene.reader(a).phase_offsets());
  }

  for (const sim::TraceEpoch& epoch : replay.epochs()) {
    const auto observations = sim::Trace::decode_epoch(epoch);
    if (epoch.kind == sim::EpochKind::kBaseline) {
      for (const auto& obs : observations) {
        pipeline.add_baseline(epoch.array_index, obs);
      }
    } else {
      for (const auto& obs : observations) {
        (void)pipeline.observe(epoch.array_index, obs);
      }
    }
  }
  const auto fix = pipeline.localize_best_effort();
  std::printf("replayed fix: (%.2f, %.2f), truth (%.2f, %.2f), error "
              "%.1f cm, valid=%s\n",
              fix.position.x, fix.position.y, truth.x, truth.y,
              100.0 * harness::human_error(fix.position, truth),
              fix.valid ? "yes" : "no");
  std::remove(path);
  return 0;
}
