// Telemetry plane walkthrough: a serving fleet with its operations
// door open.
//
//   1. build a two-zone LocalizationService (same fleet recipe as
//      serve_fleet) and attach a TelemetryPlane: epoch observers feed
//      the SLO tracker and flight recorder, the HTTP server exposes
//      /metrics, /healthz, /slo, /events, /trace and /dump;
//   2. drive serving traffic, including a deliberate overload burst so
//      the shed objective burns visibly;
//   3. scrape every endpoint over a REAL loopback socket and print a
//      short operations summary.
//
// Modes (both used by scripts/check.sh):
//   (default)                demo: serve, scrape itself, print summary
//   --selfcheck              same, but quiet and STRICT: every endpoint
//                            must answer with the right status and
//                            strictly valid JSON; non-zero exit on any
//                            violation (this is the CI gate)
//   --serve-seconds N        keep serving/scrapable for N seconds after
//                            the traffic, so an external curl can probe
//   --port-file PATH         write the bound port to PATH once listening
//   --port P                 bind a fixed port instead of an ephemeral
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"
#include "serve/service.hpp"
#include "telemetry/http_client.hpp"
#include "telemetry/json_check.hpp"
#include "telemetry/plane.hpp"

namespace {

using namespace dwatch;

std::vector<rf::UniformLinearArray> zone_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
  };
}

rf::Vec2 zone_target(std::size_t zone) {
  return {2.0 + 0.5 * static_cast<double>(zone),
          3.0 + 0.7 * static_cast<double>(zone)};
}

linalg::CMatrix synth(const rf::UniformLinearArray& array, double angle_rad,
                      double scale, std::uint64_t seed) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1.25}, array.center()};
  p.length = 10.0;
  p.aoa = angle_rad;
  p.gain = {0.01, 0.0};
  const std::vector<rf::PropagationPath> paths{p};
  rf::SnapshotOptions opts;
  opts.num_snapshots = 16;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  rf::Rng rng(seed);
  const std::vector<double> path_scale{scale};
  return rf::synthesize_snapshots(array, paths, path_scale, opts, rng);
}

rfid::TagObservation wire_obs(const linalg::CMatrix& x,
                              const rfid::Epc96& epc) {
  rfid::TagObservation obs;
  obs.epc = epc;
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(x(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }
  return obs;
}

rfid::RoAccessReport epoch_report(std::size_t zone, std::size_t array,
                                  std::uint64_t epoch) {
  const auto arrays = zone_arrays();
  const double angle = arrays[array].arrival_angle_planar(zone_target(zone));
  const std::uint64_t seed = 1000 * zone + 10 * epoch + array + 1;
  rfid::RoAccessReport report;
  report.message_id = static_cast<std::uint32_t>(seed);
  report.observations.push_back(
      wire_obs(synth(arrays[array], angle, 0.2, seed),
               rfid::Epc96::for_tag_index(
                   static_cast<std::uint32_t>(10 * zone + array + 1))));
  return report;
}

constexpr std::size_t kZones = 2;

// Heap-allocated: the service owns mutexes (scheduler + admission
// controller) and is therefore immovable.
std::unique_ptr<serve::LocalizationService> make_fleet() {
  serve::ServiceOptions opts;
  opts.num_workers = 2;
  opts.max_queue_per_zone = 2;
  auto service = std::make_unique<serve::LocalizationService>(opts);
  for (std::size_t z = 0; z < kZones; ++z) {
    serve::ZoneConfig cfg;
    cfg.name = "zone" + std::to_string(z);
    cfg.arrays = zone_arrays();
    cfg.bounds = core::SearchBounds{{0.0, 0.0}, {7.0, 10.0}};
    const std::size_t id = service->add_zone(std::move(cfg));
    for (std::size_t a = 0; a < 2; ++a) {
      const double angle =
          zone_arrays()[a].arrival_angle_planar(zone_target(z));
      service->zone(id).pipeline().add_baseline(
          a,
          rfid::Epc96::for_tag_index(
              static_cast<std::uint32_t>(10 * z + a + 1)),
          synth(zone_arrays()[a], angle, 1.0, 500 + 10 * z + a));
    }
  }
  return service;
}

void drive_traffic(serve::LocalizationService& service) {
  // Four clean epochs per zone...
  for (std::uint64_t e = 0; e < 4; ++e) {
    for (std::size_t z = 0; z < kZones; ++z) {
      service.begin_epoch(z);
      for (std::size_t a = 0; a < 2; ++a) {
        service.add_report(z, a, epoch_report(z, a, e));
      }
    }
    (void)service.run_pending();
  }
  // ...then an overload burst on zone 0: 5 sealed epochs into a queue
  // of 2 sheds the 3 oldest — the shed SLO objective burns, /healthz
  // and /slo show it.
  for (std::uint64_t e = 4; e < 9; ++e) {
    service.begin_epoch(0);
    service.add_report(0, 0, epoch_report(0, 0, e));
  }
  (void)service.run_pending();
}

struct Check {
  int failures = 0;
  bool quiet = false;

  void expect(bool ok, const char* what) {
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "telemetry_endpoint: FAIL %s\n", what);
    } else if (!quiet) {
      std::printf("  ok: %s\n", what);
    }
  }
};

/// Scrape every endpoint of the plane and verify the contract the
/// docs promise: right statuses, right shapes, strictly valid JSON.
int scrape_all(std::uint16_t port, bool quiet) {
  using telemetry::http_fetch;
  Check check;
  check.quiet = quiet;
  std::string error;

  telemetry::HttpResult r = http_fetch(port, "GET", "/metrics");
  check.expect(r.ok && r.status == 200, "/metrics answers 200");
  check.expect(r.body.find("# TYPE dwatch_serve_fix_latency_us histogram") !=
                   std::string::npos,
               "/metrics carries the fix-latency histogram");
  check.expect(
      r.body.find("dwatch_slo_budget_remaining") != std::string::npos,
      "/metrics carries the SLO budget gauges");

  r = http_fetch(port, "GET", "/metrics.json");
  check.expect(r.ok && r.status == 200, "/metrics.json answers 200");
  check.expect(telemetry::json_valid(r.body, &error),
               "/metrics.json is strictly valid JSON");

  r = http_fetch(port, "GET", "/healthz");
  check.expect(r.ok && (r.status == 200 || r.status == 503),
               "/healthz answers 200 or 503");
  check.expect(telemetry::json_valid(r.body, &error),
               "/healthz is strictly valid JSON");
  const std::string healthz = r.body;

  r = http_fetch(port, "GET", "/slo");
  check.expect(r.ok && r.status == 200, "/slo answers 200");
  check.expect(telemetry::json_valid(r.body, &error),
               "/slo is strictly valid JSON");
  check.expect(r.body.find("\"objective\":\"shed\"") != std::string::npos,
               "/slo tracks the shed objective");

  r = http_fetch(port, "GET", "/events?n=20");
  check.expect(r.ok && r.status == 200, "/events answers 200");
  check.expect(telemetry::json_lines_valid(r.body, &error),
               "/events is valid JSON Lines");

  r = http_fetch(port, "GET", "/trace");
  check.expect(r.ok && r.status == 200, "/trace answers 200");
  check.expect(telemetry::json_valid(r.body, &error),
               "/trace is strictly valid JSON");

  r = http_fetch(port, "POST", "/dump?trigger=selfcheck");
  check.expect(r.ok && r.status == 200, "POST /dump answers 200");
  check.expect(telemetry::json_valid(r.body, &error),
               "dump bundle is strictly valid JSON");
  check.expect(r.body.find("\"trigger\":\"selfcheck\"") != std::string::npos,
               "dump bundle names its trigger");

  r = http_fetch(port, "GET", "/no-such-endpoint");
  check.expect(r.ok && r.status == 404, "unknown path answers 404");

  if (!quiet) {
    std::printf("healthz: %s\n", healthz.c_str());
  }
  return check.failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool selfcheck = false;
  long serve_seconds = 0;
  const char* port_file = nullptr;
  std::uint16_t port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selfcheck") == 0) {
      selfcheck = true;
    } else if (std::strcmp(argv[i], "--serve-seconds") == 0 && i + 1 < argc) {
      serve_seconds = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      port_file = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--selfcheck] [--serve-seconds N] "
                   "[--port-file PATH] [--port P]\n",
                   argv[0]);
      return 2;
    }
  }

  obs::set_enabled(true);

  const auto fleet = make_fleet();
  serve::LocalizationService& service = *fleet;
  telemetry::TelemetryOptions options;
  // Keep wall-clock latency out of the demo's health verdict: the
  // deterministic shed burst is the story here.
  options.slo.fix_latency_budget_us = 60'000'000;
  telemetry::TelemetryPlane plane(options);
  plane.attach(service);
  plane.start(port);
  if (!selfcheck) {
    std::printf("telemetry plane listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(plane.port()));
  }
  if (port_file != nullptr) {
    std::FILE* f = std::fopen(port_file, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "telemetry_endpoint: cannot write %s\n",
                   port_file);
      return 2;
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(plane.port()));
    std::fclose(f);
  }

  drive_traffic(service);

  const int failures = scrape_all(plane.port(), selfcheck);

  if (serve_seconds > 0) {
    if (!selfcheck) {
      std::printf("serving for %lds (curl me: /metrics /healthz /slo)...\n",
                  serve_seconds);
    }
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  }

  plane.stop();
  obs::set_enabled(false);
  if (failures != 0) {
    std::fprintf(stderr, "telemetry_endpoint: %d check(s) failed\n",
                 failures);
    return 1;
  }
  if (!selfcheck) {
    const serve::ServiceStats stats = service.stats();
    std::printf(
        "fleet: processed=%zu shed=%zu; scrapes served=%llu; all endpoint "
        "checks passed\n",
        stats.epochs_processed, stats.epochs_shed,
        static_cast<unsigned long long>(plane.server().requests_served()));
  }
  return 0;
}
