// Shared helpers for the figure-reproduction benches: standard scenes,
// experiment loops and table printing. Every bench prints a
// "paper vs measured" table for its figure; absolute centimetres are not
// expected to match (synthetic rooms), the SHAPE is.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/stats.hpp"
#include "sim/scene.hpp"

namespace dwatch::bench {

/// Default deterministic seeds so every bench run reproduces bit-exactly.
inline constexpr std::uint64_t kDeploySeed = 42;
inline constexpr std::uint64_t kHardwareSeed = 7;
inline constexpr std::uint64_t kRunSeed = 1234;

inline sim::Scene make_room_scene(sim::Environment env,
                                  std::size_t num_tags = 21,
                                  std::size_t antennas = 8,
                                  std::uint64_t deploy_seed = kDeploySeed,
                                  std::uint64_t hw_seed = kHardwareSeed) {
  rf::Rng rng(deploy_seed);
  rf::Rng hw(hw_seed);
  sim::DeploymentOptions dopt;
  dopt.num_tags = num_tags;
  dopt.antennas_per_array = antennas;
  auto dep = sim::make_room_deployment(std::move(env), dopt, rng);
  return sim::Scene(std::move(dep), sim::CaptureOptions{}, hw);
}

/// Uniform grid of test locations with a margin, like the paper's 0.5 m
/// spaced test points (counts scaled down for bench runtime).
inline std::vector<rf::Vec2> test_locations(const sim::Environment& env,
                                            std::size_t nx, std::size_t ny,
                                            double margin = 1.0) {
  std::vector<rf::Vec2> out;
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      out.push_back(
          {margin + (env.width - 2 * margin) * static_cast<double>(ix) /
                        static_cast<double>(nx - 1),
           margin + (env.depth - 2 * margin) * static_cast<double>(iy) /
                        static_cast<double>(ny - 1)});
    }
  }
  return out;
}

/// Result of a localization sweep over test locations.
struct SweepResult {
  std::vector<double> errors;  ///< error per REPORTED fix [m]
  std::vector<double> valid_errors;  ///< error per consensus fix [m]
  std::size_t covered = 0;     ///< valid (consensus) fixes
  std::size_t localizable = 0;  ///< trials with >= 2 arrays reporting drops
                                ///< (the paper's Fig. 16/17 coverage notion)
  std::size_t no_evidence = 0;  ///< trials with no fix at all (deadzone)
  std::size_t trials = 0;

  [[nodiscard]] double coverage_pct() const {
    return trials == 0 ? 0.0
                       : 100.0 * static_cast<double>(covered) /
                             static_cast<double>(trials);
  }
  [[nodiscard]] double localizable_pct() const {
    return trials == 0 ? 0.0
                       : 100.0 * static_cast<double>(localizable) /
                             static_cast<double>(trials);
  }
};

/// Calibrate, baseline, then run `reps` best-effort fixes per location.
inline SweepResult run_localization_sweep(
    const sim::Scene& scene, const std::vector<rf::Vec2>& locations,
    std::size_t reps, rf::Rng& rng,
    harness::RunnerOptions opts = {}) {
  harness::ExperimentRunner runner(scene, opts);
  runner.calibrate(rng);
  runner.collect_baselines(rng);
  SweepResult result;
  for (const rf::Vec2 p : locations) {
    const sim::CylinderTarget target = sim::CylinderTarget::human(p);
    const std::vector<sim::CylinderTarget> targets{target};
    for (std::size_t r = 0; r < reps; ++r) {
      ++result.trials;
      const auto est = runner.run_fix_best_effort(targets, rng);
      std::size_t arrays_reporting = 0;
      for (const auto& e : runner.pipeline().evidence()) {
        if (!e.drops.empty()) ++arrays_reporting;
      }
      if (arrays_reporting >= 2) ++result.localizable;
      if (est.likelihood > 0.0) {
        const double err = harness::human_error(est.position, p);
        result.errors.push_back(err);
        if (est.valid) {
          ++result.covered;
          result.valid_errors.push_back(err);
        }
      } else {
        ++result.no_evidence;  // deadzone: no fix reported at all
      }
    }
  }
  return result;
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void print_row(const std::string& label, double paper,
                      double measured, const std::string& unit) {
  std::printf("  %-38s paper: %8.2f %-4s   measured: %8.2f %s\n",
              label.c_str(), paper, unit.c_str(), measured, unit.c_str());
}

}  // namespace dwatch::bench
