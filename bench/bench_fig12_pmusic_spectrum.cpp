// Figure 12: AoA spectrum changes estimated by P-MUSIC when one or
// three paths are blocked (the hall + two metal reflectors setup of
// Fig. 11).
//
// Paper shape: the blocked peak drops cleanly; unblocked peaks stay put —
// the exact opposite of MUSIC's behaviour in Fig. 4.
#include <cstdio>

#include "bench_util.hpp"
#include "core/covariance.hpp"
#include "core/pmusic.hpp"
#include "rf/array.hpp"
#include "rf/snapshot.hpp"
#include "sim/propagate.hpp"
#include "sim/target.hpp"

int main() {
  using namespace dwatch;
  bench::print_header("Fig. 12 — P-MUSIC spectrum change under blocking");

  // Fig. 11 geometry: hall, tag at distance, two metal reflectors.
  sim::Environment env = sim::Environment::hall();
  // "To minimize the influence of multipath, we conduct this experiment
  // in the empty hall" — drop even the weak perimeter reflections so the
  // controlled geometry is exactly direct + 2 reflectors (Fig. 11).
  env.walls.clear();
  // Large flat metal reflectors close to the array (dR1A = 2 m,
  // dR2A = 2.6 m as in Fig. 11) reflect strongly.
  env.scatterers.push_back(sim::PointScatterer{{2.0, 2.1}, 1.25, 8.0});
  env.scatterers.push_back(sim::PointScatterer{{5.5, 2.4}, 1.25, 8.0});
  const rf::UniformLinearArray array({3.6, 0.3, 1.25}, {1, 0}, 8);
  const rf::Vec3 tag{2.9, 5.6, 1.25};

  sim::TraceOptions trace;
  const auto paths = sim::trace_paths(tag, array, env, trace);
  std::printf("  traced %zu paths (angles:", paths.size());
  for (const auto& p : paths) std::printf(" %.1f", rf::rad2deg(p.aoa));
  std::printf(" deg)\n");

  rf::SnapshotOptions snap;
  snap.num_snapshots = 24;
  snap.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 30.0);
  rf::Rng rng(bench::kRunSeed);

  // Humans block (a) the direct path only, (b) all three dominant paths.
  const std::vector<sim::CylinderTarget> one{
      sim::CylinderTarget::human({3.2, 3.0})};  // on the direct path
  const std::vector<sim::CylinderTarget> all{
      sim::CylinderTarget::human({3.2, 3.0}),
      sim::CylinderTarget::human({2.8, 1.2}),   // reflector 1 -> array leg
      sim::CylinderTarget::human({4.9, 1.6})};  // reflector 2 -> array leg

  const auto scale_one = sim::blocking_scales(paths, one);
  const auto scale_all = sim::blocking_scales(paths, all);

  const auto base = rf::synthesize_snapshots(array, paths, {}, snap, rng);
  const auto x_one =
      rf::synthesize_snapshots(array, paths, scale_one, snap, rng);
  const auto x_all =
      rf::synthesize_snapshots(array, paths, scale_all, snap, rng);

  core::PMusicOptions pm_opts;
  pm_opts.peaks.min_relative_height = 0.002;  // surface the weak paths
  core::PMusicEstimator pm(array.spacing(), array.lambda(), pm_opts);
  const auto result_base = pm.estimate(base);
  // The pipeline's observable: baseline P-MUSIC peaks vs ONLINE
  // beamforming power at those angles (same scale at a peak since
  // Nor(B) == 1 there).
  const auto pb_one = pm.power_spectrum(core::sample_correlation(x_one));
  const auto pb_all = pm.power_spectrum(core::sample_correlation(x_all));

  std::printf(
      "\n  power at each baseline P-MUSIC peak, relative to baseline\n"
      "  (the paper's Fig. 12 polar plots, flattened)\n"
      "  angle | baseline | one blocked | all blocked | blocked in scene?\n");
  core::PeakOptions po;
  po.min_relative_height = 0.02;
  for (const core::Peak& peak : core::find_peaks(result_base.omega, po)) {
    const double a = peak.theta;
    // Which traced path does this peak correspond to?
    std::size_t path_idx = 0;
    double best = 1e9;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      const double d = std::abs(paths[i].aoa - a);
      if (d < best) {
        best = d;
        path_idx = i;
      }
    }
    std::printf("  %5.1f | %8.2f | %11.2f | %11.2f | one:%s all:%s\n",
                rf::rad2deg(a), 1.0, pb_one.value_at(a) / peak.value,
                pb_all.value_at(a) / peak.value,
                scale_one[path_idx] < 1.0 ? "yes" : "no ",
                scale_all[path_idx] < 1.0 ? "yes" : "no ");
  }
  std::printf(
      "\n  shape check (paper Fig. 12): blocked peaks drop to a small\n"
      "  fraction; unblocked peaks remain near 1.0 in the same scene.\n");
  return 0;
}
