// Figure 15: localization error vs number of antennas per array.
//
// Paper (library): 54.3 cm @ 4 antennas, 35.6 cm @ 6, 17.6 cm @ 8 — more
// elements give finer AoA resolution and more resolvable paths.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace dwatch;
  bench::print_header("Fig. 15 — localization error vs antennas per array");

  struct Paper {
    std::size_t antennas;
    double library_cm;
  };
  const std::vector<Paper> paper{{4, 54.3}, {6, 35.6}, {8, 17.6}};

  std::printf("  env        | antennas | median valid error [cm] (paper library: mean)\n");
  std::vector<double> measured;
  for (const char* env_name : {"library", "laboratory", "hall"}) {
    for (const Paper& p : paper) {
      sim::Environment env =
          std::string(env_name) == "library" ? sim::Environment::library()
          : std::string(env_name) == "laboratory"
              ? sim::Environment::laboratory()
              : sim::Environment::hall();
      const sim::Scene scene =
          bench::make_room_scene(std::move(env), 21, p.antennas);
      const auto locations =
          bench::test_locations(scene.deployment().env, 5, 6);
      rf::Rng rng(bench::kRunSeed);
      const auto sweep =
          bench::run_localization_sweep(scene, locations, 2, rng);
      const double mean_cm =
          sweep.valid_errors.empty()
              ? 999.0
              : 100.0 * harness::median(sweep.valid_errors);
      std::printf("  %-10s | %8zu | loc %3.0f%% | cons %3.0f%% | %8.1f%s\n",
                  env_name, p.antennas, sweep.localizable_pct(),
                  sweep.coverage_pct(), mean_cm,
                  std::string(env_name) == "library"
                      ? (" (paper " + std::to_string(p.library_cm) + ")")
                            .c_str()
                      : "");
      if (std::string(env_name) == "library") {
        measured.push_back(sweep.coverage_pct());
      }
    }
  }
  if (measured.size() == 3) {
    std::printf(
        "\n  shape check: more antennas resolve more coherent paths, so\n"
        "  consensus coverage rises with the element count (library):\n"
        "  %.0f%% (4) vs %.0f%% (6) vs %.0f%% (8) — %s\n",
        measured[0], measured[1], measured[2],
        (measured[2] > measured[0]) ? "OK" : "MISS");
  }
  return 0;
}
