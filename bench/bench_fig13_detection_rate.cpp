// Figure 13: target detection rate, P-MUSIC vs traditional MUSIC, as the
// tag-array distance grows from 2 m to 8 m; (a) one path blocked,
// (b) all paths blocked.
//
// Paper shape: P-MUSIC near 100% everywhere; MUSIC poor, and essentially
// broken when every path is blocked at once.
#include <cstdio>

#include "baseline/music_power_detector.hpp"
#include "bench_util.hpp"
#include "core/change_detector.hpp"
#include "core/covariance.hpp"
#include "core/pmusic.hpp"
#include "rf/array.hpp"
#include "rf/snapshot.hpp"
#include "sim/propagate.hpp"
#include "sim/target.hpp"

namespace {

using namespace dwatch;

struct Rates {
  double pmusic = 0.0;
  double music = 0.0;
};

/// Detection = EVERY truly blocked path has a reported drop within 4 deg
/// (the paper's complaint about MUSIC is precisely that it "may only
/// detect one path and miss the other blocked paths").
bool hit(const std::vector<core::PathDrop>& drops,
         const std::vector<rf::PropagationPath>& paths,
         const std::vector<double>& scales) {
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (scales[i] >= 1.0) continue;
    bool found = false;
    for (const auto& d : drops) {
      if (std::abs(d.theta - paths[i].aoa) < rf::deg2rad(4.0)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

Rates run_distance(double d_ta, bool block_all, rf::Rng& rng) {
  sim::Environment env = sim::Environment::hall();
  // Controlled geometry (paper Fig. 11): empty hall, exactly direct +
  // two reflector paths.
  env.walls.clear();
  env.scatterers.push_back(sim::PointScatterer{{2.2, 2.0}, 1.2, 5.0});
  env.scatterers.push_back(sim::PointScatterer{{5.2, 2.4}, 1.2, 5.0});
  const rf::UniformLinearArray array({3.6, 0.3, 1.25}, {1, 0}, 8);
  const rf::Vec3 tag{3.6, 0.3 + d_ta, 1.25};
  sim::TraceOptions trace;
  const auto paths = sim::trace_paths(tag, array, env, trace);

  // Targets: one on the direct path, optionally on every reflector leg.
  std::vector<sim::CylinderTarget> targets{
      sim::CylinderTarget::human({3.6, 0.3 + d_ta / 2})};
  if (block_all) {
    targets.push_back(sim::CylinderTarget::human({2.6, 1.4}));
    targets.push_back(sim::CylinderTarget::human({4.7, 1.6}));
  }
  const auto scales = sim::blocking_scales(paths, targets);

  rf::SnapshotOptions snap;
  snap.num_snapshots = 16;
  snap.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 30.0);

  core::PMusicOptions pm_opts;
  pm_opts.peaks.min_relative_height = 0.002;  // few-path controlled scene
  core::PMusicEstimator pm(array.spacing(), array.lambda(), pm_opts);
  core::SpectrumChangeDetector detector;
  baseline::MusicPowerDetector music(array.spacing(), array.lambda());

  const int trials = 20;
  int hits_pm = 0;
  int hits_mu = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const auto base = rf::synthesize_snapshots(array, paths, {}, snap, rng);
    const auto online =
        rf::synthesize_snapshots(array, paths, scales, snap, rng);
    // P-MUSIC pipeline scheme: baseline Omega peaks vs online PB power.
    const auto omega_base = pm.estimate(base).omega;
    const auto pb_online =
        pm.power_spectrum(core::sample_correlation(online));
    if (hit(detector.detect(omega_base, pb_online), paths, scales)) {
      ++hits_pm;
    }
    if (hit(music.detect(base, online), paths, scales)) ++hits_mu;
  }
  return Rates{100.0 * hits_pm / trials, 100.0 * hits_mu / trials};
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 13 — detection rate vs tag-array distance (P-MUSIC vs MUSIC)");

  rf::Rng rng(bench::kRunSeed);
  for (const bool block_all : {false, true}) {
    std::printf("\n  (%s)\n  d_TA | P-MUSIC %% | MUSIC %%\n",
                block_all ? "ALL paths blocked" : "one path blocked");
    double pm_sum = 0.0;
    double mu_sum = 0.0;
    int n = 0;
    for (const double d : {2.0, 4.0, 6.0, 8.0}) {
      const Rates r = run_distance(d, block_all, rng);
      std::printf("  %3.0fm | %9.0f | %7.0f\n", d, r.pmusic, r.music);
      pm_sum += r.pmusic;
      mu_sum += r.music;
      ++n;
    }
    bench::print_row("mean P-MUSIC detection rate",
                     block_all ? 95.0 : 98.0, pm_sum / n, "%");
    bench::print_row("mean MUSIC detection rate",
                     block_all ? 15.0 : 45.0, mu_sum / n, "%");
  }
  std::printf(
      "\n  shape check: P-MUSIC ~100%% everywhere; MUSIC degraded, worst\n"
      "  when all paths are blocked simultaneously (paper Fig. 13b).\n");
  return 0;
}
