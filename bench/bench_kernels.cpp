// Per-kernel spectral microbenchmarks: the four SIMD-dispatched kernels
// measured scalar-vs-vector on identical inputs, plus the truncated
// eigensolver against the dense solver it replaces and the end-to-end
// P-MUSIC estimate both ways.
//
// Each kernel runs as two arms (simd:0 = the legacy scalar path the
// core used before dispatch existed, simd:1 = the active vector
// backend) on the production shape: M = 8 elements, G = 361 grid
// columns, N = 16 snapshots. The vector arm also reports
// `speedup_vs_scalar` (median-over-median, measured in-process) so
// BENCH_latency.json records the ratio directly, and every arm reports
// manual p50/p99 per-call latency alongside google-benchmark's mean.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "core/covariance.hpp"
#include "core/music.hpp"
#include "core/pmusic.hpp"
#include "core/spectrum.hpp"
#include "core/steering_cache.hpp"
#include "linalg/complex_matrix.hpp"
#include "linalg/hermitian_eig.hpp"
#include "linalg/simd_kernels.hpp"
#include "linalg/soa_complex.hpp"
#include "linalg/truncated_eig.hpp"
#include "rf/constants.hpp"

namespace {

using namespace dwatch;
namespace simd = linalg::simd;

constexpr double kSpacing = 0.163;
constexpr double kLambda = 2.0 * kSpacing;
constexpr std::size_t kElements = 8;
constexpr std::size_t kSnapshots = 16;

struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  double uniform() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
};

/// Two coherent paths + weak noise — the golden-spectrum scene.
linalg::CMatrix bench_snapshots(std::size_t num_elements,
                                std::uint64_t seed) {
  const double thetas[2] = {0.7, 1.9};
  const double amplitudes[2] = {1.0, 0.45};
  Lcg lcg(seed);
  linalg::CMatrix x(num_elements, kSnapshots);
  for (std::size_t n = 0; n < kSnapshots; ++n) {
    const double symbol_phase = rf::kTwoPi * lcg.uniform();
    for (std::size_t m = 0; m < num_elements; ++m) {
      std::complex<double> v{0.0, 0.0};
      for (int k = 0; k < 2; ++k) {
        const double steer = rf::kTwoPi * kSpacing *
                             static_cast<double>(m) * std::cos(thetas[k]) /
                             kLambda;
        v += amplitudes[k] *
             std::complex<double>(std::cos(steer + symbol_phase),
                                  std::sin(steer + symbol_phase));
      }
      v += std::complex<double>(1e-3 * (lcg.uniform() - 0.5),
                                1e-3 * (lcg.uniform() - 0.5));
      x(m, n) = v;
    }
  }
  return x;
}

struct Fixtures {
  linalg::CMatrix x;                ///< M x N snapshots
  linalg::CMatrix r;                ///< M x M correlation
  linalg::CMatrix smoothed;         ///< L x L smoothed correlation
  linalg::CMatrix noise_subspace;   ///< M x (M - 2)
  std::shared_ptr<const core::SteeringManifold> manifold;  ///< M x G
};

const Fixtures& fixtures() {
  static const Fixtures f = [] {
    Fixtures out;
    out.x = bench_snapshots(kElements, 0xBE9C);
    out.r = core::sample_correlation(out.x);
    out.smoothed = core::forward_backward_smooth(out.r, kElements - 2);
    const linalg::EigenDecomposition eig = linalg::hermitian_eig(out.r);
    out.noise_subspace =
        eig.eigenvectors.block(0, 2, kElements, kElements - 2);
    out.manifold = core::SteeringCache::instance().get(
        kElements, kSpacing, kLambda, core::AngularSpectrum::kDefaultPoints);
    return out;
  }();
  return f;
}

struct ScopedBackend {
  explicit ScopedBackend(simd::Backend b) { simd::set_backend_override(b); }
  ~ScopedBackend() { simd::clear_backend_override(); }
};

bool simd_arm(const benchmark::State& state) { return state.range(0) == 1; }

/// The arm's backend, or kScalar when the host has no vector unit (the
/// caller skips the arm in that case).
simd::Backend arm_backend(const benchmark::State& state) {
  return simd_arm(state) ? simd::detected_backend() : simd::Backend::kScalar;
}

void report_percentiles(benchmark::State& state, std::vector<double>& us) {
  if (us.empty()) return;
  std::sort(us.begin(), us.end());
  const auto pct = [&us](double q) {
    const std::size_t i = static_cast<std::size_t>(
        q * static_cast<double>(us.size() - 1));
    return us[i];
  };
  state.counters["p50_us"] = pct(0.50);
  state.counters["p99_us"] = pct(0.99);
}

/// Median wall time of `fn` over `iters` calls, in microseconds.
template <typename Fn>
double median_us(Fn&& fn, int iters) {
  std::vector<double> us;
  us.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  std::sort(us.begin(), us.end());
  return us[us.size() / 2];
}

/// speedup_vs_scalar counter on the vector arm: median legacy-scalar
/// time over median vector time, both measured here and now.
template <typename ScalarFn, typename SimdFn>
void report_speedup(benchmark::State& state, ScalarFn&& scalar_fn,
                    SimdFn&& simd_fn) {
  if (!simd_arm(state)) return;
  const double scalar_med = median_us(scalar_fn, 200);
  const double simd_med = median_us(simd_fn, 200);
  if (simd_med > 0.0) {
    state.counters["speedup_vs_scalar"] = scalar_med / simd_med;
  }
}

// ---- kernel arms -----------------------------------------------------

void BM_KernelBatchedQuadraticForm(benchmark::State& state) {
  if (simd_arm(state) && simd::detected_backend() == simd::Backend::kScalar) {
    state.SkipWithError("no vector backend on this host");
    return;
  }
  const Fixtures& f = fixtures();
  const ScopedBackend scope(arm_backend(state));
  const auto scalar_call = [&f] {
    benchmark::DoNotOptimize(
        linalg::batched_quadratic_form(f.r, f.manifold->matrix()));
  };
  const auto simd_call = [&f] {
    benchmark::DoNotOptimize(
        simd::batched_quadratic_form(f.r, f.manifold->soa()));
  };
  std::vector<double> us;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    if (simd_arm(state)) {
      simd_call();
    } else {
      scalar_call();
    }
    const auto t1 = std::chrono::steady_clock::now();
    us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.manifold->matrix().cols()));
  report_percentiles(state, us);
  report_speedup(state, scalar_call, simd_call);
}
BENCHMARK(BM_KernelBatchedQuadraticForm)
    ->ArgNames({"simd"})->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_KernelMatmulHermitianLeft(benchmark::State& state) {
  if (simd_arm(state) && simd::detected_backend() == simd::Backend::kScalar) {
    state.SkipWithError("no vector backend on this host");
    return;
  }
  const Fixtures& f = fixtures();
  const ScopedBackend scope(arm_backend(state));
  const auto scalar_call = [&f] {
    benchmark::DoNotOptimize(
        linalg::matmul_hermitian_left(f.noise_subspace, f.manifold->matrix()));
  };
  const auto simd_call = [&f] {
    benchmark::DoNotOptimize(
        simd::matmul_hermitian_left(f.noise_subspace, f.manifold->soa()));
  };
  std::vector<double> us;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    if (simd_arm(state)) {
      simd_call();
    } else {
      scalar_call();
    }
    const auto t1 = std::chrono::steady_clock::now();
    us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.manifold->matrix().cols()));
  report_percentiles(state, us);
  report_speedup(state, scalar_call, simd_call);
}
BENCHMARK(BM_KernelMatmulHermitianLeft)
    ->ArgNames({"simd"})->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_KernelColumnSquaredNorms(benchmark::State& state) {
  if (simd_arm(state) && simd::detected_backend() == simd::Backend::kScalar) {
    state.SkipWithError("no vector backend on this host");
    return;
  }
  const Fixtures& f = fixtures();
  const ScopedBackend scope(arm_backend(state));
  const auto scalar_call = [&f] {
    benchmark::DoNotOptimize(
        linalg::column_squared_norms(f.manifold->matrix()));
  };
  const auto simd_call = [&f] {
    benchmark::DoNotOptimize(simd::column_squared_norms(f.manifold->soa()));
  };
  std::vector<double> us;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    if (simd_arm(state)) {
      simd_call();
    } else {
      scalar_call();
    }
    const auto t1 = std::chrono::steady_clock::now();
    us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.manifold->matrix().cols()));
  report_percentiles(state, us);
  report_speedup(state, scalar_call, simd_call);
}
BENCHMARK(BM_KernelColumnSquaredNorms)
    ->ArgNames({"simd"})->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_KernelSampleCorrelation(benchmark::State& state) {
  if (simd_arm(state) && simd::detected_backend() == simd::Backend::kScalar) {
    state.SkipWithError("no vector backend on this host");
    return;
  }
  const Fixtures& f = fixtures();
  const ScopedBackend scope(arm_backend(state));
  // Both arms go through core::sample_correlation — the dispatch there
  // routes scalar to the legacy loop and vector through the SoA adapter
  // (conversion included: that is the real per-call cost).
  const auto call = [&f] {
    benchmark::DoNotOptimize(core::sample_correlation(f.x));
  };
  std::vector<double> us;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    call();
    const auto t1 = std::chrono::steady_clock::now();
    us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSnapshots));
  report_percentiles(state, us);
  if (simd_arm(state)) {
    const double scalar_med = median_us(
        [&f] {
          const ScopedBackend inner(simd::Backend::kScalar);
          benchmark::DoNotOptimize(core::sample_correlation(f.x));
        },
        200);
    const double simd_med = median_us(call, 200);
    if (simd_med > 0.0) {
      state.counters["speedup_vs_scalar"] = scalar_med / simd_med;
    }
  }
}
BENCHMARK(BM_KernelSampleCorrelation)
    ->ArgNames({"simd"})->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// ---- eigensolver and end-to-end -------------------------------------

void BM_EigDense(benchmark::State& state) {
  const Fixtures& f = fixtures();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::hermitian_eig(f.smoothed));
  }
}
BENCHMARK(BM_EigDense);

void BM_EigTruncated(benchmark::State& state) {
  const Fixtures& f = fixtures();
  linalg::TruncatedEigOptions opt;
  opt.rank = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::truncated_hermitian_eig(f.smoothed, opt));
  }
}
BENCHMARK(BM_EigTruncated)->ArgNames({"k"})->Arg(1)->Arg(2);

void BM_PMusicEstimate(benchmark::State& state) {
  const Fixtures& f = fixtures();
  core::PMusicOptions opts;
  if (state.range(0) == 1) opts.music.max_signal_rank = 2;
  const core::PMusicEstimator pmusic(kSpacing, kLambda, opts);
  std::vector<double> us;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(pmusic.estimate(f.x));
    const auto t1 = std::chrono::steady_clock::now();
    us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  report_percentiles(state, us);
}
BENCHMARK(BM_PMusicEstimate)
    ->ArgNames({"truncated"})->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
