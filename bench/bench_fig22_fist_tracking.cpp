// Figures 21/22: passively tracking a fist writing "P" and "O" in the
// air over the 2 m x 2 m table, with 26 vs 13 tags.
//
// Paper: trajectory visually matches the template; median tracking error
// 5.8 cm with 26 tags, 9.7 cm with 13 tags.
#include <cstdio>

#include "bench_util.hpp"
#include "core/tracker.hpp"

namespace {

using namespace dwatch;

/// Waypoints of the letter "P" (about 0.6 m tall) centred on the table.
std::vector<rf::Vec2> letter_p() {
  std::vector<rf::Vec2> pts;
  // Vertical stroke, bottom to top.
  for (double t = 0.0; t <= 1.0; t += 0.125) {
    pts.push_back({0.8, 0.6 + 0.8 * t});
  }
  // Bowl: half circle from top right back to mid.
  for (double a = 90.0; a >= -90.0; a -= 22.5) {
    const double rad = rf::deg2rad(a);
    pts.push_back({0.8 + 0.25 * std::cos(rad), 1.2 + 0.2 * std::sin(rad)});
  }
  return pts;
}

/// Waypoints of the letter "O".
std::vector<rf::Vec2> letter_o() {
  std::vector<rf::Vec2> pts;
  for (double a = 90.0; a <= 450.0; a += 22.5) {
    const double rad = rf::deg2rad(a);
    pts.push_back({1.0 + 0.3 * std::cos(rad), 1.0 + 0.35 * std::sin(rad)});
  }
  return pts;
}

double track_letter(std::size_t num_tags,
                    const std::vector<rf::Vec2>& waypoints,
                    std::vector<double>& errors) {
  rf::Rng dep_rng(bench::kDeploySeed);
  rf::Rng hw(bench::kHardwareSeed);
  auto dep = sim::make_table_deployment(num_tags, 8, dep_rng);
  sim::CaptureOptions copt;
  const sim::Scene scene(std::move(dep), copt, hw);
  harness::RunnerOptions opts;
  opts.pipeline.localizer.grid_step = 0.02;
  harness::ExperimentRunner runner(scene, opts);
  rf::Rng rng(bench::kRunSeed + num_tags);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    runner.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
  }
  runner.collect_baselines(rng);

  core::TrackerOptions topt;
  topt.dt = 0.1;
  topt.gate_distance = 0.5;
  core::AlphaBetaTracker tracker(topt);

  std::size_t fixes = 0;
  for (const rf::Vec2 wp : waypoints) {
    const sim::CylinderTarget fist = sim::CylinderTarget::fist(
        wp, sim::Environment::kTableHeight + 0.15);
    const std::vector<sim::CylinderTarget> targets{fist};
    const auto est = runner.run_fix_best_effort(targets, rng);
    std::optional<rf::Vec2> smoothed;
    // Only consensus fixes update the track; low-confidence fixes coast
    // (the paper's mobility/deadzone mitigation, Section 8).
    if (est.valid) {
      smoothed = tracker.update(est.position);
      ++fixes;
    } else {
      smoothed = tracker.coast();
    }
    if (smoothed) {
      errors.push_back(harness::point_error(*smoothed, wp));
    }
  }
  return static_cast<double>(fixes) /
         static_cast<double>(waypoints.size());
}

}  // namespace

int main() {
  bench::print_header("Fig. 21/22 — fist writing in the air");

  for (const std::size_t tags : {26u, 13u}) {
    std::vector<double> errors;
    const double fix_rate_p = track_letter(tags, letter_p(), errors);
    const double fix_rate_o = track_letter(tags, letter_o(), errors);
    std::printf(
        "\n  %zu tags: %zu tracked points, fix rate P=%.0f%% O=%.0f%%\n",
        tags, errors.size(), 100.0 * fix_rate_p, 100.0 * fix_rate_o);
    if (!errors.empty()) {
      bench::print_row("median tracking error",
                       tags == 26 ? 5.8 : 9.7,
                       100.0 * harness::median(errors), "cm");
      bench::print_row("90th percentile error", tags == 26 ? 12.0 : 18.0,
                       100.0 * harness::percentile(errors, 90.0), "cm");
    }
  }
  std::printf(
      "\n  shape check: fine-grained tracking works on the table and the\n"
      "  denser tag set tracks better (paper Fig. 22).\n");
  return 0;
}
