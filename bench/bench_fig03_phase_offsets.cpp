// Figure 3: random phase offsets at different RF ports.
//
// The paper measures 16 RF ports over four Impinj R420 readers and finds
// offsets from -85.9 deg to 176 deg relative to port 1. We instantiate
// four simulated readers (one power cycle each) and report the per-port
// offsets the same way.
#include <cstdio>

#include "bench_util.hpp"
#include "rfid/reader.hpp"

int main() {
  using namespace dwatch;
  bench::print_header("Fig. 3 — random phase offsets at RF ports");

  rf::Rng hw(bench::kHardwareSeed);
  std::vector<double> offsets_deg;
  std::printf("  port | reader | offset vs port 1 [deg]\n");
  int port = 1;
  for (int reader_idx = 0; reader_idx < 4; ++reader_idx) {
    rfid::ReaderConfig cfg;
    cfg.reader_id = static_cast<std::uint32_t>(reader_idx);
    cfg.hub_elements = 4;  // Fig. 3 probes the reader's 4 RF ports
    const rfid::Reader reader(cfg, hw);
    for (const double rel : reader.relative_phase_offsets()) {
      const double deg = rf::rad2deg(rel);
      // The global reference is the FIRST port of the FIRST reader; the
      // later readers' ports are all "non-reference" ports.
      if (port > 1) offsets_deg.push_back(deg);
      std::printf("  %4d | %6d | %8.1f\n", port, reader_idx, deg);
      ++port;
    }
  }

  double lo = 1e9;
  double hi = -1e9;
  for (const double d : offsets_deg) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  bench::print_row("min offset across 15 non-ref ports", -85.9, lo, "deg");
  bench::print_row("max offset across 15 non-ref ports", 176.0, hi, "deg");
  std::printf(
      "  shape check: offsets are scattered across the circle (the point\n"
      "  of Fig. 3 is that they are RANDOM and must be calibrated out).\n");
  return 0;
}
