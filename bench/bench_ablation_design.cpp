// Ablation bench for the design choices DESIGN.md calls out:
//
//   A. ghost filtering (tag-identity outlier rejection) on/off
//   B. consensus selection vs raw likelihood maximum
//   C. wire path (LLRP + 16-bit quantization) vs raw matrices
//   D. spatial smoothing: forward-backward vs forward vs none
//   E. grid search vs multi-start hill climbing (accuracy side; the
//      timing side lives in bench_latency)
//
// Each row reports consensus coverage and median error over the same
// deterministic library sweep.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace dwatch;

struct Row {
  const char* name;
  harness::RunnerOptions opts;
};

void run_rows(const std::vector<Row>& rows) {
  std::printf("  %-34s | cons %% | median(all) cm | median(valid) cm\n",
              "variant");
  for (const Row& row : rows) {
    const sim::Scene scene =
        bench::make_room_scene(sim::Environment::library());
    const auto locations =
        bench::test_locations(scene.deployment().env, 5, 5);
    rf::Rng rng(bench::kRunSeed);
    const auto sweep =
        bench::run_localization_sweep(scene, locations, 2, rng, row.opts);
    std::printf(
        "  %-34s | %5.0f%% | %14.1f | %16.1f\n", row.name,
        sweep.coverage_pct(),
        sweep.errors.empty() ? 0.0
                             : 100.0 * harness::median(sweep.errors),
        sweep.valid_errors.empty()
            ? 0.0
            : 100.0 * harness::median(sweep.valid_errors));
  }
}

}  // namespace

int main() {
  bench::print_header("Ablation — D-Watch design choices (library sweep)");

  std::vector<Row> rows;
  {
    Row r{"baseline (all defenses on)", {}};
    rows.push_back(r);
  }
  {
    Row r{"A: ghost filtering OFF", {}};
    r.opts.pipeline.ghost_filtering = false;
    rows.push_back(r);
  }
  {
    Row r{"B: consensus floor 0 (raw argmax)", {}};
    r.opts.pipeline.localizer.consensus_floor = 0.0;
    rows.push_back(r);
  }
  {
    Row r{"C: raw matrices (no wire)", {}};
    r.opts.through_wire = false;
    rows.push_back(r);
  }
  {
    Row r{"D: forward-only smoothing", {}};
    r.opts.pipeline.pmusic.music.forward_backward = false;
    rows.push_back(r);
  }
  {
    Row r{"D: NO spatial smoothing", {}};
    r.opts.pipeline.pmusic.music.subarray = 8;
    rows.push_back(r);
  }
  {
    Row r{"E: hill climbing search", {}};
    r.opts.pipeline.localizer.hill_climbing = true;
    r.opts.pipeline.localizer.hill_climb_starts = 25;
    rows.push_back(r);
  }
  {
    Row r{"no calibration at all", {}};
    r.opts.calibrate = false;
    rows.push_back(r);
  }
  run_rows(rows);

  std::printf(
      "\n  reading guide: the wire path should be ~free (C ~= baseline);\n"
      "  removing smoothing (D) or calibration must hurt; hill climbing\n"
      "  (E) should match the grid within a few cm.\n");
  return 0;
}
