// Figure 17: more tags => more blockable paths => higher coverage and
// better accuracy (library, 7..47 tags).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace dwatch;
  bench::print_header("Fig. 17 — coverage & error vs number of tags");

  std::printf("  tags | localizable %% | median valid error [cm]\n");
  std::vector<double> coverages;
  std::vector<double> errors;
  const std::vector<std::size_t> counts{7, 12, 17, 22, 27, 32, 42};
  for (const std::size_t n : counts) {
    const sim::Scene scene =
        bench::make_room_scene(sim::Environment::library(), n);
    const auto locations =
        bench::test_locations(scene.deployment().env, 4, 5);
    rf::Rng rng(bench::kRunSeed);
    const auto sweep =
        bench::run_localization_sweep(scene, locations, 2, rng);
    const double err_cm = sweep.valid_errors.empty() ? 0.0 : 100.0 * harness::median(sweep.valid_errors);
    std::printf("  %4zu | %10.0f | %10.1f\n", n, sweep.localizable_pct(),
                err_cm);
    coverages.push_back(sweep.localizable_pct());
    errors.push_back(err_cm);
  }

  bench::print_row("coverage at 7 tags (low)", 40.0, coverages.front(),
                   "%");
  bench::print_row("coverage at 42 tags (high)", 90.0, coverages.back(),
                   "%");
  bench::print_row("mean error at 7 tags", 45.0, errors.front(), "cm");
  bench::print_row("mean error at 42 tags", 18.0, errors.back(), "cm");
  std::printf(
      "  shape check: both coverage and accuracy improve with tag count\n"
      "  (paper Fig. 17); tags are 5-10 cent 'path generators'.\n");
  return 0;
}
