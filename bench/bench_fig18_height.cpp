// Figure 18: localization error vs tag-array height difference.
//
// Arrays at 1.25 m; tags moved progressively away in height. A
// horizontal ULA measures the CONE angle of arrival, so elevation
// compresses cos(theta) toward broadside and biases the 2-D bearing
// assumption — error grows gently with height offset.
// Paper: ~24 cm at 40 cm difference, ~40 cm at 120 cm.
#include <cstdio>

#include <algorithm>

#include "bench_util.hpp"

int main() {
  using namespace dwatch;
  bench::print_header("Fig. 18 — error vs tag-array height difference");

  std::printf("  height diff [cm] | coverage | median valid error [cm]\n");
  std::vector<double> errs;
  const std::vector<double> diffs_cm{0, 20, 40, 60, 80, 100, 120};
  for (const double diff_cm : diffs_cm) {
    rf::Rng rng_dep(bench::kDeploySeed);
    rf::Rng hw(bench::kHardwareSeed);
    sim::DeploymentOptions dopt;
    // Tags exactly `diff` BELOW the 1.25 m arrays (tags on low shelves /
    // the floor): the propagation plane tilts but targets still cross it.
    dopt.tag_height_lo = std::max(0.08, 1.25 - diff_cm / 100.0);
    dopt.tag_height_hi = dopt.tag_height_lo + 1e-6;
    auto dep = sim::make_room_deployment(sim::Environment::library(), dopt,
                                         rng_dep);
    const sim::Scene scene(std::move(dep), sim::CaptureOptions{}, hw);
    const auto locations =
        bench::test_locations(scene.deployment().env, 5, 5);
    rf::Rng rng(bench::kRunSeed);
    const auto sweep =
        bench::run_localization_sweep(scene, locations, 2, rng);
    const double err_cm =
        sweep.valid_errors.empty()
            ? 999.0
            : 100.0 * harness::median(sweep.valid_errors);
    std::printf("  %16.0f | cons %3.0f%% | %10.1f\n", diff_cm,
                sweep.coverage_pct(), err_cm);
    errs.push_back(err_cm);
  }

  bench::print_row("median error at 40 cm difference", 24.0, errs[2], "cm");
  bench::print_row("median error at 120 cm difference", 40.0, errs.back(),
                   "cm");
  std::printf(
      "  shape check: graceful degradation — height mismatch biases but\n"
      "  does not break the 2-D bearing model (paper Fig. 18).\n");
  return 0;
}
