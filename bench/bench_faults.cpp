// Fault-injection overhead microbenchmarks (google-benchmark).
//
// The fault subsystem sits on the hot ingest path when a stress run is
// active, and the tolerant stream decoder + degraded localizer are the
// paths a production deployment would actually run. These benches pin
// their costs: a FaultPlan decision must be nanoseconds (it brackets
// every frame and observation), corrupt_report must stay cheap relative
// to LLRP decode, and K-of-N localization must not cost more than the
// full-array fix it replaces.
#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "rfid/llrp.hpp"

namespace {

using namespace dwatch;

const sim::Scene& shared_scene() {
  static const sim::Scene scene =
      bench::make_room_scene(sim::Environment::library());
  return scene;
}

rfid::RoAccessReport shared_report() {
  const sim::Scene& scene = shared_scene();
  rf::Rng rng(21);
  rfid::RoAccessReport report;
  report.message_id = 1;
  for (std::size_t t = 0; t < scene.num_tags(); ++t) {
    report.observations.push_back(scene.capture_observation(0, t, {}, rng));
  }
  return report;
}

void BM_FaultPlanDecision(benchmark::State& state) {
  // One fires() + one magnitude() per potential injection point; this
  // pair brackets every frame and every observation in a stress run.
  const faults::FaultPlan plan(42, faults::FaultRates::uniform(0.1));
  faults::FaultSite site;
  std::uint64_t n = 0;
  for (auto _ : state) {
    site.extra = ++n;
    benchmark::DoNotOptimize(
        plan.fires(faults::FaultKind::kFrameTruncation, site));
    benchmark::DoNotOptimize(
        plan.magnitude(faults::FaultKind::kPhaseJump, site));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultPlanDecision);

/// Observation-layer mutation of a full epoch report at a given
/// per-mille injection rate (Arg). Arg(0) is the clean-plan floor: the
/// cost of deciding "no fault" for every observation.
void BM_CorruptReport(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 1000.0;
  const rfid::RoAccessReport report = shared_report();
  faults::FaultInjector injector(
      faults::FaultPlan(7, faults::FaultRates::uniform(rate)));
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    rfid::RoAccessReport copy = report;
    injector.corrupt_report(copy, ++epoch, 0);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() *
                                report.observations.size()));
}
BENCHMARK(BM_CorruptReport)->Arg(0)->Arg(100)->Arg(500);

/// Stream decode of one epoch's frames. Arg(0): strict next_report on a
/// clean stream (the baseline). Arg(1): tolerant path, clean stream —
/// the steady-state overhead of the quarantine machinery. Arg(2):
/// tolerant path with 10% of frames truncated — the resync cost.
void BM_StreamDecode(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const rfid::RoAccessReport report = shared_report();
  // One frame per observation, as the stress chain sends them.
  std::vector<std::vector<std::uint8_t>> clean_frames;
  for (const auto& obs : report.observations) {
    rfid::RoAccessReport one;
    one.message_id = report.message_id;
    one.observations.push_back(obs);
    clean_frames.push_back(encode(one));
  }
  std::vector<std::vector<std::uint8_t>> frames;
  if (mode == 2) {
    faults::FaultInjector injector(faults::FaultPlan(
        13, faults::FaultRates::only(faults::FaultKind::kFrameTruncation,
                                     0.10)));
    for (std::size_t i = 0; i < clean_frames.size(); ++i) {
      auto delivered = injector.filter_frame(clean_frames[i], 0, 0, i);
      if (delivered) frames.push_back(std::move(*delivered));
    }
  } else {
    frames = clean_frames;
  }
  std::size_t decoded = 0;
  for (auto _ : state) {
    rfid::LlrpStreamDecoder decoder;
    for (const auto& frame : frames) decoder.feed(frame);
    if (mode == 0) {
      while (auto r = decoder.next_report()) {
        benchmark::DoNotOptimize(r);
        ++decoded;
      }
    } else {
      while (auto r = decoder.next_report_tolerant()) {
        benchmark::DoNotOptimize(r);
        ++decoded;
      }
      decoder.flush_incomplete();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(decoded));
}
BENCHMARK(BM_StreamDecode)->Arg(0)->Arg(1)->Arg(2);

/// K-of-N degraded fix vs the full-array fix it replaces. Arg is the
/// number of arrays marked dead before localizing.
void BM_DegradedLocalize(benchmark::State& state) {
  const auto dead = static_cast<std::size_t>(state.range(0));
  const sim::Scene& scene = shared_scene();
  harness::RunnerOptions opts;
  opts.calibrate = false;
  opts.through_wire = false;
  harness::ExperimentRunner runner(scene, opts);
  rf::Rng rng(9);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    runner.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
  }
  runner.collect_baselines(rng);
  for (std::size_t a = 0; a < dead && a < scene.num_arrays(); ++a) {
    runner.pipeline().set_array_health(a, false);
  }
  const std::vector<sim::CylinderTarget> targets{
      sim::CylinderTarget::human({3.0, 4.0})};
  runner.run_epoch(targets, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runner.pipeline().localize_with_confidence(/*best_effort=*/true));
  }
}
BENCHMARK(BM_DegradedLocalize)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
