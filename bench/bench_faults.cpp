// Fault-injection overhead microbenchmarks (google-benchmark).
//
// The fault subsystem sits on the hot ingest path when a stress run is
// active, and the tolerant stream decoder + degraded localizer are the
// paths a production deployment would actually run. These benches pin
// their costs: a FaultPlan decision must be nanoseconds (it brackets
// every frame and observation), corrupt_report must stay cheap relative
// to LLRP decode, and K-of-N localization must not cost more than the
// full-array fix it replaces.
#include <benchmark/benchmark.h>

#include "bench_reporter.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/calibration.hpp"
#include "core/pipeline.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/recalibration.hpp"
#include "rf/snapshot.hpp"
#include "rfid/llrp.hpp"

namespace {

using namespace dwatch;

const sim::Scene& shared_scene() {
  static const sim::Scene scene =
      bench::make_room_scene(sim::Environment::library());
  return scene;
}

rfid::RoAccessReport shared_report() {
  const sim::Scene& scene = shared_scene();
  rf::Rng rng(21);
  rfid::RoAccessReport report;
  report.message_id = 1;
  for (std::size_t t = 0; t < scene.num_tags(); ++t) {
    report.observations.push_back(scene.capture_observation(0, t, {}, rng));
  }
  return report;
}

void BM_FaultPlanDecision(benchmark::State& state) {
  // One fires() + one magnitude() per potential injection point; this
  // pair brackets every frame and every observation in a stress run.
  const faults::FaultPlan plan(42, faults::FaultRates::uniform(0.1));
  faults::FaultSite site;
  std::uint64_t n = 0;
  for (auto _ : state) {
    site.extra = ++n;
    benchmark::DoNotOptimize(
        plan.fires(faults::FaultKind::kFrameTruncation, site));
    benchmark::DoNotOptimize(
        plan.magnitude(faults::FaultKind::kPhaseJump, site));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultPlanDecision);

/// Observation-layer mutation of a full epoch report at a given
/// per-mille injection rate (Arg). Arg(0) is the clean-plan floor: the
/// cost of deciding "no fault" for every observation.
void BM_CorruptReport(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 1000.0;
  const rfid::RoAccessReport report = shared_report();
  faults::FaultInjector injector(
      faults::FaultPlan(7, faults::FaultRates::uniform(rate)));
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    rfid::RoAccessReport copy = report;
    injector.corrupt_report(copy, ++epoch, 0);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() *
                                report.observations.size()));
}
BENCHMARK(BM_CorruptReport)->Arg(0)->Arg(100)->Arg(500);

/// Stream decode of one epoch's frames. Arg(0): strict next_report on a
/// clean stream (the baseline). Arg(1): tolerant path, clean stream —
/// the steady-state overhead of the quarantine machinery. Arg(2):
/// tolerant path with 10% of frames truncated — the resync cost.
void BM_StreamDecode(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const rfid::RoAccessReport report = shared_report();
  // One frame per observation, as the stress chain sends them.
  std::vector<std::vector<std::uint8_t>> clean_frames;
  for (const auto& obs : report.observations) {
    rfid::RoAccessReport one;
    one.message_id = report.message_id;
    one.observations.push_back(obs);
    clean_frames.push_back(encode(one));
  }
  std::vector<std::vector<std::uint8_t>> frames;
  if (mode == 2) {
    faults::FaultInjector injector(faults::FaultPlan(
        13, faults::FaultRates::only(faults::FaultKind::kFrameTruncation,
                                     0.10)));
    for (std::size_t i = 0; i < clean_frames.size(); ++i) {
      auto delivered = injector.filter_frame(clean_frames[i], 0, 0, i);
      if (delivered) frames.push_back(std::move(*delivered));
    }
  } else {
    frames = clean_frames;
  }
  std::size_t decoded = 0;
  for (auto _ : state) {
    rfid::LlrpStreamDecoder decoder;
    for (const auto& frame : frames) decoder.feed(frame);
    if (mode == 0) {
      while (auto r = decoder.next_report()) {
        benchmark::DoNotOptimize(r);
        ++decoded;
      }
    } else {
      while (auto r = decoder.next_report_tolerant()) {
        benchmark::DoNotOptimize(r);
        ++decoded;
      }
      decoder.flush_incomplete();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(decoded));
}
BENCHMARK(BM_StreamDecode)->Arg(0)->Arg(1)->Arg(2);

/// K-of-N degraded fix vs the full-array fix it replaces. Arg is the
/// number of arrays marked dead before localizing.
void BM_DegradedLocalize(benchmark::State& state) {
  const auto dead = static_cast<std::size_t>(state.range(0));
  const sim::Scene& scene = shared_scene();
  harness::RunnerOptions opts;
  opts.calibrate = false;
  opts.through_wire = false;
  harness::ExperimentRunner runner(scene, opts);
  rf::Rng rng(9);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    runner.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
  }
  runner.collect_baselines(rng);
  for (std::size_t a = 0; a < dead && a < scene.num_arrays(); ++a) {
    runner.pipeline().set_array_health(a, false);
  }
  const std::vector<sim::CylinderTarget> targets{
      sim::CylinderTarget::human({3.0, 4.0})};
  runner.run_epoch(targets, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runner.pipeline().localize_with_confidence(/*best_effort=*/true));
  }
}
BENCHMARK(BM_DegradedLocalize)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

// --- recovery-path latency (BENCH_recovery.json) ------------------------
//
// The recovery subsystem's promise is that healing never stalls the fix
// loop: a recalibration runs off-path, a checkpoint write sits on the
// epoch cadence, a restore happens once at startup. These benches pin
// the tail latencies operators budget for — each reports manual
// p50/p95/p99 counters [ms] computed over the per-iteration timings, in
// addition to google-benchmark's mean.

/// Sorted-percentile counters over one wall-clock sample per iteration.
void report_percentiles(benchmark::State& state, std::vector<double>& ms) {
  if (ms.empty()) return;
  std::sort(ms.begin(), ms.end());
  const auto pct = [&ms](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(ms.size() - 1) + 0.5);
    return ms[std::min(idx, ms.size() - 1)];
  };
  state.counters["p50_ms"] = pct(0.50);
  state.counters["p95_ms"] = pct(0.95);
  state.counters["p99_ms"] = pct(0.99);
}

std::vector<core::CalibrationMeasurement> recalibration_anchors() {
  // Six anchor tags spread across the field of view, 30 dB SNR, the
  // same synthesis the recalibration unit tests use.
  constexpr std::size_t kM = 8;
  const std::vector<double> offsets{0.0, 0.7, -1.1, 2.0,
                                    0.3, -0.6, 1.4, -2.2};
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, kM);
  rf::Rng rng(404);
  std::vector<core::CalibrationMeasurement> out;
  for (std::size_t i = 0; i < 6; ++i) {
    rf::PropagationPath p;
    p.kind = rf::PathKind::kDirect;
    p.vertices = {{-10, 0, 1}, {0, 0, 1}};
    p.length = 10.0;
    p.aoa = rf::deg2rad(25.0 + 26.0 * static_cast<double>(i));
    p.gain = {0.02, 0.0};
    const std::vector<rf::PropagationPath> paths{p};
    rf::SnapshotOptions opts;
    opts.num_snapshots = 24;
    opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 30.0);
    opts.port_phase_offsets = offsets;
    core::CalibrationMeasurement m;
    m.snapshots = rf::synthesize_snapshots(ula, paths, {}, opts, rng);
    m.los_angle = p.aoa;
    out.push_back(std::move(m));
  }
  return out;
}

/// One full GA+GD recalibration solve + acceptance decision — the work
/// a drift trip schedules on the worker pool. Its latency bounds how
/// long a drifting array keeps localizing with a stale calibration.
void BM_RecoveryRecalibration(benchmark::State& state) {
  const core::WirelessCalibrator cal(rf::kDefaultElementSpacing,
                                     rf::kDefaultWavelength);
  const auto anchors = recalibration_anchors();
  std::vector<double> drifted{0.0, 0.7, -1.1, 2.0, 0.3, -0.6, 1.4, -2.2};
  for (std::size_t i = 1; i < drifted.size(); ++i) {
    drifted[i] += 0.1 * static_cast<double>(i);
  }
  recovery::RecalibrationManager mgr(nullptr);  // solve on this thread
  std::vector<double> ms;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    mgr.launch(0, cal, anchors, drifted);
    auto outcome = mgr.poll();
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(outcome);
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  report_percentiles(state, ms);
}
BENCHMARK(BM_RecoveryRecalibration)->Unit(benchmark::kMillisecond);

const recovery::Snapshot& shared_snapshot() {
  // A realistic image: 4 calibrated arrays, a full round of baselines,
  // one observed epoch, non-trivial stats.
  static const recovery::Snapshot snap = [] {
    const sim::Scene& scene = shared_scene();
    harness::RunnerOptions opts;
    opts.calibrate = false;
    opts.through_wire = false;
    harness::ExperimentRunner runner(scene, opts);
    rf::Rng rng(11);
    for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
      runner.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
    }
    runner.collect_baselines(rng);
    const std::vector<sim::CylinderTarget> targets{
        sim::CylinderTarget::human({3.0, 4.0})};
    runner.run_epoch(targets, rng);
    recovery::Snapshot s;
    s.pipeline = runner.pipeline().export_state();
    s.stats.checkpoints_written = 41;
    s.stats.recalibrations_accepted = 3;
    s.epoch = 42;
    return s;
  }();
  return snap;
}

/// Atomic checkpoint write (encode + tmp file + fsync-less rename) on
/// the epoch cadence — stolen straight from the fix loop's budget.
void BM_RecoveryCheckpointWrite(benchmark::State& state) {
  const recovery::Snapshot& snap = shared_snapshot();
  const std::string path =
      (std::filesystem::temp_directory_path() / "dwatch_bench_checkpoint.bin")
          .string();
  recovery::CheckpointStore store(path);
  std::vector<double> ms;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = store.write(snap);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(ok);
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * recovery::encode_snapshot(snap).size()));
  report_percentiles(state, ms);
  std::filesystem::remove(path);
}
BENCHMARK(BM_RecoveryCheckpointWrite)->Unit(benchmark::kMillisecond);

/// Cold-start restore: read + CRC-verify + decode the last committed
/// image. Bounds crash-to-first-fix recovery time.
void BM_RecoveryCheckpointRestore(benchmark::State& state) {
  const recovery::Snapshot& snap = shared_snapshot();
  const std::string path =
      (std::filesystem::temp_directory_path() / "dwatch_bench_restore.bin")
          .string();
  recovery::CheckpointStore store(path);
  store.write(snap);
  std::vector<double> ms;
  for (auto _ : state) {
    recovery::Snapshot out;
    const auto t0 = std::chrono::steady_clock::now();
    const recovery::RestoreError err = store.load(out);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(err);
    benchmark::DoNotOptimize(out);
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * recovery::encode_snapshot(snap).size()));
  report_percentiles(state, ms);
  std::filesystem::remove(path);
}
BENCHMARK(BM_RecoveryCheckpointRestore)->Unit(benchmark::kMillisecond);

}  // namespace

DWATCH_BENCH_MAIN()
