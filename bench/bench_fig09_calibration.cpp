// Figure 9: phase-calibration error vs number of tags — D-Watch's
// subspace calibration against the Phaser-style baseline, with the wired
// (ArrayTrack-style) truth supplied by the simulator.
//
// Paper shape: D-Watch error falls below 0.05 rad once >= 4 tags are
// used; Phaser stays flat and clearly worse (its single-dominant-path
// assumption is broken by multipath, which no amount of tags fixes).
#include <cstdio>

#include "baseline/phaser_calibration.hpp"
#include "bench_util.hpp"
#include "core/calibration.hpp"

int main() {
  using namespace dwatch;
  bench::print_header("Fig. 9 — wireless phase calibration error vs #tags");

  const sim::Scene scene =
      bench::make_room_scene(sim::Environment::laboratory());
  const auto& array = scene.deployment().arrays[0];
  const std::vector<double> truth =
      scene.reader(0).relative_phase_offsets();

  std::printf("  tags | D-Watch [rad] | Phaser [rad]\n");
  rf::Rng rng(bench::kRunSeed);
  double dwatch_at_4 = 0.0;
  double phaser_at_4 = 0.0;
  for (const std::size_t k : {1u, 2u, 3u, 4u, 5u, 6u, 8u, 10u}) {
    // Average over a few capture realizations to stabilize the trend.
    double dwatch_sum = 0.0;
    double phaser_sum = 0.0;
    const int trials = 3;
    for (int trial = 0; trial < trials; ++trial) {
      std::vector<core::CalibrationMeasurement> meas;
      for (const std::size_t t : harness::nearest_tags(scene, 0, k)) {
        core::CalibrationMeasurement m;
        // Two captures concatenated (24 snapshots), as the runner does.
        const auto x1 = scene.capture(0, t, {}, rng);
        const auto x2 = scene.capture(0, t, {}, rng);
        linalg::CMatrix x(x1.rows(), x1.cols() + x2.cols());
        for (std::size_t r = 0; r < x.rows(); ++r) {
          for (std::size_t c = 0; c < x1.cols(); ++c) x(r, c) = x1(r, c);
          for (std::size_t c = 0; c < x2.cols(); ++c) {
            x(r, x1.cols() + c) = x2(r, c);
          }
        }
        m.snapshots = std::move(x);
        m.los_angle =
            array.arrival_angle(scene.deployment().tags[t].position);
        meas.push_back(std::move(m));
      }
      core::WirelessCalibrator calibrator(array.spacing(), array.lambda());
      dwatch_sum += core::mean_phase_error(
          calibrator.calibrate(meas, rng).offsets, truth);
      phaser_sum += core::mean_phase_error(
          baseline::phaser_calibrate(meas, array.spacing(), array.lambda()),
          truth);
    }
    const double dwatch_err = dwatch_sum / trials;
    const double phaser_err = phaser_sum / trials;
    if (k == 4) {
      dwatch_at_4 = dwatch_err;
      phaser_at_4 = phaser_err;
    }
    std::printf("  %4zu | %13.4f | %12.4f\n", k, dwatch_err, phaser_err);
  }

  bench::print_row("D-Watch error at 4 tags", 0.05, dwatch_at_4, "rad");
  bench::print_row("Phaser error (flat, coarse)", 0.15, phaser_at_4, "rad");
  std::printf(
      "  shape check: D-Watch improves with tags and beats Phaser; Phaser\n"
      "  is limited by multipath bias, not tag count.\n");
  return 0;
}
