// Build-aware google-benchmark JSON reporter.
//
// Why this exists: the distro-packaged libbenchmark bakes its OWN build
// type into the stock JSONReporter, so every JSON it writes says
// `"library_build_type": "debug"` no matter how THIS repo was compiled.
// scripts/check.sh gates staged BENCH_*.json on that field to keep
// debug-build numbers out of the trajectory, so the context block must
// reflect the build of the binary that produced the numbers, not of the
// shared library that formatted them. This reporter re-emits the stock
// context shape with library_build_type taken from this translation
// unit's NDEBUG, plus three dwatch fields:
//
//   dwatch_build_type    CMAKE_BUILD_TYPE the bench tree was configured
//                        with (via the DWATCH_BENCH_BUILD_TYPE define)
//   dwatch_lto           whether DWATCH_LTO was ON for this tree
//   dwatch_simd_backend  the kernel backend the numbers were taken on
//
// Use DWATCH_BENCH_MAIN() in place of BENCHMARK_MAIN(); it wires this
// reporter in as the --benchmark_out file reporter and leaves console
// output untouched.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <ctime>
#include <ostream>
#include <string>
#include <string_view>

#include "linalg/simd_kernels.hpp"

#ifndef DWATCH_BENCH_BUILD_TYPE
#define DWATCH_BENCH_BUILD_TYPE "unknown"
#endif
#ifndef DWATCH_BENCH_LTO
#define DWATCH_BENCH_LTO 0
#endif

namespace dwatch::bench {

class BuildAwareJsonReporter : public benchmark::JSONReporter {
 public:
  bool ReportContext(const Context& context) override {
    std::ostream& out = GetOutputStream();
    out << "{\n  \"context\": {\n";
    out << "    \"date\": \"" << local_date() << "\",\n";
    out << "    \"host_name\": \"" << escaped(context.sys_info.name)
        << "\",\n";
    if (Context::executable_name != nullptr) {
      out << "    \"executable\": \"" << escaped(Context::executable_name)
          << "\",\n";
    }
    const benchmark::CPUInfo& cpu = context.cpu_info;
    out << "    \"num_cpus\": " << cpu.num_cpus << ",\n";
    out << "    \"mhz_per_cpu\": "
        << static_cast<std::int64_t>(cpu.cycles_per_second / 1e6 + 0.5)
        << ",\n";
    if (cpu.scaling != benchmark::CPUInfo::UNKNOWN) {
      out << "    \"cpu_scaling_enabled\": "
          << (cpu.scaling == benchmark::CPUInfo::ENABLED ? "true" : "false")
          << ",\n";
    }
    out << "    \"caches\": [\n";
    for (std::size_t i = 0; i < cpu.caches.size(); ++i) {
      const auto& c = cpu.caches[i];
      out << "      {\n"
          << "        \"type\": \"" << escaped(c.type) << "\",\n"
          << "        \"level\": " << c.level << ",\n"
          << "        \"size\": " << c.size << ",\n"
          << "        \"num_sharing\": " << c.num_sharing << "\n"
          << "      }" << (i + 1 < cpu.caches.size() ? "," : "") << "\n";
    }
    out << "    ],\n";
    out << "    \"load_avg\": [";
    for (std::size_t i = 0; i < cpu.load_avg.size(); ++i) {
      out << (i ? "," : "") << cpu.load_avg[i];
    }
    out << "],\n";
    // The field the check.sh gate reads: this binary's build, not the
    // shared benchmark library's.
#ifdef NDEBUG
    out << "    \"library_build_type\": \"release\",\n";
#else
    out << "    \"library_build_type\": \"debug\",\n";
#endif
    out << "    \"dwatch_build_type\": \"" << DWATCH_BENCH_BUILD_TYPE
        << "\",\n";
    out << "    \"dwatch_lto\": " << (DWATCH_BENCH_LTO ? "true" : "false")
        << ",\n";
    out << "    \"dwatch_simd_backend\": \""
        << linalg::simd::backend_name(linalg::simd::active_backend())
        << "\"\n";
    out << "  },\n";
    out << "  \"benchmarks\": [\n";
    return true;
  }

 private:
  static std::string local_date() {
    std::time_t now = std::time(nullptr);
    std::tm tm_buf{};
    localtime_r(&now, &tm_buf);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%FT%T%z", &tm_buf);
    return buf;
  }

  static std::string escaped(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
      if (ch == '"' || ch == '\\') out += '\\';
      out += ch;
    }
    return out;
  }
};

/// BENCHMARK_MAIN() body with the build-aware file reporter attached.
/// The file reporter may only be passed when --benchmark_out= is present
/// (the library treats the combination as mandatory), so argv is scanned
/// before Initialize() consumes the recognized flags.
inline int run_benchmark_main(int argc, char** argv) {
  bool wants_file = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      wants_file = true;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (wants_file) {
    BuildAwareJsonReporter file_reporter;
    benchmark::RunSpecifiedBenchmarks(nullptr, &file_reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace dwatch::bench

#define DWATCH_BENCH_MAIN()                                    \
  int main(int argc, char** argv) {                            \
    return ::dwatch::bench::run_benchmark_main(argc, argv);    \
  }
