// Figure 4: AoA spectrum change estimated by traditional MUSIC.
//
// Paper setup: three controlled paths; blocking the 50-degree path
// perturbs OTHER peaks of the (normalized) MUSIC spectrum, and blocking
// all three barely changes any peak. We reproduce both effects and print
// the per-peak normalized amplitudes.
#include <cstdio>

#include "baseline/music_power_detector.hpp"
#include "bench_util.hpp"
#include "rf/array.hpp"
#include "rf/snapshot.hpp"

namespace {

dwatch::rf::PropagationPath plane_path(double deg, double amp) {
  dwatch::rf::PropagationPath p;
  p.kind = dwatch::rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1}, {0, 0, 1}};
  p.length = 10.0;
  p.aoa = dwatch::rf::deg2rad(deg);
  p.gain = {amp, 0.0};
  return p;
}

}  // namespace

int main() {
  using namespace dwatch;
  bench::print_header("Fig. 4 — traditional MUSIC cannot track path power");

  const std::vector<double> angles{50.0, 95.0, 140.0};
  const std::vector<rf::PropagationPath> paths{plane_path(50, 0.02),
                                               plane_path(95, 0.015),
                                               plane_path(140, 0.012)};
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, 8);
  rf::SnapshotOptions opts;
  opts.num_snapshots = 32;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 30.0);

  const baseline::MusicPowerDetector music(rf::kDefaultElementSpacing,
                                           rf::kDefaultWavelength);

  rf::Rng rng(bench::kRunSeed);
  const auto base = rf::synthesize_snapshots(ula, paths, {}, opts, rng);
  const std::vector<double> one_blocked{0.25, 1.0, 1.0};
  const auto one =
      rf::synthesize_snapshots(ula, paths, one_blocked, opts, rng);
  const std::vector<double> all_blocked{0.25, 0.25, 0.25};
  const auto all =
      rf::synthesize_snapshots(ula, paths, all_blocked, opts, rng);

  const auto s_base = music.spectrum(base);
  const auto s_one = music.spectrum(one);
  const auto s_all = music.spectrum(all);

  std::printf(
      "  normalized MUSIC peak amplitude per path angle\n"
      "  angle | no block | 50deg blocked | ALL blocked\n");
  for (const double a : angles) {
    std::printf("  %5.0f | %8.3f | %13.3f | %11.3f\n", a,
                s_base.value_at(rf::deg2rad(a)),
                s_one.value_at(rf::deg2rad(a)),
                s_all.value_at(rf::deg2rad(a)));
  }

  // Shape checks matching the paper's complaints:
  const double unblocked_change_95 =
      std::abs(s_one.value_at(rf::deg2rad(95)) -
               s_base.value_at(rf::deg2rad(95)));
  const double all_change_max = std::max(
      {std::abs(s_all.value_at(rf::deg2rad(50)) -
                s_base.value_at(rf::deg2rad(50))),
       std::abs(s_all.value_at(rf::deg2rad(95)) -
                s_base.value_at(rf::deg2rad(95))),
       std::abs(s_all.value_at(rf::deg2rad(140)) -
                s_base.value_at(rf::deg2rad(140)))});
  std::printf(
      "\n  complaint 1 (false positives): blocking 50deg ALSO moved the\n"
      "  95deg peak by %.3f (true power there did not change).\n",
      unblocked_change_95);
  std::printf(
      "  complaint 2 (misses): blocking ALL paths changed peaks by at\n"
      "  most %.3f — the normalized spectrum barely notices.\n",
      all_change_max);
  return 0;
}
