// Fleet overload sweep: the admission-control brownout ladder under an
// open-loop load storm, measured end to end through the REAL feedback
// loop (service -> telemetry SLO tracker -> BudgetProvider -> admission
// tier -> service).
//
// BM_FleetOverload runs a 1024-zone fleet for 16 serving ticks at each
// offered-load point of {0.5, 1, 2, 4, 8}x steady-state capacity
// (~1M synthetic reports across the sweep), with mixed traffic classes
// (every 4th zone bulk, anchor calibration epochs on every 16th zone)
// and the telemetry plane attached so sheds burn the shed-SLO budget
// and the burn drives the tier. Exported per point:
//
//   p50/p95/p99_ms      per-tick serving latency under that load
//   shed_rate_<class>   sheds / submissions for bulk and tracking
//   widened / rejected  brownout absorption + typed ingest refusals
//   tier_final/tier_max brownout ladder position reached
//
// Two invariants are enforced with exit(1), not just reported, so a
// CI run of this binary is itself a gate:
//   - anchor-class epochs are NEVER shed, at any offered load;
//   - below capacity (x10 < 10) the controller must stay at tier 0.
//
// BM_FleetSmoke is the same harness at 64 zones / 8 ticks / 4x — small
// enough for scripts/check.sh to run on every verification pass.
//
// The SLO clock is epochs, not wall time, and the load schedule is
// integer (bench_overload.hpp), so tier trajectories and every exported
// counter except the latency percentiles are run-to-run deterministic.
#include <benchmark/benchmark.h>

#include "bench_overload.hpp"
#include "bench_reporter.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/calibration.hpp"
#include "core/pipeline.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"
#include "serve/service.hpp"
#include "telemetry/plane.hpp"

namespace dwatch::serve {
namespace {

// Deliberately small per-zone DSP (4-element arrays, 8 snapshots, a
// coarse grid): the sweep measures the SERVING layer's behavior under
// overload across thousands of zones, and a cheap fix is what lets one
// process host that many zones in a bench run at all.
std::vector<rf::UniformLinearArray> zone_arrays() {
  return {
      rf::UniformLinearArray({2.0, 0.1, 1.2}, {1, 0}, 4),
      rf::UniformLinearArray({0.1, 3.0, 1.2}, {0, 1}, 4),
  };
}

core::SearchBounds zone_bounds() { return {{0.0, 0.0}, {4.0, 4.0}}; }

/// Zones share geometry across kShapes equivalence classes so traffic
/// and baselines are synthesized once per shape, not once per zone.
constexpr std::size_t kShapes = 8;
constexpr std::size_t kRotation = 4;
constexpr std::size_t kArrays = 2;

rf::Vec2 shape_target(std::size_t shape) {
  return {1.0 + 0.3 * static_cast<double>(shape),
          1.4 + 0.25 * static_cast<double>(shape)};
}

linalg::CMatrix synth(const rf::UniformLinearArray& array, double angle_rad,
                      double scale, std::uint64_t seed) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1.2}, array.center()};
  p.length = 10.0;
  p.aoa = angle_rad;
  p.gain = {0.01, 0.0};
  const std::vector<rf::PropagationPath> paths{p};
  rf::SnapshotOptions opts;
  opts.num_snapshots = 8;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  rf::Rng rng(seed);
  const std::vector<double> path_scale{scale};
  return rf::synthesize_snapshots(array, paths, path_scale, opts, rng);
}

rfid::TagObservation wire_obs(const linalg::CMatrix& x,
                              const rfid::Epc96& epc) {
  rfid::TagObservation obs;
  obs.epc = epc;
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(x(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }
  return obs;
}

/// reports[rotation][shape][array]: every zone of a shape routes the
/// same pre-synthesized report bytes, rotated across kRotation epochs.
struct FleetTraffic {
  std::vector<std::vector<std::vector<rfid::RoAccessReport>>> reports;
};

FleetTraffic make_traffic() {
  const auto arrays = zone_arrays();
  FleetTraffic traffic;
  traffic.reports.resize(kRotation);
  for (std::size_t e = 0; e < kRotation; ++e) {
    traffic.reports[e].resize(kShapes);
    for (std::size_t s = 0; s < kShapes; ++s) {
      for (std::size_t a = 0; a < arrays.size(); ++a) {
        const double angle = arrays[a].arrival_angle_planar(shape_target(s));
        const std::uint64_t seed = 1000 * s + 10 * e + a + 1;
        rfid::RoAccessReport report;
        report.message_id = static_cast<std::uint32_t>(seed);
        report.observations.push_back(wire_obs(
            synth(arrays[a], angle, 0.2, seed),
            rfid::Epc96::for_tag_index(
                static_cast<std::uint32_t>(10 * s + a + 1))));
        traffic.reports[e][s].push_back(std::move(report));
      }
    }
  }
  return traffic;
}

/// One tiny calibration measurement per array, per shape — enough to
/// make an epoch anchor-class (the never-shed guarantee under test).
std::vector<std::vector<std::vector<core::CalibrationMeasurement>>>
make_anchor_sets() {
  const auto arrays = zone_arrays();
  std::vector<std::vector<std::vector<core::CalibrationMeasurement>>> sets(
      kShapes);
  for (std::size_t s = 0; s < kShapes; ++s) {
    sets[s].resize(kArrays);
    for (std::size_t a = 0; a < arrays.size(); ++a) {
      const double angle = arrays[a].arrival_angle_planar(shape_target(s));
      core::CalibrationMeasurement m;
      m.snapshots = synth(arrays[a], angle, 1.0, 9000 + 10 * s + a);
      m.los_angle = angle;
      sets[s][a].push_back(std::move(m));
    }
  }
  return sets;
}

constexpr std::size_t kCapacityPerTick = 2;  // == max_queue_per_zone

std::unique_ptr<LocalizationService> make_service(std::size_t zones) {
  ServiceOptions opts;
  opts.num_workers = 0;  // hardware concurrency, the deployed shape
  opts.max_queue_per_zone = kCapacityPerTick;
  auto service = std::make_unique<LocalizationService>(opts);
  const auto arrays = zone_arrays();
  for (std::size_t z = 0; z < zones; ++z) {
    const std::size_t shape = z % kShapes;
    ZoneConfig cfg;
    cfg.name = "zone" + std::to_string(z);
    cfg.arrays = arrays;
    cfg.bounds = zone_bounds();
    cfg.pipeline.localizer.grid_step = 0.5;
    // Every 4th zone is bulk (analytics replay); the rest are live
    // tracking. Anchor class is earned per-epoch by carrying anchors.
    cfg.traffic_class =
        (z % 4 == 3) ? TrafficClass::kBulk : TrafficClass::kTracking;
    const std::size_t id = service->add_zone(std::move(cfg));
    for (std::size_t a = 0; a < arrays.size(); ++a) {
      const double angle = arrays[a].arrival_angle_planar(shape_target(shape));
      service->zone(id).pipeline().add_baseline(
          a,
          rfid::Epc96::for_tag_index(
              static_cast<std::uint32_t>(10 * shape + a + 1)),
          synth(arrays[a], angle, 1.0, 500 + 10 * shape + a));
      service->bind_reader(100 * (z + 1) + a, id, a);
    }
  }
  return service;
}

void report_percentiles(benchmark::State& state, std::vector<double>& ms) {
  if (ms.empty()) return;
  std::sort(ms.begin(), ms.end());
  const auto pct = [&ms](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(ms.size() - 1) + 0.5);
    return ms[std::min(idx, ms.size() - 1)];
  };
  state.counters["p50_ms"] = pct(0.50);
  state.counters["p95_ms"] = pct(0.95);
  state.counters["p99_ms"] = pct(0.99);
}

[[nodiscard]] double shed_rate(const ServiceStats& stats, TrafficClass cls) {
  const auto i = static_cast<std::size_t>(cls);
  const std::uint64_t offered =
      stats.submitted_by_class[i] + stats.shed_by_class[i];
  return offered == 0 ? 0.0
                      : static_cast<double>(stats.shed_by_class[i]) /
                            static_cast<double>(offered);
}

/// The harness proper: `ticks` serving ticks at `x10` tenths of
/// capacity, per-tick latency sampled, the full stats roll-up exported,
/// and the two hard invariants enforced with exit(1).
void run_fleet(benchmark::State& state, std::size_t zones, std::size_t ticks,
               std::uint64_t x10) {
  const FleetTraffic traffic = make_traffic();
  const auto anchors = make_anchor_sets();
  auto service = make_service(zones);

  telemetry::TelemetryOptions topts;
  topts.recorder_ring_epochs = 8;
  // The storm is deliberate: burn/shed dumps would just spin the
  // recorder. Tier escalations still dump (that path is under test).
  topts.dump_on_fast_burn = false;
  topts.dump_on_drift = false;
  topts.dump_on_shed = false;
  telemetry::TelemetryPlane plane(topts);
  plane.attach(*service);

  std::vector<double> tick_ms;
  tick_ms.reserve(ticks);
  std::uint64_t offered_epochs = 0;
  auto tier_max = BrownoutTier::kNormal;

  for (auto _ : state) {
    for (std::uint64_t tick = 0; tick < ticks; ++tick) {
      const std::uint64_t offered = bench::offered_epochs_this_tick(
          kCapacityPerTick, x10, tick);
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint64_t e = 0; e < offered; ++e) {
        const auto& rot = traffic.reports[(tick + e) % kRotation];
        for (std::size_t z = 0; z < zones; ++z) {
          service->begin_epoch(z);
          const std::size_t shape = z % kShapes;
          for (std::size_t a = 0; a < rot[shape].size(); ++a) {
            (void)service->router().route(100 * (z + 1) + a, rot[shape][a]);
          }
          // Calibration cadence: every 16th zone anchors every 3rd
          // tick — the traffic class that must survive every tier.
          if (e == 0 && z % 16 == 0 && tick % 3 == 0) {
            service->add_anchors(z, anchors[shape]);
          }
        }
        offered_epochs += zones;
      }
      const std::size_t processed = service->run_pending();
      benchmark::DoNotOptimize(processed);
      const auto t1 = std::chrono::steady_clock::now();
      tick_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      tier_max = std::max(tier_max, service->admission().tier());
    }
  }

  const ServiceStats stats = service->stats();
  const auto anchor_shed =
      stats.shed_by_class[static_cast<std::size_t>(TrafficClass::kAnchor)];
  if (anchor_shed != 0) {
    std::fprintf(stderr,
                 "bench_fleet: %llu anchor-class epochs shed at load "
                 "x10=%llu — the never-shed guarantee is broken\n",
                 static_cast<unsigned long long>(anchor_shed),
                 static_cast<unsigned long long>(x10));
    std::exit(1);
  }
  if (x10 < 10 && tier_max != BrownoutTier::kNormal) {
    std::fprintf(stderr,
                 "bench_fleet: brownout tier %u reached below capacity "
                 "(x10=%llu) — admission must be inert under nominal load\n",
                 static_cast<unsigned>(tier_max),
                 static_cast<unsigned long long>(x10));
    std::exit(1);
  }

  state.SetItemsProcessed(
      static_cast<std::int64_t>(stats.epochs_processed));
  report_percentiles(state, tick_ms);
  state.counters["zones"] = static_cast<double>(zones);
  state.counters["load_x10"] = static_cast<double>(x10);
  state.counters["offered_epochs"] = static_cast<double>(offered_epochs);
  state.counters["processed"] = static_cast<double>(stats.epochs_processed);
  state.counters["widened"] = static_cast<double>(stats.epochs_widened);
  state.counters["rejected"] = static_cast<double>(stats.epochs_rejected);
  state.counters["shed_total"] = static_cast<double>(stats.epochs_shed);
  state.counters["shed_anchor"] = static_cast<double>(anchor_shed);
  state.counters["shed_rate_tracking"] =
      shed_rate(stats, TrafficClass::kTracking);
  state.counters["shed_rate_bulk"] = shed_rate(stats, TrafficClass::kBulk);
  state.counters["tier_final"] =
      static_cast<double>(static_cast<unsigned>(stats.brownout_tier));
  state.counters["tier_max"] =
      static_cast<double>(static_cast<unsigned>(tier_max));
  state.counters["tier_dumps"] = static_cast<double>(plane.stored_dumps());
}

/// The sweep: 1024 zones x 16 ticks per point, 0.5x to 8x capacity —
/// about a million offered reports across the five points.
void BM_FleetOverload(benchmark::State& state) {
  run_fleet(state, 1024, 16, static_cast<std::uint64_t>(state.range(0)));
}
BENCHMARK(BM_FleetOverload)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(80)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// The check.sh gate: same harness, 64 zones x 8 ticks at 4x. Small
/// enough for every verification pass; fails the build on anchor shed.
void BM_FleetSmoke(benchmark::State& state) {
  run_fleet(state, 64, 8, 40);
}
BENCHMARK(BM_FleetSmoke)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace dwatch::serve

DWATCH_BENCH_MAIN()
