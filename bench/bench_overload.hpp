// The ONE open-loop overload knob shared by every serving bench.
//
// bench_fleet (the admission-control sweep) and bench_serve's
// BM_ServeSloOverload arm must offer load the same way or their numbers
// stop being comparable: both express offered load as a multiplier of
// steady-state capacity in TENTHS (x10 = 15 means 1.5x), and both
// spread fractional multipliers across ticks with the same integer
// Bresenham schedule. Open-loop means the generator never slows down
// when the service browns out — exactly the shape of a real ingest
// storm, and the only shape that exercises shedding at all.
#pragma once

#include <cstdint>

namespace dwatch::bench {

/// Epochs to OFFER one zone on tick `tick` when the service can drain
/// `capacity_per_tick` epochs per zone per tick and the sweep point is
/// `x10` tenths of capacity. Pure integer arithmetic: summing over
/// ticks 0..T-1 yields floor(T * capacity * x10 / 10) exactly, so a
/// 0.5x point offers an epoch every other tick instead of rounding to
/// zero or one, and every binary using this schedule offers the same
/// deterministic sequence for a given (capacity, x10).
[[nodiscard]] constexpr std::uint64_t offered_epochs_this_tick(
    std::uint64_t capacity_per_tick, std::uint64_t x10,
    std::uint64_t tick) noexcept {
  return (tick + 1) * capacity_per_tick * x10 / 10 -
         tick * capacity_per_tick * x10 / 10;
}

}  // namespace dwatch::bench
