// Figure 14: overall localization performance in three environments.
//
// Paper: median/mean errors — library 16.5/17.6 cm, laboratory
// 25.3/25.8 cm, hall 32.1/31.2 cm. Counter-intuitively the RICHEST
// multipath environment wins, because every extra path is another
// tripwire the target can block ("bad" multipath embraced). We reproduce
// the always-report protocol: each trial yields a fix (consensus if
// available, best-effort otherwise).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace dwatch;
  bench::print_header("Fig. 14 — localization error by environment");

  struct Row {
    const char* name;
    sim::Environment env;
    double paper_median_cm;
    double paper_mean_cm;
  };
  std::vector<Row> rows;
  rows.push_back({"library", sim::Environment::library(), 16.5, 17.6});
  rows.push_back({"laboratory", sim::Environment::laboratory(), 25.3, 25.8});
  rows.push_back({"hall", sim::Environment::hall(), 32.1, 31.2});

  const std::vector<double> cdf_levels{0.1, 0.2, 0.3, 0.4, 0.5};
  for (const Row& row : rows) {
    const sim::Scene scene = bench::make_room_scene(row.env);
    const auto locations =
        bench::test_locations(scene.deployment().env, 5, 6);
    rf::Rng rng(bench::kRunSeed);
    const auto sweep =
        bench::run_localization_sweep(scene, locations, 2, rng);

    std::printf("\n  %s (%zu trials, %.0f%% consensus coverage)\n",
                row.name, sweep.trials, sweep.coverage_pct());
    const auto cdf = harness::cdf_at(sweep.errors, cdf_levels);
    std::printf("    CDF:");
    for (std::size_t i = 0; i < cdf_levels.size(); ++i) {
      std::printf("  P(err<=%.0fcm)=%.2f", 100 * cdf_levels[i], cdf[i]);
    }
    std::printf("\n");
    bench::print_row("median error", row.paper_median_cm,
                     100.0 * harness::median(sweep.errors), "cm");
    bench::print_row("mean error", row.paper_mean_cm,
                     100.0 * harness::mean(sweep.errors), "cm");
  }

  std::printf(
      "\n  shape check: the library (richest multipath) achieves the best\n"
      "  accuracy; the bare hall the worst — the paper's headline.\n");
  return 0;
}
