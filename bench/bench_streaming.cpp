// Streaming spectral path: fleet-epoch latency at 1 / 4 / 16 zones
// with the incremental path on, plus the TTFF (time-to-first-fix) gate
// against epoch-boundary sealing.
//
// Two shapes:
//
//   BM_StreamingFleetEpoch/{1,4,16} — one fleet-wide epoch per
//     iteration through the zone-sharded service with streaming +
//     early sealing on; p50/p95/p99 per-epoch wall-clock counters give
//     the latency trajectory (compare against BM_ServeFleetEpoch in
//     BENCH_serve.json to price the streaming machinery).
//
//   BM_StreamingGate — a harness, not a timing shape (Iterations(1)):
//     it drives the SAME traffic through a streaming service and a
//     batch service, computes the fleet-epoch p50 at every zone count
//     and the median TTFF both ways, exports them as counters, and
//     EXITS NON-ZERO when either invariant breaks:
//       (a) fleet-epoch fix-completion p50 must stay sublinear in zone
//           count: the median per-zone fix latency inside a 4- / 16-
//           zone fleet epoch must undercut 4x / 16x the mean
//           single-zone epoch over the same per-zone target mix
//           (fixes are emitted as zones seal, so the median zone's
//           fix lands ~halfway through the drain — a regression here
//           means fixes are being held hostage to the fleet), and
//       (b) median TTFF with early sealing must be STRICTLY below the
//           epoch-boundary baseline, with early seals actually firing.
//     scripts/check.sh greps the exported ttff_regressed counter and
//     refuses to stage a BENCH_streaming.json showing a regression.
#include <benchmark/benchmark.h>

#include "bench_reporter.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"
#include "serve/service.hpp"

namespace dwatch::serve {
namespace {

std::vector<rf::UniformLinearArray> zone_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
  };
}

core::SearchBounds zone_bounds() { return {{0.0, 0.0}, {7.0, 10.0}}; }

linalg::CMatrix synth(const rf::UniformLinearArray& array, double angle_rad,
                      double scale, std::uint64_t seed) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1.25}, array.center()};
  p.length = 10.0;
  p.aoa = angle_rad;
  p.gain = {0.01, 0.0};
  const std::vector<rf::PropagationPath> paths{p};
  rf::SnapshotOptions opts;
  opts.num_snapshots = 16;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  rf::Rng rng(seed);
  const std::vector<double> path_scale{scale};
  return rf::synthesize_snapshots(array, paths, path_scale, opts, rng);
}

rfid::TagObservation wire_obs(const linalg::CMatrix& x,
                              const rfid::Epc96& epc) {
  rfid::TagObservation obs;
  obs.epc = epc;
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(x(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }
  return obs;
}

rf::Vec2 zone_target(std::size_t zone) {
  return {2.0 + 0.5 * static_cast<double>(zone % 8),
          3.0 + 0.7 * static_cast<double>(zone % 8)};
}

/// Distinct per-zone target positions in the fleet mix (zone_target
/// repeats with this period). The sublinearity gate must price its
/// single-zone baseline over the SAME mix: targets differ in how fast
/// they converge, so a baseline pinned to target 0 alone would compare
/// a 16-zone fleet against 16 copies of an unrepresentative zone.
constexpr std::size_t kTargetMix = 8;

/// Streaming traffic: MANY single-observation reports per zone epoch
/// (kRounds per array, array-interleaved) so the convergence gate sees
/// evidence from every array early and the early seal leaves a real
/// backlog behind. reports[rotation][zone] is the route order.
constexpr std::size_t kRotation = 4;
constexpr std::size_t kRounds = 8;

struct FleetTraffic {
  std::vector<std::vector<std::vector<rfid::RoAccessReport>>> reports;
};

FleetTraffic make_traffic(std::size_t zones, std::size_t target_offset = 0) {
  const auto arrays = zone_arrays();
  FleetTraffic traffic;
  traffic.reports.resize(kRotation);
  for (std::size_t e = 0; e < kRotation; ++e) {
    traffic.reports[e].resize(zones);
    for (std::size_t z = 0; z < zones; ++z) {
      for (std::size_t r = 0; r < kRounds; ++r) {
        for (std::size_t a = 0; a < arrays.size(); ++a) {
          const double angle =
              arrays[a].arrival_angle_planar(zone_target(z + target_offset));
          const std::uint64_t seed =
              10000 * (z + target_offset) + 100 * e + 10 * r + a + 1;
          rfid::RoAccessReport report;
          report.message_id = static_cast<std::uint32_t>(seed);
          report.observations.push_back(wire_obs(
              synth(arrays[a], angle, 0.2, seed),
              rfid::Epc96::for_tag_index(
                  static_cast<std::uint32_t>(10 * (z % 8) + a + 1))));
          traffic.reports[e][z].push_back(std::move(report));
        }
      }
    }
  }
  return traffic;
}

std::unique_ptr<LocalizationService> make_service(
    std::size_t zones, bool streaming, std::size_t target_offset = 0) {
  ServiceOptions opts;
  opts.num_workers = 0;  // hardware concurrency, the deployed shape
  auto service = std::make_unique<LocalizationService>(opts);
  const auto arrays = zone_arrays();
  for (std::size_t z = 0; z < zones; ++z) {
    ZoneConfig cfg;
    cfg.name = "zone" + std::to_string(z);
    cfg.arrays = arrays;
    cfg.bounds = zone_bounds();
    cfg.pipeline.streaming.enabled = streaming;
    cfg.pipeline.streaming.early_seal = streaming;
    cfg.pipeline.streaming.min_reports = 4;
    cfg.pipeline.streaming.convergence_window = 2;
    const std::size_t id = service->add_zone(std::move(cfg));
    for (std::size_t a = 0; a < arrays.size(); ++a) {
      const double angle =
          arrays[a].arrival_angle_planar(zone_target(z + target_offset));
      service->zone(id).pipeline().add_baseline(
          a,
          rfid::Epc96::for_tag_index(
              static_cast<std::uint32_t>(10 * (z % 8) + a + 1)),
          synth(arrays[a], angle, 1.0, 500 + 10 * z + a));
      service->bind_reader(100 * (z + 1) + a, id, a);
    }
  }
  return service;
}

/// One fleet-wide epoch: seal every zone, route the backlog, drain.
/// Returns wall milliseconds for the FULL drain.
double drive_epoch(LocalizationService& service, const FleetTraffic& traffic,
                   std::size_t zones, std::size_t rotation) {
  const auto& epoch = traffic.reports[rotation % kRotation];
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t z = 0; z < zones; ++z) service.begin_epoch(z);
  for (std::size_t z = 0; z < zones; ++z) {
    for (std::size_t i = 0; i < epoch[z].size(); ++i) {
      (void)service.router().route(100 * (z + 1) + (i % 2), epoch[z][i]);
    }
  }
  const std::size_t processed = service.run_pending();
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(processed);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Per-zone fix completion latencies within one fleet epoch: wall
/// milliseconds from fleet-epoch start to EACH zone's fix landing,
/// captured through the epoch observer (fixes are emitted as zones
/// seal, not held until the fleet drain finishes). This is the latency
/// a fix consumer sees — and the quantity with a structural
/// sublinearity guarantee: zones complete pipelined through the drain,
/// so the MEDIAN zone's fix lands about halfway through it on a single
/// worker, and earlier still with more workers.
struct CompletionTap {
  std::mutex mu;
  std::chrono::steady_clock::time_point t0;
  std::vector<double>* sink = nullptr;
};

void drive_epoch_tapped(LocalizationService& service, CompletionTap& tap,
                        const FleetTraffic& traffic, std::size_t zones,
                        std::size_t rotation, std::vector<double>& sink) {
  const auto& epoch = traffic.reports[rotation % kRotation];
  {
    const std::lock_guard<std::mutex> lock(tap.mu);
    tap.t0 = std::chrono::steady_clock::now();
    tap.sink = &sink;
  }
  for (std::size_t z = 0; z < zones; ++z) service.begin_epoch(z);
  for (std::size_t z = 0; z < zones; ++z) {
    for (std::size_t i = 0; i < epoch[z].size(); ++i) {
      (void)service.router().route(100 * (z + 1) + (i % 2), epoch[z][i]);
    }
  }
  const std::size_t processed = service.run_pending();
  benchmark::DoNotOptimize(processed);
  const std::lock_guard<std::mutex> lock(tap.mu);
  tap.sink = nullptr;
}

void arm_completion_tap(LocalizationService& service, CompletionTap& tap) {
  service.set_epoch_observer([&tap](const EpochObservation&) {
    const auto now = std::chrono::steady_clock::now();
    const std::lock_guard<std::mutex> lock(tap.mu);
    if (tap.sink == nullptr) return;
    tap.sink->push_back(
        std::chrono::duration<double, std::milli>(now - tap.t0).count());
  });
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

void report_percentiles(benchmark::State& state, std::vector<double>& ms) {
  if (ms.empty()) return;
  std::sort(ms.begin(), ms.end());
  const auto pct = [&ms](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(ms.size() - 1) + 0.5);
    return ms[std::min(idx, ms.size() - 1)];
  };
  state.counters["p50_ms"] = pct(0.50);
  state.counters["p95_ms"] = pct(0.95);
  state.counters["p99_ms"] = pct(0.99);
}

/// Latency trajectory: one streaming fleet epoch per iteration.
void BM_StreamingFleetEpoch(benchmark::State& state) {
  const auto zones = static_cast<std::size_t>(state.range(0));
  const FleetTraffic traffic = make_traffic(zones);
  const auto service = make_service(zones, /*streaming=*/true);
  // TTFF timing needs the observer armed (it may fire on pool threads).
  std::atomic<std::size_t> early_fixes{0};
  service->set_early_fix_observer(
      [&early_fixes](std::size_t, const ZoneFix&) { ++early_fixes; });

  std::vector<double> ms;
  ms.reserve(1024);
  std::size_t rotation = 0;
  for (auto _ : state) {
    ms.push_back(drive_epoch(*service, traffic, zones, rotation++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(zones));
  report_percentiles(state, ms);
  state.counters["zones"] = benchmark::Counter(static_cast<double>(zones));
  state.counters["early_fixes"] =
      benchmark::Counter(static_cast<double>(early_fixes.load()));
}
BENCHMARK(BM_StreamingFleetEpoch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// The invariant harness (details in the file header). Runs once.
void BM_StreamingGate(benchmark::State& state) {
  constexpr std::size_t kZoneCounts[] = {1, 4, 16};
  constexpr std::size_t kEpochs = 24;
  // Untimed epochs per service before sampling: the first epochs pay
  // dense tracker resets and cold caches, and they do NOT pay them
  // evenly across arms (a 1-zone service amortizes its cold start over
  // far fewer timed epochs than a 16-zone one). Without the warmup the
  // gate verdict rides on cold-start luck instead of steady state.
  constexpr std::size_t kWarmup = 2;

  double p50_by_zones[3] = {0.0, 0.0, 0.0};
  double single_zone_mean = 0.0;
  for (auto _ : state) {
    // --- (a) fleet-epoch fix-completion p50 across zone counts,
    // streaming on.
    //
    // The measured quantity is the per-zone FIX COMPLETION latency
    // within a fleet epoch (fleet-epoch start -> that zone's fix
    // landing), pooled over kEpochs — what a fix consumer experiences.
    // The budget is priced from SINGLE-ZONE fleets run over the same
    // 8-target mix the multi-zone fleets carry (targets converge at
    // different speeds, so a baseline pinned to target 0 alone is not
    // 1/16th of a representative 16-zone epoch). Fixes are emitted as
    // zones seal, not held for the fleet drain, so the median zone's
    // fix lands ~halfway through the drain on one worker and earlier
    // with more — sublinear in zone count BY CONSTRUCTION unless a
    // cross-zone contention regression (shared lock, fixes held until
    // the full drain) destroys the pipelining this gate exists to
    // protect.
    std::vector<double> singleton_ms;
    for (std::size_t offset = 0; offset < kTargetMix; ++offset) {
      const FleetTraffic traffic = make_traffic(1, offset);
      const auto service = make_service(1, /*streaming=*/true, offset);
      service->set_early_fix_observer([](std::size_t, const ZoneFix&) {});
      CompletionTap tap;
      arm_completion_tap(*service, tap);
      std::vector<double> warmup_ms;
      for (std::size_t e = 0; e < kWarmup; ++e) {
        drive_epoch_tapped(*service, tap, traffic, 1, e, warmup_ms);
      }
      for (std::size_t e = 0; e < kEpochs / kTargetMix + 1; ++e) {
        drive_epoch_tapped(*service, tap, traffic, 1, e, singleton_ms);
      }
    }
    for (const double v : singleton_ms) single_zone_mean += v;
    single_zone_mean /= static_cast<double>(singleton_ms.size());
    p50_by_zones[0] = median(singleton_ms);

    for (std::size_t zi = 1; zi < 3; ++zi) {
      const std::size_t zones = kZoneCounts[zi];
      const FleetTraffic traffic = make_traffic(zones);
      const auto service = make_service(zones, /*streaming=*/true);
      service->set_early_fix_observer([](std::size_t, const ZoneFix&) {});
      CompletionTap tap;
      arm_completion_tap(*service, tap);
      std::vector<double> warmup_ms;
      for (std::size_t e = 0; e < kWarmup; ++e) {
        drive_epoch_tapped(*service, tap, traffic, zones, e, warmup_ms);
      }
      std::vector<double> ms;
      for (std::size_t e = 0; e < kEpochs; ++e) {
        drive_epoch_tapped(*service, tap, traffic, zones, e, ms);
      }
      p50_by_zones[zi] = median(ms);
    }

    // --- (b) median TTFF, early sealing vs epoch-boundary baseline,
    // on the SAME single-zone traffic. The observer arms the
    // steady-clock TTFF stamp in both services; it never fires in the
    // batch one.
    const std::size_t zones = 1;
    const FleetTraffic traffic = make_traffic(zones);
    const auto stream_service = make_service(zones, /*streaming=*/true);
    const auto batch_service = make_service(zones, /*streaming=*/false);
    stream_service->set_early_fix_observer([](std::size_t, const ZoneFix&) {});
    batch_service->set_early_fix_observer([](std::size_t, const ZoneFix&) {});
    for (std::size_t e = 0; e < kEpochs; ++e) {
      (void)drive_epoch(*stream_service, traffic, zones, e);
      (void)drive_epoch(*batch_service, traffic, zones, e);
    }
    std::vector<double> stream_ttff_us;
    std::vector<double> batch_ttff_us;
    std::size_t early_seals = 0;
    std::size_t reports_skipped = 0;
    for (const ZoneFix& fix : stream_service->fixes(0)) {
      stream_ttff_us.push_back(static_cast<double>(fix.ttff_us));
      if (fix.early) ++early_seals;
      reports_skipped += fix.reports_skipped;
    }
    for (const ZoneFix& fix : batch_service->fixes(0)) {
      batch_ttff_us.push_back(static_cast<double>(fix.ttff_us));
    }
    const double stream_med = median(stream_ttff_us);
    const double batch_med = median(batch_ttff_us);

    // --- export + gate.
    const bool sublinear = single_zone_mean > 0.0 &&
                           p50_by_zones[1] < 4.0 * single_zone_mean &&
                           p50_by_zones[2] < 16.0 * single_zone_mean;
    const bool ttff_ok =
        stream_med < batch_med && early_seals > kEpochs / 2;
    state.counters["p50_ms_z1"] = p50_by_zones[0];
    state.counters["mean_ms_z1"] = single_zone_mean;
    state.counters["p50_ms_z4"] = p50_by_zones[1];
    state.counters["p50_ms_z16"] = p50_by_zones[2];
    state.counters["scaling_16z_vs_linear"] =
        single_zone_mean > 0.0 ? p50_by_zones[2] / (16.0 * single_zone_mean)
                               : 0.0;
    state.counters["ttff_stream_med_us"] = stream_med;
    state.counters["ttff_batch_med_us"] = batch_med;
    state.counters["early_seals"] =
        benchmark::Counter(static_cast<double>(early_seals));
    state.counters["reports_skipped"] =
        benchmark::Counter(static_cast<double>(reports_skipped));
    state.counters["ttff_regressed"] = ttff_ok ? 0.0 : 1.0;
    state.counters["scaling_regressed"] = sublinear ? 0.0 : 1.0;

    if (!sublinear) {
      std::fprintf(stderr,
                   "FATAL: fleet-epoch fix-completion p50 not sublinear "
                   "in zones: single-zone mean=%.3f ms, p50(4)=%.3f ms "
                   "(budget < %.3f), p50(16)=%.3f ms (budget < %.3f)\n",
                   single_zone_mean, p50_by_zones[1],
                   4.0 * single_zone_mean, p50_by_zones[2],
                   16.0 * single_zone_mean);
      std::exit(1);
    }
    if (!ttff_ok) {
      std::fprintf(stderr,
                   "FATAL: streaming TTFF regressed vs epoch-boundary "
                   "sealing: stream median %.1f us, batch median %.1f us, "
                   "early seals %zu/%zu\n",
                   stream_med, batch_med, early_seals, kEpochs);
      std::exit(1);
    }
  }
}
BENCHMARK(BM_StreamingGate)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace dwatch::serve

DWATCH_BENCH_MAIN()
