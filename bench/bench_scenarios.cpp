// Scenario-suite trajectory: every registered scenario driven once per
// iteration through the full sim -> wire -> service -> tracker stack.
//
// One benchmark per scenario, pinned to a single iteration (a scenario
// IS the repeatable unit — everything inside derives from its seed).
// The counters carry the compliance metrics into BENCH_scenarios.json:
// per-scenario fix/tracked RMSE, match rate, and the runner's own
// per-epoch p50/p99 wall clock, so the per-PR trajectory records both
// accuracy and serving-loop latency for every room/mode family.
#include <benchmark/benchmark.h>

#include "bench_reporter.hpp"

#include <string>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

namespace dwatch::scenario {
namespace {

void run_scenario(benchmark::State& state, const ScenarioSpec& spec) {
  RunnerConfig config;
  config.keep_records = false;
  ScenarioRunner runner(config);
  ScenarioMetrics metrics;
  bool pass = false;
  for (auto _ : state) {
    const ScenarioResult result = runner.run(spec);
    metrics = result.metrics;
    pass = result.outcome == Outcome::kPass;
    benchmark::DoNotOptimize(metrics.epochs);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(metrics.epochs));
  state.counters["fix_rmse_m"] = metrics.fix_rmse;
  state.counters["tracked_rmse_m"] = metrics.rmse;
  state.counters["match_rate"] = metrics.match_rate;
  state.counters["epoch_p50_us"] = metrics.p50_epoch_us;
  state.counters["epoch_p99_us"] = metrics.p99_epoch_us;
  state.counters["pass"] = pass ? 1.0 : 0.0;
}

const int kRegistered = [] {
  for (const ScenarioSpec& spec : all_scenarios()) {
    benchmark::RegisterBenchmark(
        ("BM_Scenario/" + spec.name).c_str(),
        [spec](benchmark::State& state) { run_scenario(state, spec); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond)
        ->MeasureProcessCPUTime()
        ->UseRealTime();
  }
  return 0;
}();

}  // namespace
}  // namespace dwatch::scenario

DWATCH_BENCH_MAIN()
