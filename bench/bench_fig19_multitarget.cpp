// Figure 19: multi-target localization of three water bottles on a
// 2 m x 2 m table at decreasing separations (130 / 50 / 20 cm).
//
// Paper: max error 17.2 cm when bottles are sparse (130/50 cm); at 20 cm
// the bottles merge into one blob and can no longer be separated. We
// print the per-snapshot assignments and an ASCII heatmap per case.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace dwatch;

void ascii_heatmap(const core::LikelihoodGrid& grid,
                   const std::vector<rf::Vec2>& truth) {
  const double max_v =
      *std::max_element(grid.values.begin(), grid.values.end());
  if (max_v <= 0.0) return;
  // Downsample to ~40x20 characters.
  const std::size_t cx = std::max<std::size_t>(grid.nx / 40, 1);
  const std::size_t cy = std::max<std::size_t>(grid.ny / 20, 1);
  for (std::size_t iy = grid.ny; iy-- > 0;) {
    if (iy % cy != 0) continue;
    std::printf("    ");
    for (std::size_t ix = 0; ix < grid.nx; ix += cx) {
      const rf::Vec2 p = grid.point(ix, iy);
      bool is_truth = false;
      for (const rf::Vec2 t : truth) {
        if (rf::distance(p, t) < 0.06) is_truth = true;
      }
      const double v = grid.at(ix, iy) / max_v;
      const char c = is_truth ? 'X'
                     : v > 0.8 ? '#'
                     : v > 0.5 ? '+'
                     : v > 0.25 ? '.'
                                : ' ';
      std::putchar(c);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  bench::print_header("Fig. 19 — three-bottle multi-target localization");

  rf::Rng dep_rng(bench::kDeploySeed);
  rf::Rng hw(bench::kHardwareSeed);
  auto dep = sim::make_table_deployment(26, 8, dep_rng);
  sim::CaptureOptions copt;
  const sim::Scene scene(std::move(dep), copt, hw);

  harness::RunnerOptions opts;
  opts.pipeline.localizer.grid_step = 0.02;  // paper: 2x2 cm table grid
  harness::ExperimentRunner runner(scene, opts);
  rf::Rng rng(bench::kRunSeed);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    runner.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
  }
  runner.collect_baselines(rng);

  const double z = sim::Environment::kTableHeight;
  struct Case {
    const char* name;
    double separation_m;
    std::vector<rf::Vec2> spots;
  };
  const std::vector<Case> cases{
      {"130 cm apart", 1.30, {{0.35, 0.65}, {1.0, 1.75}, {1.65, 0.65}}},
      {"50 cm apart", 0.50, {{0.65, 0.8}, {1.0, 1.25}, {1.35, 0.8}}},
      {"20 cm apart", 0.20, {{0.85, 0.95}, {1.0, 1.15}, {1.15, 0.95}}},
  };

  for (const Case& c : cases) {
    std::vector<sim::CylinderTarget> bottles;
    for (const rf::Vec2 s : c.spots) {
      bottles.push_back(sim::CylinderTarget::bottle(s, z));
    }
    runner.run_epoch(bottles, rng);
    const auto hits = runner.pipeline().localize_multi(
        3, std::max(0.15, c.separation_m * 0.6));

    std::printf("\n  %s: %zu/%zu bottles separated\n", c.name, hits.size(),
                c.spots.size());
    double max_err = 0.0;
    for (const auto& hit : hits) {
      double best = 1e9;
      for (const rf::Vec2 s : c.spots) {
        best = std::min(best, rf::distance(hit.position, s));
      }
      max_err = std::max(max_err, best);
      std::printf("    est (%.2f, %.2f) -> nearest bottle %.1f cm\n",
                  hit.position.x, hit.position.y, 100.0 * best);
    }
    ascii_heatmap(runner.pipeline().likelihood_grid(), c.spots);
    if (!hits.empty() && c.separation_m >= 0.5) {
      bench::print_row("max error (sparse bottles)", 17.2, 100.0 * max_err,
                       "cm");
    }
    if (c.separation_m <= 0.2) {
      std::printf(
          "    (paper: at 20 cm the bottles merge — %zu blob(s) found)\n",
          hits.size());
    }
  }
  return 0;
}
