// Serving-layer throughput: fix latency through the zone-sharded
// LocalizationService at 1 / 4 / 16 zones on the shared pool.
//
// Each iteration runs ONE fleet-wide epoch (every zone sealed, one
// run_pending). items processed = fixes, so google-benchmark's
// items_per_second is fix throughput; manual p50/p95/p99 counters give
// the per-epoch wall-clock tail an operator budgets the serving loop
// against. Report synthesis happens OUTSIDE the timed region — the
// bench measures routing + scheduling + the pipeline hot path, not the
// simulator.
#include <benchmark/benchmark.h>

#include "bench_overload.hpp"
#include "bench_reporter.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/obs.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"
#include "serve/service.hpp"

#if DWATCH_OBS_ENABLED
#include "telemetry/slo.hpp"
#endif

namespace dwatch::serve {
namespace {

std::vector<rf::UniformLinearArray> zone_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
  };
}

core::SearchBounds zone_bounds() { return {{0.0, 0.0}, {7.0, 10.0}}; }

linalg::CMatrix synth(const rf::UniformLinearArray& array, double angle_rad,
                      double scale, std::uint64_t seed) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1.25}, array.center()};
  p.length = 10.0;
  p.aoa = angle_rad;
  p.gain = {0.01, 0.0};
  const std::vector<rf::PropagationPath> paths{p};
  rf::SnapshotOptions opts;
  opts.num_snapshots = 16;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  rf::Rng rng(seed);
  const std::vector<double> path_scale{scale};
  return rf::synthesize_snapshots(array, paths, path_scale, opts, rng);
}

rfid::TagObservation wire_obs(const linalg::CMatrix& x,
                              const rfid::Epc96& epc) {
  rfid::TagObservation obs;
  obs.epc = epc;
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(x(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }
  return obs;
}

rf::Vec2 zone_target(std::size_t zone) {
  return {2.0 + 0.5 * static_cast<double>(zone % 8),
          3.0 + 0.7 * static_cast<double>(zone % 8)};
}

/// Pre-synthesized traffic for one fleet: reports[rotation][zone][array].
/// A small rotation of distinct epochs keeps the covariance inputs
/// varied without timing the synthesizer.
struct FleetTraffic {
  std::vector<std::vector<std::vector<rfid::RoAccessReport>>> reports;
};

constexpr std::size_t kRotation = 4;

FleetTraffic make_traffic(std::size_t zones) {
  const auto arrays = zone_arrays();
  FleetTraffic traffic;
  traffic.reports.resize(kRotation);
  for (std::size_t e = 0; e < kRotation; ++e) {
    traffic.reports[e].resize(zones);
    for (std::size_t z = 0; z < zones; ++z) {
      for (std::size_t a = 0; a < arrays.size(); ++a) {
        const double angle =
            arrays[a].arrival_angle_planar(zone_target(z));
        const std::uint64_t seed = 1000 * z + 10 * e + a + 1;
        rfid::RoAccessReport report;
        report.message_id = static_cast<std::uint32_t>(seed);
        report.observations.push_back(wire_obs(
            synth(arrays[a], angle, 0.2, seed),
            rfid::Epc96::for_tag_index(
                static_cast<std::uint32_t>(10 * (z % 8) + a + 1))));
        traffic.reports[e][z].push_back(std::move(report));
      }
    }
  }
  return traffic;
}

std::unique_ptr<LocalizationService> make_service(std::size_t zones) {
  ServiceOptions opts;
  opts.num_workers = 0;  // hardware concurrency, the deployed shape
  auto service = std::make_unique<LocalizationService>(opts);
  const auto arrays = zone_arrays();
  for (std::size_t z = 0; z < zones; ++z) {
    ZoneConfig cfg;
    cfg.name = "zone" + std::to_string(z);
    cfg.arrays = arrays;
    cfg.bounds = zone_bounds();
    const std::size_t id = service->add_zone(std::move(cfg));
    for (std::size_t a = 0; a < arrays.size(); ++a) {
      const double angle = arrays[a].arrival_angle_planar(zone_target(z));
      service->zone(id).pipeline().add_baseline(
          a,
          rfid::Epc96::for_tag_index(
              static_cast<std::uint32_t>(10 * (z % 8) + a + 1)),
          synth(arrays[a], angle, 1.0, 500 + 10 * z + a));
      service->bind_reader(100 * (z + 1) + a, id, a);
    }
  }
  return service;
}

/// Sorted-percentile counters over one wall-clock sample per iteration.
void report_percentiles(benchmark::State& state, std::vector<double>& ms) {
  if (ms.empty()) return;
  std::sort(ms.begin(), ms.end());
  const auto pct = [&ms](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(ms.size() - 1) + 0.5);
    return ms[std::min(idx, ms.size() - 1)];
  };
  state.counters["p50_ms"] = pct(0.50);
  state.counters["p95_ms"] = pct(0.95);
  state.counters["p99_ms"] = pct(0.99);
}

/// One fleet-wide epoch per iteration: seal every zone, route its
/// reports, drain. The percentile counters are per-EPOCH wall clock —
/// the serving loop's cadence budget at that fleet size.
void BM_ServeFleetEpoch(benchmark::State& state) {
  const auto zones = static_cast<std::size_t>(state.range(0));
  const FleetTraffic traffic = make_traffic(zones);
  const auto service = make_service(zones);

  std::vector<double> ms;
  ms.reserve(1024);
  std::size_t rotation = 0;
  for (auto _ : state) {
    const auto& epoch = traffic.reports[rotation];
    rotation = (rotation + 1) % kRotation;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t z = 0; z < zones; ++z) service->begin_epoch(z);
    for (std::size_t z = 0; z < zones; ++z) {
      for (std::size_t a = 0; a < epoch[z].size(); ++a) {
        (void)service->router().route(100 * (z + 1) + a, epoch[z][a]);
      }
    }
    const std::size_t processed = service->run_pending();
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(processed);
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  // items = fixes, so items_per_second is fleet fix throughput.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(zones));
  report_percentiles(state, ms);
  state.counters["zones"] =
      benchmark::Counter(static_cast<double>(zones));
}
BENCHMARK(BM_ServeFleetEpoch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

#if DWATCH_OBS_ENABLED
/// The SLO-report arm: the 16-zone fleet under deliberate overload
/// with an SloTracker fed from the epoch and shed observers INSIDE the
/// timed region. Offered load comes from the SAME open-loop knob as
/// bench_fleet (bench_overload.hpp): range(1) is the multiplier in
/// tenths of capacity, so Args({16, 15}) offers 1.5x — three sealed
/// epochs per zone into a queue of two, one shed per zone per
/// iteration, the historical shape of this arm. items_per_second is
/// still fix throughput, so comparing against BM_ServeFleetEpoch/16
/// prices the per-epoch SLO accounting; the exported counters are the
/// error budgets an operator would read off /slo after the storm.
void BM_ServeSloOverload(benchmark::State& state) {
  const auto zones = static_cast<std::size_t>(state.range(0));
  const auto overload_x10 = static_cast<std::uint64_t>(state.range(1));
  const FleetTraffic traffic = make_traffic(zones);

  ServiceOptions opts;
  opts.num_workers = 0;
  opts.max_queue_per_zone = 2;
  auto service = std::make_unique<LocalizationService>(opts);
  const auto arrays = zone_arrays();
  for (std::size_t z = 0; z < zones; ++z) {
    ZoneConfig cfg;
    cfg.name = "zone" + std::to_string(z);
    cfg.arrays = arrays;
    cfg.bounds = zone_bounds();
    const std::size_t id = service->add_zone(std::move(cfg));
    for (std::size_t a = 0; a < arrays.size(); ++a) {
      const double angle = arrays[a].arrival_angle_planar(zone_target(z));
      service->zone(id).pipeline().add_baseline(
          a,
          rfid::Epc96::for_tag_index(
              static_cast<std::uint32_t>(10 * (z % 8) + a + 1)),
          synth(arrays[a], angle, 1.0, 500 + 10 * z + a));
      service->bind_reader(100 * (z + 1) + a, id, a);
    }
  }

  telemetry::SloConfig slo_config;
  // Wall-clock latency is the bench's own measurement; keep it out of
  // the tracker's verdicts so the counters reflect the shed storm.
  slo_config.fix_latency_budget_us = 60'000'000;
  telemetry::SloTracker tracker(slo_config);
  service->set_epoch_observer([&tracker](const EpochObservation& o) {
    tracker.observe_fix(o.zone, o.fix_latency_us, !o.fix_valid);
  });
  service->set_shed_observer(
      [&tracker](std::size_t zone, std::uint64_t) {
        tracker.observe_shed(zone);
      });

  std::size_t rotation = 0;
  std::uint64_t tick = 0;
  std::uint64_t total_processed = 0;
  for (auto _ : state) {
    // One iteration = one serving tick of the shared open-loop
    // schedule (every burst epoch offered, then one drain).
    const std::uint64_t burst = bench::offered_epochs_this_tick(
        opts.max_queue_per_zone, overload_x10, tick++);
    for (std::uint64_t b = 0; b < burst; ++b) {
      const auto& epoch = traffic.reports[rotation];
      rotation = (rotation + 1) % kRotation;
      for (std::size_t z = 0; z < zones; ++z) {
        service->begin_epoch(z);
        for (std::size_t a = 0; a < epoch[z].size(); ++a) {
          (void)service->router().route(100 * (z + 1) + a, epoch[z][a]);
        }
      }
    }
    const std::size_t processed = service->run_pending();
    total_processed += processed;
    benchmark::DoNotOptimize(processed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_processed));

  // Error-budget roll-up across the fleet, as /slo would report it.
  double shed_budget_min = 1.0;
  double shed_burn_fast_max = 0.0;
  double shed_burn_slow_max = 0.0;
  for (std::size_t z = 0; z < zones; ++z) {
    shed_budget_min = std::min(
        shed_budget_min,
        tracker.budget_remaining(z, telemetry::SloObjective::kShed));
    shed_burn_fast_max =
        std::max(shed_burn_fast_max,
                 tracker.fast_burn(z, telemetry::SloObjective::kShed));
    shed_burn_slow_max =
        std::max(shed_burn_slow_max,
                 tracker.slow_burn(z, telemetry::SloObjective::kShed));
  }
  state.counters["zones"] = benchmark::Counter(static_cast<double>(zones));
  state.counters["overload_x10"] =
      benchmark::Counter(static_cast<double>(overload_x10));
  state.counters["shed_budget_min"] = shed_budget_min;
  state.counters["shed_burn_fast_max"] = shed_burn_fast_max;
  state.counters["shed_burn_slow_max"] = shed_burn_slow_max;
  const ServiceStats stats = service->stats();
  state.counters["shed_fraction"] =
      stats.epochs_submitted == 0
          ? 0.0
          : static_cast<double>(stats.epochs_shed) /
                static_cast<double>(stats.epochs_submitted);
}
BENCHMARK(BM_ServeSloOverload)
    ->Args({16, 15})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
#endif  // DWATCH_OBS_ENABLED

}  // namespace
}  // namespace dwatch::serve

DWATCH_BENCH_MAIN()
