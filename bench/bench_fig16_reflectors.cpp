// Figure 16: adding reflectors to the (bare) hall raises both the
// coverage rate and the accuracy.
//
// Paper: coverage climbs steeply with reflector count; mean error falls
// from 31.2 cm to 20.8 cm by 12 reflectors — "bad" multipath is extra
// sensing infrastructure, for free.
#include <cstdio>

#include <algorithm>

#include "bench_util.hpp"

int main() {
  using namespace dwatch;
  bench::print_header("Fig. 16 — coverage & error vs number of reflectors");

  std::printf("  reflectors | coverage %% | median error [cm]\n");
  double cov_first = 0.0;
  double cov_best = 0.0;
  double err_first = 0.0;
  double err_last = 0.0;
  const std::vector<std::size_t> counts{0, 2, 4, 6, 8, 10, 12};
  for (const std::size_t n : counts) {
    sim::Environment env = sim::Environment::hall();
    rf::Rng placer(99);  // deterministic reflector placement
    env.add_scatterers(n, placer, 4.0, 1.2, 0.3);
    // A sparser tag set than the room default: our synthetic tag layout
    // otherwise webs the hall with direct paths and hides the reflector
    // contribution the paper isolates.
    const sim::Scene scene = bench::make_room_scene(std::move(env), 12);
    const auto locations =
        bench::test_locations(scene.deployment().env, 5, 6);
    rf::Rng rng(bench::kRunSeed);
    const auto sweep =
        bench::run_localization_sweep(scene, locations, 2, rng);
    const double err_cm = sweep.valid_errors.empty() ? 0.0 : 100.0 * harness::median(sweep.valid_errors);
    std::printf("  %10zu | %10.0f | %10.1f\n", n, sweep.localizable_pct(),
                err_cm);
    if (n == counts.front()) {
      cov_first = sweep.localizable_pct();
      err_first = err_cm;
    }
    cov_best = std::max(cov_best, sweep.localizable_pct());
    if (n == counts.back()) err_last = err_cm;
  }

  bench::print_row("coverage gain to the plateau", 35.0,
                   cov_best - cov_first, "pp");
  bench::print_row("median error at 0 reflectors", 31.2, err_first, "cm");
  bench::print_row("median error at 12 reflectors", 20.8, err_last, "cm");
  std::printf(
      "  shape check: coverage rises and error falls as reflectors are\n"
      "  added to the bare hall (paper Fig. 16).\n");
  return 0;
}
