// Figure 10: LoS AoA estimation error CDF under the three calibration
// regimes — D-Watch wireless calibration, Phaser, and no calibration.
//
// Paper shape: D-Watch median ~2 deg; Phaser clearly worse; no
// calibration useless (random offsets scramble the array manifold).
#include <cstdio>

#include "baseline/phaser_calibration.hpp"
#include "bench_util.hpp"
#include "core/calibration.hpp"
#include "core/music.hpp"

int main() {
  using namespace dwatch;
  bench::print_header("Fig. 10 — LoS AoA error CDF by calibration method");

  const sim::Scene scene =
      bench::make_room_scene(sim::Environment::laboratory());
  const auto& array = scene.deployment().arrays[0];
  rf::Rng rng(bench::kRunSeed);

  // Calibrate once with 8 tags each way.
  std::vector<core::CalibrationMeasurement> meas;
  for (const std::size_t t : harness::nearest_tags(scene, 0, 8)) {
    core::CalibrationMeasurement m;
    m.snapshots = scene.capture(0, t, {}, rng);
    m.los_angle = array.arrival_angle(scene.deployment().tags[t].position);
    meas.push_back(std::move(m));
  }
  core::WirelessCalibrator calibrator(array.spacing(), array.lambda());
  const auto dwatch_offsets = calibrator.calibrate(meas, rng).offsets;
  const auto phaser_offsets =
      baseline::phaser_calibrate(meas, array.spacing(), array.lambda());

  // Plain (unsmoothed) MUSIC: this experiment measures the LoS angle of
  // a dominant direct path, and smoothing would partially mask the
  // per-element offsets the calibration is supposed to remove.
  core::MusicOptions music_opts;
  music_opts.subarray = array.num_elements();
  core::MusicEstimator music(array.spacing(), array.lambda(), music_opts);
  std::vector<double> err_dwatch;
  std::vector<double> err_phaser;
  std::vector<double> err_none;

  auto aoa_error = [&](const linalg::CMatrix& x, double truth_rad) {
    const auto res = music.estimate(x);
    const auto peaks = core::find_peaks(res.spectrum);
    if (peaks.empty()) return 90.0;
    // The STRONGEST peak is the system's LoS estimate; a scrambled
    // manifold (bad calibration) puts it at a wrong angle.
    return std::abs(rf::rad2deg(peaks.front().theta - truth_rad));
  };

  for (std::size_t t = 0; t < scene.num_tags(); ++t) {
    if (!scene.tag_readable(0, t)) continue;
    const double truth =
        array.arrival_angle(scene.deployment().tags[t].position);
    for (int rep = 0; rep < 3; ++rep) {
      linalg::CMatrix raw = scene.capture(0, t, {}, rng);
      linalg::CMatrix x1 = raw;
      core::apply_phase_correction(x1, dwatch_offsets);
      err_dwatch.push_back(aoa_error(x1, truth));
      linalg::CMatrix x2 = raw;
      core::apply_phase_correction(x2, phaser_offsets);
      err_phaser.push_back(aoa_error(x2, truth));
      err_none.push_back(aoa_error(raw, truth));
    }
  }

  std::printf("  CDF of LoS AoA error [deg]\n  deg |  D-Watch |  Phaser |  none\n");
  const std::vector<double> levels{1, 2, 5, 10, 20, 30, 45, 60};
  const auto c1 = harness::cdf_at(err_dwatch, levels);
  const auto c2 = harness::cdf_at(err_phaser, levels);
  const auto c3 = harness::cdf_at(err_none, levels);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    std::printf("  %3.0f | %8.2f | %7.2f | %5.2f\n", levels[i], c1[i],
                c2[i], c3[i]);
  }

  bench::print_row("D-Watch median AoA error", 2.0,
                   harness::median(err_dwatch), "deg");
  bench::print_row("Phaser median AoA error (worse)", 6.0,
                   harness::median(err_phaser), "deg");
  bench::print_row("no calibration median (useless)", 40.0,
                   harness::median(err_none), "deg");
  return 0;
}
