// Section 8 latency microbenchmarks (google-benchmark).
//
// The paper reports ~57 ms average processing time per fix on a 2016
// i7-4790 desktop, with an end-to-end latency well under 0.5 s at a
// 0.1 s transmission interval. These benches time the individual stages
// and the full fix, plus the hill-climbing vs exhaustive-search ablation
// the DESIGN.md calls out.
#include <benchmark/benchmark.h>

#include "bench_reporter.hpp"

#include "bench_util.hpp"
#include "core/covariance.hpp"
#include "core/pipeline.hpp"
#include "core/pmusic.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "rfid/gen2.hpp"
#include "rfid/llrp.hpp"

namespace {

using namespace dwatch;

const sim::Scene& shared_scene() {
  static const sim::Scene scene =
      bench::make_room_scene(sim::Environment::library());
  return scene;
}

linalg::CMatrix shared_snapshots() {
  rf::Rng rng(5);
  return shared_scene().capture(0, 0, {}, rng);
}

void BM_SampleCorrelation(benchmark::State& state) {
  const auto x = shared_snapshots();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sample_correlation(x));
  }
}
BENCHMARK(BM_SampleCorrelation);

void BM_PMusicSpectrum(benchmark::State& state) {
  const auto x = shared_snapshots();
  const auto& array = shared_scene().deployment().arrays[0];
  core::PMusicEstimator pm(array.spacing(), array.lambda());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.estimate(x));
  }
}
BENCHMARK(BM_PMusicSpectrum);

void BM_OnlinePowerSpectrum(benchmark::State& state) {
  // The per-observation online cost (no eigendecomposition).
  const auto x = shared_snapshots();
  const auto& array = shared_scene().deployment().arrays[0];
  core::PMusicEstimator pm(array.spacing(), array.lambda());
  const auto r = core::sample_correlation(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.power_spectrum(r));
  }
}
BENCHMARK(BM_OnlinePowerSpectrum);

/// One full fix: observe every readable (array, tag) pair + localize.
/// The paper's comparable number is ~57 ms processing per fix.
void BM_FullFix(benchmark::State& state) {
  const bool hill = state.range(0) != 0;
  const sim::Scene& scene = shared_scene();
  harness::RunnerOptions opts;
  opts.calibrate = false;
  opts.through_wire = false;
  opts.pipeline.localizer.hill_climbing = hill;
  harness::ExperimentRunner runner(scene, opts);
  rf::Rng rng(9);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    runner.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
  }
  runner.collect_baselines(rng);
  const sim::CylinderTarget target = sim::CylinderTarget::human({3.0, 4.0});
  const std::vector<sim::CylinderTarget> targets{target};
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run_fix_best_effort(targets, rng));
  }
}
BENCHMARK(BM_FullFix)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_LocalizeOnly(benchmark::State& state) {
  const bool hill = state.range(0) != 0;
  const sim::Scene& scene = shared_scene();
  harness::RunnerOptions opts;
  opts.calibrate = false;
  opts.through_wire = false;
  opts.pipeline.localizer.hill_climbing = hill;
  harness::ExperimentRunner runner(scene, opts);
  rf::Rng rng(9);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    runner.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
  }
  runner.collect_baselines(rng);
  const sim::CylinderTarget target = sim::CylinderTarget::human({3.0, 4.0});
  const std::vector<sim::CylinderTarget> targets{target};
  runner.run_epoch(targets, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.pipeline().localize_best_effort());
  }
}
BENCHMARK(BM_LocalizeOnly)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// One whole epoch of per-tag spectra through observe_batch at a given
/// worker count (Arg). Arg(1) is the serial baseline; higher args show
/// the thread-pool scaling on multi-core hosts (on a single-core host
/// they degenerate to roughly the serial time plus pool overhead).
void BM_ObserveBatch(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const sim::Scene& scene = shared_scene();
  harness::RunnerOptions opts;
  opts.calibrate = false;
  opts.through_wire = false;
  opts.pipeline.num_workers = workers;
  harness::ExperimentRunner runner(scene, opts);
  rf::Rng rng(9);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    runner.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
  }
  runner.collect_baselines(rng);
  const std::vector<sim::CylinderTarget> targets{
      sim::CylinderTarget::human({3.0, 4.0})};
  const std::vector<core::BatchObservation> batch =
      runner.capture_epoch(targets, rng);
  for (auto _ : state) {
    runner.pipeline().begin_epoch();
    benchmark::DoNotOptimize(runner.pipeline().observe_batch(batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() *
                                                    batch.size()));
}
BENCHMARK(BM_ObserveBatch)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_CalibrationSolve(benchmark::State& state) {
  const sim::Scene& scene = shared_scene();
  const auto& array = scene.deployment().arrays[0];
  rf::Rng rng(11);
  std::vector<core::CalibrationMeasurement> meas;
  for (const std::size_t t : harness::nearest_tags(scene, 0, 6)) {
    core::CalibrationMeasurement m;
    m.snapshots = scene.capture(0, t, {}, rng);
    m.los_angle = array.arrival_angle(scene.deployment().tags[t].position);
    meas.push_back(std::move(m));
  }
  core::WirelessCalibrator calibrator(array.spacing(), array.lambda());
  for (auto _ : state) {
    rf::Rng opt_rng(13);
    benchmark::DoNotOptimize(calibrator.calibrate(meas, opt_rng));
  }
}
BENCHMARK(BM_CalibrationSolve)->Unit(benchmark::kMillisecond);

void BM_LlrpEncodeDecode(benchmark::State& state) {
  const sim::Scene& scene = shared_scene();
  rf::Rng rng(15);
  rfid::RoAccessReport report;
  report.message_id = 1;
  for (std::size_t t = 0; t < scene.num_tags(); ++t) {
    report.observations.push_back(
        scene.capture_observation(0, t, {}, rng));
  }
  const auto bytes = encode(report);
  std::size_t total = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::decode_ro_access_report(bytes));
    total += bytes.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_LlrpEncodeDecode);

/// Full fixes with the observability layer switched ON. Two jobs in
/// one: the wall-clock time is the instrumented-path overhead (compare
/// against BM_FullFix/1 — the budget is <2%), and the obs histograms
/// accumulated across all iterations are exported as per-stage
/// p50/p95/p99 counters, so BENCH_latency.json carries a stage-level
/// latency breakdown (pmusic.spectrum_p95_us, localize.grid_p99_us,
/// ...) alongside the whole-fix numbers. With DWATCH_OBS=OFF this
/// degenerates to exactly BM_FullFix/1 and exports no counters.
void BM_StagePercentiles(benchmark::State& state) {
  const sim::Scene& scene = shared_scene();
  harness::RunnerOptions opts;
  opts.calibrate = false;
  opts.through_wire = false;
  opts.pipeline.localizer.hill_climbing = true;
  harness::ExperimentRunner runner(scene, opts);
  rf::Rng rng(9);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    runner.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
  }
  runner.collect_baselines(rng);
  const std::vector<sim::CylinderTarget> targets{
      sim::CylinderTarget::human({3.0, 4.0})};
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run_fix_best_effort(targets, rng));
  }
  obs::set_enabled(false);
  obs::MetricsRegistry::global().for_each_histogram(
      [&state](const std::string& name, const std::string& labels,
               const obs::Histogram& h) {
        if (name != "dwatch_stage_latency_us" || h.count() == 0) return;
        // labels is `stage="<name>"`; pull out the quoted stage name.
        const std::size_t open = labels.find('"');
        const std::size_t close = labels.rfind('"');
        if (open == std::string::npos || close <= open) return;
        const std::string stage = labels.substr(open + 1, close - open - 1);
        state.counters[stage + "_p50_us"] = h.percentile(50.0);
        state.counters[stage + "_p95_us"] = h.percentile(95.0);
        state.counters[stage + "_p99_us"] = h.percentile(99.0);
      });
}
BENCHMARK(BM_StagePercentiles)->Unit(benchmark::kMillisecond);

void BM_Gen2Inventory(benchmark::State& state) {
  const auto tags = static_cast<std::size_t>(state.range(0));
  rfid::Gen2Config cfg;
  rf::Rng rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::run_inventory(tags, cfg, rng));
  }
}
BENCHMARK(BM_Gen2Inventory)->Arg(21)->Arg(47);

}  // namespace

DWATCH_BENCH_MAIN()
