
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/calibration_test.cpp" "tests/CMakeFiles/core_tests.dir/core/calibration_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/calibration_test.cpp.o.d"
  "/root/repo/tests/core/change_detector_test.cpp" "tests/CMakeFiles/core_tests.dir/core/change_detector_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/change_detector_test.cpp.o.d"
  "/root/repo/tests/core/covariance_test.cpp" "tests/CMakeFiles/core_tests.dir/core/covariance_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/covariance_test.cpp.o.d"
  "/root/repo/tests/core/doppler_test.cpp" "tests/CMakeFiles/core_tests.dir/core/doppler_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/doppler_test.cpp.o.d"
  "/root/repo/tests/core/kalman_test.cpp" "tests/CMakeFiles/core_tests.dir/core/kalman_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/kalman_test.cpp.o.d"
  "/root/repo/tests/core/localizer_test.cpp" "tests/CMakeFiles/core_tests.dir/core/localizer_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/localizer_test.cpp.o.d"
  "/root/repo/tests/core/music_test.cpp" "tests/CMakeFiles/core_tests.dir/core/music_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/music_test.cpp.o.d"
  "/root/repo/tests/core/optimizer_test.cpp" "tests/CMakeFiles/core_tests.dir/core/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/optimizer_test.cpp.o.d"
  "/root/repo/tests/core/pipeline_test.cpp" "tests/CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  "/root/repo/tests/core/pmusic_test.cpp" "tests/CMakeFiles/core_tests.dir/core/pmusic_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/pmusic_test.cpp.o.d"
  "/root/repo/tests/core/root_music_test.cpp" "tests/CMakeFiles/core_tests.dir/core/root_music_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/root_music_test.cpp.o.d"
  "/root/repo/tests/core/source_count_test.cpp" "tests/CMakeFiles/core_tests.dir/core/source_count_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/source_count_test.cpp.o.d"
  "/root/repo/tests/core/spectrum_test.cpp" "tests/CMakeFiles/core_tests.dir/core/spectrum_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/spectrum_test.cpp.o.d"
  "/root/repo/tests/core/tracker_test.cpp" "tests/CMakeFiles/core_tests.dir/core/tracker_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/tracker_test.cpp.o.d"
  "/root/repo/tests/core/triangulate_test.cpp" "tests/CMakeFiles/core_tests.dir/core/triangulate_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/triangulate_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/dwatch_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dwatch_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dwatch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dwatch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rfid/CMakeFiles/dwatch_rfid.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/dwatch_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dwatch_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
