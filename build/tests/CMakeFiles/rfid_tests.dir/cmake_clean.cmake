file(REMOVE_RECURSE
  "CMakeFiles/rfid_tests.dir/rfid/crc16_test.cpp.o"
  "CMakeFiles/rfid_tests.dir/rfid/crc16_test.cpp.o.d"
  "CMakeFiles/rfid_tests.dir/rfid/epc_test.cpp.o"
  "CMakeFiles/rfid_tests.dir/rfid/epc_test.cpp.o.d"
  "CMakeFiles/rfid_tests.dir/rfid/gen2_test.cpp.o"
  "CMakeFiles/rfid_tests.dir/rfid/gen2_test.cpp.o.d"
  "CMakeFiles/rfid_tests.dir/rfid/llrp_session_test.cpp.o"
  "CMakeFiles/rfid_tests.dir/rfid/llrp_session_test.cpp.o.d"
  "CMakeFiles/rfid_tests.dir/rfid/llrp_test.cpp.o"
  "CMakeFiles/rfid_tests.dir/rfid/llrp_test.cpp.o.d"
  "CMakeFiles/rfid_tests.dir/rfid/reader_test.cpp.o"
  "CMakeFiles/rfid_tests.dir/rfid/reader_test.cpp.o.d"
  "CMakeFiles/rfid_tests.dir/rfid/report_stream_test.cpp.o"
  "CMakeFiles/rfid_tests.dir/rfid/report_stream_test.cpp.o.d"
  "rfid_tests"
  "rfid_tests.pdb"
  "rfid_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfid_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
