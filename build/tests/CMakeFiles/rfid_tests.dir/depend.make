# Empty dependencies file for rfid_tests.
# This may be replaced when dependencies are built.
