file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_reflectors.dir/bench_fig16_reflectors.cpp.o"
  "CMakeFiles/bench_fig16_reflectors.dir/bench_fig16_reflectors.cpp.o.d"
  "bench_fig16_reflectors"
  "bench_fig16_reflectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_reflectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
