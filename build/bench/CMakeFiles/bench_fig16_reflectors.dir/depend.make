# Empty dependencies file for bench_fig16_reflectors.
# This may be replaced when dependencies are built.
