# Empty compiler generated dependencies file for bench_fig12_pmusic_spectrum.
# This may be replaced when dependencies are built.
