# Empty compiler generated dependencies file for bench_fig04_music_limitation.
# This may be replaced when dependencies are built.
