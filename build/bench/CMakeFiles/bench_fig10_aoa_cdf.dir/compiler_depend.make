# Empty compiler generated dependencies file for bench_fig10_aoa_cdf.
# This may be replaced when dependencies are built.
