# Empty compiler generated dependencies file for bench_fig15_antennas.
# This may be replaced when dependencies are built.
