file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_environments.dir/bench_fig14_environments.cpp.o"
  "CMakeFiles/bench_fig14_environments.dir/bench_fig14_environments.cpp.o.d"
  "bench_fig14_environments"
  "bench_fig14_environments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_environments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
