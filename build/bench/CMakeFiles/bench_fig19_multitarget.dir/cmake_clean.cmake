file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_multitarget.dir/bench_fig19_multitarget.cpp.o"
  "CMakeFiles/bench_fig19_multitarget.dir/bench_fig19_multitarget.cpp.o.d"
  "bench_fig19_multitarget"
  "bench_fig19_multitarget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_multitarget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
