file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_height.dir/bench_fig18_height.cpp.o"
  "CMakeFiles/bench_fig18_height.dir/bench_fig18_height.cpp.o.d"
  "bench_fig18_height"
  "bench_fig18_height.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_height.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
