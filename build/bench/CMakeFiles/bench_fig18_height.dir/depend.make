# Empty dependencies file for bench_fig18_height.
# This may be replaced when dependencies are built.
