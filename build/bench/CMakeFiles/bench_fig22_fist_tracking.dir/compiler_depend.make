# Empty compiler generated dependencies file for bench_fig22_fist_tracking.
# This may be replaced when dependencies are built.
