file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_calibration.dir/bench_fig09_calibration.cpp.o"
  "CMakeFiles/bench_fig09_calibration.dir/bench_fig09_calibration.cpp.o.d"
  "bench_fig09_calibration"
  "bench_fig09_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
