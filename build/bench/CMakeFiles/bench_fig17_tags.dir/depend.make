# Empty dependencies file for bench_fig17_tags.
# This may be replaced when dependencies are built.
