file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_tags.dir/bench_fig17_tags.cpp.o"
  "CMakeFiles/bench_fig17_tags.dir/bench_fig17_tags.cpp.o.d"
  "bench_fig17_tags"
  "bench_fig17_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
