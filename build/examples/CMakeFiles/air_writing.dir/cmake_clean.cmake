file(REMOVE_RECURSE
  "CMakeFiles/air_writing.dir/air_writing.cpp.o"
  "CMakeFiles/air_writing.dir/air_writing.cpp.o.d"
  "air_writing"
  "air_writing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_writing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
