# Empty dependencies file for air_writing.
# This may be replaced when dependencies are built.
