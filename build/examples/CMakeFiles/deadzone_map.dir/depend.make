# Empty dependencies file for deadzone_map.
# This may be replaced when dependencies are built.
