file(REMOVE_RECURSE
  "CMakeFiles/deadzone_map.dir/deadzone_map.cpp.o"
  "CMakeFiles/deadzone_map.dir/deadzone_map.cpp.o.d"
  "deadzone_map"
  "deadzone_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadzone_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
