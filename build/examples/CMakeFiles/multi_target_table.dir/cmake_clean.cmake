file(REMOVE_RECURSE
  "CMakeFiles/multi_target_table.dir/multi_target_table.cpp.o"
  "CMakeFiles/multi_target_table.dir/multi_target_table.cpp.o.d"
  "multi_target_table"
  "multi_target_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_target_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
