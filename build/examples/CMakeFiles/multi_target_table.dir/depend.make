# Empty dependencies file for multi_target_table.
# This may be replaced when dependencies are built.
