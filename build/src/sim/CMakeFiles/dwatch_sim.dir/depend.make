# Empty dependencies file for dwatch_sim.
# This may be replaced when dependencies are built.
