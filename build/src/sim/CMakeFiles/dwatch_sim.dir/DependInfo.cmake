
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/environment.cpp" "src/sim/CMakeFiles/dwatch_sim.dir/environment.cpp.o" "gcc" "src/sim/CMakeFiles/dwatch_sim.dir/environment.cpp.o.d"
  "/root/repo/src/sim/propagate.cpp" "src/sim/CMakeFiles/dwatch_sim.dir/propagate.cpp.o" "gcc" "src/sim/CMakeFiles/dwatch_sim.dir/propagate.cpp.o.d"
  "/root/repo/src/sim/reflector.cpp" "src/sim/CMakeFiles/dwatch_sim.dir/reflector.cpp.o" "gcc" "src/sim/CMakeFiles/dwatch_sim.dir/reflector.cpp.o.d"
  "/root/repo/src/sim/scene.cpp" "src/sim/CMakeFiles/dwatch_sim.dir/scene.cpp.o" "gcc" "src/sim/CMakeFiles/dwatch_sim.dir/scene.cpp.o.d"
  "/root/repo/src/sim/target.cpp" "src/sim/CMakeFiles/dwatch_sim.dir/target.cpp.o" "gcc" "src/sim/CMakeFiles/dwatch_sim.dir/target.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/dwatch_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/dwatch_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rf/CMakeFiles/dwatch_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/rfid/CMakeFiles/dwatch_rfid.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dwatch_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
