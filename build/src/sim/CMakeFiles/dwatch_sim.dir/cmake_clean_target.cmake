file(REMOVE_RECURSE
  "libdwatch_sim.a"
)
