file(REMOVE_RECURSE
  "CMakeFiles/dwatch_sim.dir/environment.cpp.o"
  "CMakeFiles/dwatch_sim.dir/environment.cpp.o.d"
  "CMakeFiles/dwatch_sim.dir/propagate.cpp.o"
  "CMakeFiles/dwatch_sim.dir/propagate.cpp.o.d"
  "CMakeFiles/dwatch_sim.dir/reflector.cpp.o"
  "CMakeFiles/dwatch_sim.dir/reflector.cpp.o.d"
  "CMakeFiles/dwatch_sim.dir/scene.cpp.o"
  "CMakeFiles/dwatch_sim.dir/scene.cpp.o.d"
  "CMakeFiles/dwatch_sim.dir/target.cpp.o"
  "CMakeFiles/dwatch_sim.dir/target.cpp.o.d"
  "CMakeFiles/dwatch_sim.dir/trace.cpp.o"
  "CMakeFiles/dwatch_sim.dir/trace.cpp.o.d"
  "libdwatch_sim.a"
  "libdwatch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwatch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
