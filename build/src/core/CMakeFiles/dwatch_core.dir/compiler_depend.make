# Empty compiler generated dependencies file for dwatch_core.
# This may be replaced when dependencies are built.
