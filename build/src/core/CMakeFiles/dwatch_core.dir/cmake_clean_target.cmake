file(REMOVE_RECURSE
  "libdwatch_core.a"
)
