
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/dwatch_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/change_detector.cpp" "src/core/CMakeFiles/dwatch_core.dir/change_detector.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/change_detector.cpp.o.d"
  "/root/repo/src/core/covariance.cpp" "src/core/CMakeFiles/dwatch_core.dir/covariance.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/covariance.cpp.o.d"
  "/root/repo/src/core/doppler.cpp" "src/core/CMakeFiles/dwatch_core.dir/doppler.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/doppler.cpp.o.d"
  "/root/repo/src/core/kalman.cpp" "src/core/CMakeFiles/dwatch_core.dir/kalman.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/kalman.cpp.o.d"
  "/root/repo/src/core/localizer.cpp" "src/core/CMakeFiles/dwatch_core.dir/localizer.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/localizer.cpp.o.d"
  "/root/repo/src/core/music.cpp" "src/core/CMakeFiles/dwatch_core.dir/music.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/music.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/dwatch_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/dwatch_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/pmusic.cpp" "src/core/CMakeFiles/dwatch_core.dir/pmusic.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/pmusic.cpp.o.d"
  "/root/repo/src/core/polynomial.cpp" "src/core/CMakeFiles/dwatch_core.dir/polynomial.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/polynomial.cpp.o.d"
  "/root/repo/src/core/root_music.cpp" "src/core/CMakeFiles/dwatch_core.dir/root_music.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/root_music.cpp.o.d"
  "/root/repo/src/core/source_count.cpp" "src/core/CMakeFiles/dwatch_core.dir/source_count.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/source_count.cpp.o.d"
  "/root/repo/src/core/spectrum.cpp" "src/core/CMakeFiles/dwatch_core.dir/spectrum.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/spectrum.cpp.o.d"
  "/root/repo/src/core/tracker.cpp" "src/core/CMakeFiles/dwatch_core.dir/tracker.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/tracker.cpp.o.d"
  "/root/repo/src/core/triangulate.cpp" "src/core/CMakeFiles/dwatch_core.dir/triangulate.cpp.o" "gcc" "src/core/CMakeFiles/dwatch_core.dir/triangulate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/dwatch_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/dwatch_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/rfid/CMakeFiles/dwatch_rfid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
