file(REMOVE_RECURSE
  "CMakeFiles/dwatch_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/dwatch_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/dwatch_linalg.dir/complex_matrix.cpp.o"
  "CMakeFiles/dwatch_linalg.dir/complex_matrix.cpp.o.d"
  "CMakeFiles/dwatch_linalg.dir/hermitian_eig.cpp.o"
  "CMakeFiles/dwatch_linalg.dir/hermitian_eig.cpp.o.d"
  "libdwatch_linalg.a"
  "libdwatch_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwatch_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
