file(REMOVE_RECURSE
  "libdwatch_linalg.a"
)
