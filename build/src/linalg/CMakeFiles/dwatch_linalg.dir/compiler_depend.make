# Empty compiler generated dependencies file for dwatch_linalg.
# This may be replaced when dependencies are built.
