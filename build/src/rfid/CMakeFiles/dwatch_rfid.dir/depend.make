# Empty dependencies file for dwatch_rfid.
# This may be replaced when dependencies are built.
