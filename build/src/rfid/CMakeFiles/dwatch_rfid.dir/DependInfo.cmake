
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rfid/bytes.cpp" "src/rfid/CMakeFiles/dwatch_rfid.dir/bytes.cpp.o" "gcc" "src/rfid/CMakeFiles/dwatch_rfid.dir/bytes.cpp.o.d"
  "/root/repo/src/rfid/crc16.cpp" "src/rfid/CMakeFiles/dwatch_rfid.dir/crc16.cpp.o" "gcc" "src/rfid/CMakeFiles/dwatch_rfid.dir/crc16.cpp.o.d"
  "/root/repo/src/rfid/epc.cpp" "src/rfid/CMakeFiles/dwatch_rfid.dir/epc.cpp.o" "gcc" "src/rfid/CMakeFiles/dwatch_rfid.dir/epc.cpp.o.d"
  "/root/repo/src/rfid/gen2.cpp" "src/rfid/CMakeFiles/dwatch_rfid.dir/gen2.cpp.o" "gcc" "src/rfid/CMakeFiles/dwatch_rfid.dir/gen2.cpp.o.d"
  "/root/repo/src/rfid/llrp.cpp" "src/rfid/CMakeFiles/dwatch_rfid.dir/llrp.cpp.o" "gcc" "src/rfid/CMakeFiles/dwatch_rfid.dir/llrp.cpp.o.d"
  "/root/repo/src/rfid/llrp_session.cpp" "src/rfid/CMakeFiles/dwatch_rfid.dir/llrp_session.cpp.o" "gcc" "src/rfid/CMakeFiles/dwatch_rfid.dir/llrp_session.cpp.o.d"
  "/root/repo/src/rfid/reader.cpp" "src/rfid/CMakeFiles/dwatch_rfid.dir/reader.cpp.o" "gcc" "src/rfid/CMakeFiles/dwatch_rfid.dir/reader.cpp.o.d"
  "/root/repo/src/rfid/report_stream.cpp" "src/rfid/CMakeFiles/dwatch_rfid.dir/report_stream.cpp.o" "gcc" "src/rfid/CMakeFiles/dwatch_rfid.dir/report_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rf/CMakeFiles/dwatch_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dwatch_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
