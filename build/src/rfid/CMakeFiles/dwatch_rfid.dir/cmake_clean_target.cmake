file(REMOVE_RECURSE
  "libdwatch_rfid.a"
)
