file(REMOVE_RECURSE
  "CMakeFiles/dwatch_rfid.dir/bytes.cpp.o"
  "CMakeFiles/dwatch_rfid.dir/bytes.cpp.o.d"
  "CMakeFiles/dwatch_rfid.dir/crc16.cpp.o"
  "CMakeFiles/dwatch_rfid.dir/crc16.cpp.o.d"
  "CMakeFiles/dwatch_rfid.dir/epc.cpp.o"
  "CMakeFiles/dwatch_rfid.dir/epc.cpp.o.d"
  "CMakeFiles/dwatch_rfid.dir/gen2.cpp.o"
  "CMakeFiles/dwatch_rfid.dir/gen2.cpp.o.d"
  "CMakeFiles/dwatch_rfid.dir/llrp.cpp.o"
  "CMakeFiles/dwatch_rfid.dir/llrp.cpp.o.d"
  "CMakeFiles/dwatch_rfid.dir/llrp_session.cpp.o"
  "CMakeFiles/dwatch_rfid.dir/llrp_session.cpp.o.d"
  "CMakeFiles/dwatch_rfid.dir/reader.cpp.o"
  "CMakeFiles/dwatch_rfid.dir/reader.cpp.o.d"
  "CMakeFiles/dwatch_rfid.dir/report_stream.cpp.o"
  "CMakeFiles/dwatch_rfid.dir/report_stream.cpp.o.d"
  "libdwatch_rfid.a"
  "libdwatch_rfid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwatch_rfid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
