file(REMOVE_RECURSE
  "CMakeFiles/dwatch_baseline.dir/music_power_detector.cpp.o"
  "CMakeFiles/dwatch_baseline.dir/music_power_detector.cpp.o.d"
  "CMakeFiles/dwatch_baseline.dir/phaser_calibration.cpp.o"
  "CMakeFiles/dwatch_baseline.dir/phaser_calibration.cpp.o.d"
  "libdwatch_baseline.a"
  "libdwatch_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwatch_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
