file(REMOVE_RECURSE
  "libdwatch_baseline.a"
)
