# Empty dependencies file for dwatch_baseline.
# This may be replaced when dependencies are built.
