# Empty dependencies file for dwatch_rf.
# This may be replaced when dependencies are built.
