file(REMOVE_RECURSE
  "CMakeFiles/dwatch_rf.dir/array.cpp.o"
  "CMakeFiles/dwatch_rf.dir/array.cpp.o.d"
  "CMakeFiles/dwatch_rf.dir/geometry.cpp.o"
  "CMakeFiles/dwatch_rf.dir/geometry.cpp.o.d"
  "CMakeFiles/dwatch_rf.dir/link_budget.cpp.o"
  "CMakeFiles/dwatch_rf.dir/link_budget.cpp.o.d"
  "CMakeFiles/dwatch_rf.dir/path.cpp.o"
  "CMakeFiles/dwatch_rf.dir/path.cpp.o.d"
  "CMakeFiles/dwatch_rf.dir/snapshot.cpp.o"
  "CMakeFiles/dwatch_rf.dir/snapshot.cpp.o.d"
  "libdwatch_rf.a"
  "libdwatch_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwatch_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
