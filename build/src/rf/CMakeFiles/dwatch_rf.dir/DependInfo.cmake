
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/array.cpp" "src/rf/CMakeFiles/dwatch_rf.dir/array.cpp.o" "gcc" "src/rf/CMakeFiles/dwatch_rf.dir/array.cpp.o.d"
  "/root/repo/src/rf/geometry.cpp" "src/rf/CMakeFiles/dwatch_rf.dir/geometry.cpp.o" "gcc" "src/rf/CMakeFiles/dwatch_rf.dir/geometry.cpp.o.d"
  "/root/repo/src/rf/link_budget.cpp" "src/rf/CMakeFiles/dwatch_rf.dir/link_budget.cpp.o" "gcc" "src/rf/CMakeFiles/dwatch_rf.dir/link_budget.cpp.o.d"
  "/root/repo/src/rf/path.cpp" "src/rf/CMakeFiles/dwatch_rf.dir/path.cpp.o" "gcc" "src/rf/CMakeFiles/dwatch_rf.dir/path.cpp.o.d"
  "/root/repo/src/rf/snapshot.cpp" "src/rf/CMakeFiles/dwatch_rf.dir/snapshot.cpp.o" "gcc" "src/rf/CMakeFiles/dwatch_rf.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/dwatch_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
