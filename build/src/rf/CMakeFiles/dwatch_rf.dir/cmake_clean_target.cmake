file(REMOVE_RECURSE
  "libdwatch_rf.a"
)
