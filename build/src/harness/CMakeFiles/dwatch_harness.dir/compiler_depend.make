# Empty compiler generated dependencies file for dwatch_harness.
# This may be replaced when dependencies are built.
