file(REMOVE_RECURSE
  "libdwatch_harness.a"
)
