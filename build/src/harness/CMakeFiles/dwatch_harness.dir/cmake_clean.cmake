file(REMOVE_RECURSE
  "CMakeFiles/dwatch_harness.dir/deadzone.cpp.o"
  "CMakeFiles/dwatch_harness.dir/deadzone.cpp.o.d"
  "CMakeFiles/dwatch_harness.dir/experiment.cpp.o"
  "CMakeFiles/dwatch_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/dwatch_harness.dir/stats.cpp.o"
  "CMakeFiles/dwatch_harness.dir/stats.cpp.o.d"
  "libdwatch_harness.a"
  "libdwatch_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwatch_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
